//! Cache advisor: profile an operator's cache-sensitivity curve and
//! recommend a CAT mask for it.
//!
//! This is the paper's Section IV methodology packaged as a tool: sweep the
//! operator's LLC allocation, find where its throughput curve "breaks", and
//! derive the smallest mask that keeps it within a tolerance of full-cache
//! throughput — for polluters that is the minimum slice (they don't need
//! cache), for cache-sensitive operators it is their working-set knee.
//!
//! ```text
//! cargo run --release --example cache_advisor
//! ```

use cache_partitioning::prelude::*;
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::{paper, s4hana};

/// Throughput loss we are willing to accept when shrinking the mask.
const TOLERANCE: f64 = 0.05;

fn advise(e: &Experiment, name: &str, build: OpBuilder<'_>) {
    let way = e.cfg.llc.way_bytes();
    let sizes: Vec<u64> = (1..=e.cfg.llc.ways as u64).map(|w| w * way).collect();
    let points = e.llc_sweep(&build, &sizes);

    // Smallest allocation within TOLERANCE of the best throughput.
    let chosen = points
        .iter()
        .filter(|p| p.normalized >= 1.0 - TOLERANCE)
        .min_by_key(|p| p.ways)
        .expect("the full-cache point always qualifies");
    let mask = WayMask::from_ways(chosen.ways).expect("ways within the LLC");

    println!("\n{name}:");
    print!("  sensitivity curve (ways -> normalized):");
    for p in points.iter().step_by(3) {
        print!("  {}w={:.0}%", p.ways, p.normalized * 100.0);
    }
    println!();
    println!(
        "  recommendation: mask {:#07x} ({} ways = {:.2} MiB) keeps ≥ {:.0}% of peak throughput",
        mask.bits(),
        chosen.ways,
        chosen.llc_bytes as f64 / (1024.0 * 1024.0),
        (1.0 - TOLERANCE) * 100.0
    );
    if chosen.ways <= 2 {
        println!("  class: cache POLLUTER — confine it; the cache helps co-runners more");
    } else if chosen.ways >= e.cfg.llc.ways - 2 {
        println!("  class: cache SENSITIVE — give it the full cache");
    } else {
        println!("  class: MIXED — a partial allocation is the sweet spot");
    }
}

fn main() {
    println!("cache advisor — derive CAT masks from measured sensitivity curves");
    let e = Experiment {
        warm_cycles: 4_000_000,
        measure_cycles: 8_000_000,
        ..Default::default()
    };

    advise(&e, "column scan (paper Q1)", Box::new(paper::q1_scan));
    advise(
        &e,
        "aggregation, 4 MiB dict, 1e5 groups (paper Q2)",
        Box::new(|s| paper::q2_aggregation(s, paper::DICT_4MIB, 100_000)),
    );
    advise(
        &e,
        "FK join, 1e8 primary keys (paper Q3)",
        Box::new(|s| paper::q3_join(s, 100_000_000)),
    );
    advise(
        &e,
        "S/4HANA OLTP point select, 13 columns",
        Box::new(s4hana::oltp_13col),
    );

    println!(
        "\nthe paper's scheme falls out of the curves: scans -> 0x3, LLC-sized aggregations \
         -> full mask,\njoins -> depends on the bit vector (its Section V-B heuristic)."
    );
}
