//! Native TPC-H Q1 and Q6 over generated sample data, through the
//! partitioned executor — the end-to-end path a real deployment would run
//! on CAT hardware.
//!
//! ```text
//! cargo run --release --example tpch_native
//! ```

use cache_partitioning::prelude::*;
use cache_partitioning::tpch;
use std::sync::Arc;

fn main() {
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
    let ex = JobExecutor::new(4, policy, Arc::new(NoopAllocator));

    println!("generating a 500k-row lineitem sample…");
    let (lineitem, orders) = tpch::sample_database(500_000, 50_000, 42);
    println!(
        "lineitem: {} rows, {} columns; orders: {} rows",
        lineitem.row_count(),
        lineitem.column_count(),
        orders.row_count()
    );

    println!("\nTPC-H Q1 — pricing summary report (cache-sensitive jobs):");
    let rows = tpch::q1_pricing_summary(&ex, &lineitem);
    println!(
        "{:>6} {:>7} {:>18} {:>10}",
        "flag", "status", "sum(extprice)", "count"
    );
    for r in &rows {
        println!(
            "{:>6} {:>7} {:>18} {:>10}",
            r.returnflag, r.linestatus, r.sum_extendedprice, r.count
        );
    }

    println!("\nTPC-H Q6 — forecasting revenue change (polluting scan jobs):");
    let revenue = tpch::q6_forecast_revenue(&ex, &lineitem, 24, 5..=7);
    println!("revenue = {revenue}");

    println!(
        "\nexecutor: {} jobs, {} mask switches — Q1 ran at 0xfffff, Q6 at 0x3, exactly \
         the paper's Figure 11 setup",
        ex.jobs_executed(),
        ex.mask_switches()
    );
}
