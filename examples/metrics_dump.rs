//! Runs a small Figure-9-style co-run (concurrent scan + aggregation
//! through the dual-pool executor, waves planned by the cache-aware
//! scheduler, masks programmed through the resctrl driver), then serves
//! the resulting registry on a real HTTP `/metrics` endpoint and scrapes
//! it once — the same path a Prometheus server would take.
//!
//! ```text
//! cargo run --release --example metrics_dump            # serve + self-scrape
//! cargo run --release --example metrics_dump -- --stdout # plain dump, no socket
//! ```
//!
//! Set `CCP_DEMO_MS` to change the co-run window (default 200 ms).

use ccp_server::ScrapeServer;
use std::time::Duration;

fn main() {
    let stdout_only = std::env::args().any(|a| a == "--stdout");
    let window_ms: u64 = std::env::var("CCP_DEMO_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let registry = cache_partitioning::obs_demo::run_corun_demo(Duration::from_millis(window_ms));

    if stdout_only {
        print!("{}", registry.render_prometheus());
        return;
    }

    let mut server = ScrapeServer::start(&registry, "127.0.0.1:0").expect("bind an ephemeral port");
    let addr = server.addr();
    eprintln!("scraping http://{addr}/metrics …\n");
    let resp = ccp_server::fetch(addr, "GET", "/metrics", None).expect("self-scrape");
    assert_eq!(resp.status, 200);
    print!("{}", resp.body);
    server.shutdown();
}
