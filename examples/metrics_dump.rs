//! Runs a small Figure-9-style co-run (concurrent scan + aggregation
//! through the dual-pool executor, waves planned by the cache-aware
//! scheduler, masks programmed through the resctrl driver) and prints
//! every exported metric family in the Prometheus text format.
//!
//! ```text
//! cargo run --release --example metrics_dump
//! ```
//!
//! Set `CCP_DEMO_MS` to change the co-run window (default 200 ms).

use std::time::Duration;

fn main() {
    let window_ms: u64 = std::env::var("CCP_DEMO_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let registry = cache_partitioning::obs_demo::run_corun_demo(Duration::from_millis(window_ms));
    print!("{}", registry.render_prometheus());
}
