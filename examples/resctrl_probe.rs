//! resctrl probe: inspect this host's Cache Allocation Technology support
//! and, if available, exercise the full group lifecycle end-to-end.
//!
//! Safe to run anywhere: on hosts without CAT (most laptops, containers,
//! VMs) it explains exactly what is missing, then demonstrates the same
//! lifecycle against the in-memory fake tree so you can see what *would*
//! happen on a Xeon.
//!
//! ```text
//! cargo run --release --example resctrl_probe
//! ```

use cache_partitioning::prelude::*;
use ccp_resctrl::fs::FakeFs;

fn demo_lifecycle(mut ctl: CacheController, flavor: &str) {
    println!("\n--- CAT group lifecycle ({flavor}) ---");
    let info = ctl.info();
    println!(
        "cbm_mask={:#x} ({} ways), min_cbm_bits={}, num_closids={}",
        info.cbm_mask,
        info.ways(),
        info.min_cbm_bits,
        info.num_closids
    );

    let scan_group = ctl
        .create_group("ccp-demo-polluters")
        .expect("create group");
    println!("created group {:?}", scan_group.name());

    let mask = WayMask::new(0x3).expect("valid CAT mask");
    ctl.set_l3_mask(&scan_group, 0, mask)
        .expect("program schemata");
    println!(
        "programmed L3:0={:x} (the paper's 10% polluter slice)",
        mask.bits()
    );

    // Bind this very process's main thread, then read the schemata back.
    let tid = std::process::id() as u64;
    ctl.assign_task(&scan_group, tid).expect("assign task");
    let schemata = ctl.schemata(&scan_group).expect("read back");
    println!(
        "bound tid {tid}; kernel reports: {}",
        schemata.to_string().trim()
    );

    // Redundant updates are skipped (the paper's Section V-C fast path).
    for _ in 0..5 {
        ctl.set_l3_mask(&scan_group, 0, mask).expect("no-op update");
    }
    println!("5 redundant mask writes skipped: {}", ctl.skipped_writes());

    ctl.remove_group(scan_group).expect("cleanup");
    println!("group removed; tasks fell back to the root class");
}

fn main() {
    println!("resctrl / Intel CAT host probe");
    match detect() {
        CatSupport::Available { mount } => {
            println!("this host HAS usable CAT: resctrl mounted at {mount}");
            match CacheController::open() {
                Ok(ctl) => demo_lifecycle(ctl, "REAL hardware"),
                Err(e) => println!("…but opening it failed: {e}"),
            }
        }
        CatSupport::NotMounted => {
            println!("CPU+kernel support CAT but resctrl is not mounted; run:");
            println!("    sudo mount -t resctrl resctrl /sys/fs/resctrl");
        }
        CatSupport::KernelMissing { kernel_hint } => {
            println!("kernel lacks resctrl: {kernel_hint}");
        }
        CatSupport::HardwareMissing { missing_flags } => {
            println!("CPU does not advertise CAT (missing cpuinfo flags: {missing_flags:?})");
        }
    }

    // Always show the lifecycle against the fake tree, so the example is
    // useful on any machine.
    let fake = FakeFs::broadwell();
    let ctl = CacheController::open_with(Box::new(fake), "/sys/fs/resctrl")
        .expect("fake tree always mounts");
    demo_lifecycle(ctl, "in-memory fake of a Broadwell-EP");
}
