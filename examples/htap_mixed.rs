//! HTAP mixed workload on the *native* engine: real data, real operators,
//! real worker threads — and, on CAT hardware, real cache partitioning.
//!
//! Builds a dictionary-encoded sales table, then runs an OLTP point-select
//! stream and OLAP queries (scan / aggregation / FK join) through the job
//! executor. Every job carries its cache usage identifier; the executor
//! binds worker threads to LLC way masks through whichever allocator the
//! host supports:
//!
//! * CAT hardware + mounted resctrl → `ResctrlAllocator` (the real thing),
//! * anything else → `NoopAllocator` (jobs still run, unpartitioned).
//!
//! ```text
//! cargo run --release --example htap_mixed
//! ```

use cache_partitioning::prelude::*;
use ccp_engine::ops::{aggregate, join, oltp, scan};
use ccp_storage::{gen, Aggregate, Column, DictColumn, Table};
use std::sync::Arc;

fn main() {
    println!("HTAP mixed workload on the native engine\n");

    // --- pick the cache allocator the host supports -----------------------
    let support = detect();
    let allocator: Arc<dyn CacheAllocator> = match &support {
        CatSupport::Available { mount } => {
            println!("CAT detected, resctrl mounted at {mount}: partitioning is REAL");
            Arc::new(ResctrlAllocator::open_host().expect("probe said available"))
        }
        other => {
            println!("no usable CAT on this host ({other:?}); running with the no-op allocator");
            Arc::new(NoopAllocator)
        }
    };

    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
    let ex = JobExecutor::new(4, policy, allocator);

    // --- build a small sales database -------------------------------------
    const ROWS: usize = 400_000;
    println!("\ngenerating {ROWS} sales rows…");
    let amounts = Arc::new(DictColumn::build(&gen::uniform_ints(ROWS, 1_000_000, 1)));
    let regions = Arc::new(DictColumn::build(&gen::uniform_ints(ROWS, 100, 2)));
    let order_pk = Arc::new(DictColumn::build(&gen::primary_keys(50_000, 3)));
    let order_fk = Arc::new(DictColumn::build(&gen::foreign_keys(ROWS, 50_000, 4)));

    let mut customers = Table::new("customers");
    customers.add_column(
        "ID",
        Column::Int(DictColumn::build(&gen::primary_keys(10_000, 5))),
    );
    customers.add_column(
        "NAME",
        Column::Str(DictColumn::build(&gen::string_values(10_000, 2_000, 24, 6))),
    );

    // --- OLAP side ---------------------------------------------------------
    println!("\nOLAP queries through the partitioned executor:");
    let hits = scan::column_scan(&ex, &amounts, 500_000);
    println!("  Q1 column scan  (CUID: polluting) -> {hits} rows over threshold");

    let groups = aggregate::grouped_aggregate(&ex, &amounts, &regions, Aggregate::Max);
    println!(
        "  Q2 aggregation  (CUID: sensitive) -> {} groups",
        groups.len()
    );

    let matches = join::fk_join_count(&ex, &order_pk, &order_fk);
    println!("  Q3 FK join      (CUID: mixed)     -> {matches} matches");

    // --- OLTP side ---------------------------------------------------------
    let q = oltp::PointSelect::prepare(&customers, "ID", &["NAME"]);
    let row = q.execute_int(4242);
    println!(
        "  OLTP point select (full cache)     -> customer 4242 = {:?}",
        row.first().map(|r| &r[0].1)
    );

    // --- what the executor did ---------------------------------------------
    println!(
        "\nexecutor: {} jobs, {} mask switches, {} bind failures",
        ex.jobs_executed(),
        ex.mask_switches(),
        ex.bind_failures()
    );
    println!(
        "masks applied by CUID: polluting -> {:#x}, sensitive -> {:#x}",
        policy.mask_for(CacheUsageClass::Polluting).bits(),
        policy.mask_for(CacheUsageClass::Sensitive).bits(),
    );
    if !support.is_available() {
        println!(
            "\n(no CAT here, so the binds were no-ops — on a Xeon with resctrl mounted the\n\
             same program partitions the LLC for real)"
        );
    }
}
