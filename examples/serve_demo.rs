//! End-to-end demo of the networked service layer: start a server on an
//! ephemeral port, fire **concurrent** scan and aggregation clients at
//! `POST /query` over keep-alive connections, then scrape `/metrics`
//! and `/trace` to show the observability surface the run produced.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! This is `ccp serve` compressed into one process: the same admission
//! queue decides who may co-run (never two cache-sensitive queries at
//! once), the same dual-pool executor binds way masks per job, and the
//! same registry serves the scrape.

use ccp_server::{fetch, HttpClient, Json, Server, ServerConfig};
use std::thread;

fn main() {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        dataset_rows: 200_000,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.addr();
    println!(
        "serving on http://{addr} (CAT live: {})\n",
        server.cat_live()
    );

    // Two clients hammer the server concurrently: a polluting scan stream
    // and a cache-sensitive aggregation stream — the paper's antagonists,
    // arriving over the wire. Each holds one keep-alive connection for
    // its whole run, like a real application would.
    let clients: Vec<(&str, &str)> = vec![
        ("scan", r#"{"workload":"q1","threshold":25000}"#),
        ("aggregation", r#"{"workload":"q2","agg":"max"}"#),
    ];
    let mut handles = Vec::new();
    for (name, body) in clients {
        let body = body.to_string();
        handles.push(thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            let mut lines = Vec::new();
            for _ in 0..5 {
                let resp = client
                    .request("POST", "/query", Some(&body))
                    .expect("query round-trip");
                assert_eq!(resp.status, 200, "unexpected response: {}", resp.body);
                lines.push(resp.body.trim().to_string());
            }
            (name, lines)
        }));
    }
    for h in handles {
        let (name, lines) = h.join().expect("client thread");
        println!("── {name} ──");
        for line in &lines {
            let v = Json::parse(line).expect("valid outcome JSON");
            let queue_us = v
                .get("breakdown")
                .and_then(|b| b.get("queue_us"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            println!(
                "  class={:<10} mask={:<6} rows={:>7} latency={:>8.3} ms  queued={:>5} us  normalized={:.2}",
                v.get("class").and_then(Json::as_str).unwrap_or("?"),
                v.get("mask").and_then(Json::as_str).unwrap_or("?"),
                v.get("rows").and_then(Json::as_u64).unwrap_or(0),
                v.get("latency_secs").and_then(Json::as_f64).unwrap_or(0.0) * 1e3,
                queue_us,
                v.get("normalized_throughput")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            );
        }
    }

    let stats = fetch(addr, "GET", "/stats", None).expect("stats");
    println!("\n/stats → {}", stats.body);

    let scrape = fetch(addr, "GET", "/metrics", None).expect("scrape");
    println!("\nserver-side families from /metrics:");
    for line in scrape.body.lines() {
        if line.starts_with("ccp_server_") && !line.contains("_bucket") {
            println!("  {line}");
        }
    }
    assert!(
        scrape.body.contains("ccp_server_requests_total"),
        "scrape must expose the server families"
    );
    assert!(
        scrape.body.contains("ccp_executor_jobs_total"),
        "scrape must expose the executor families"
    );

    // The whole run above is also a trace: every query's admission wait,
    // mask bind and operator spans, ready to drop into Perfetto.
    let trace = fetch(addr, "GET", "/trace", None).expect("trace");
    let doc = Json::parse(&trace.body).expect("/trace is valid Chrome JSON");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events.len(),
        _ => panic!("traceEvents missing from /trace"),
    };
    println!(
        "\n/trace → {events} trace events ({} bytes; load in ui.perfetto.dev)",
        trace.body.len()
    );

    server.shutdown();
    println!("\nserver drained cleanly");
}
