//! Online cache-usage classification + cache-aware scheduling.
//!
//! The paper derives its operator taxonomy (polluting / sensitive / mixed)
//! from an offline micro-benchmark study and suggests, in its related-work
//! and conclusion sections, two extensions this library implements:
//!
//! 1. classify operators *online* from measured cache behaviour
//!    (`engine::sim::classify_operator`), and
//! 2. schedule queries so cache-sensitive ones never co-run
//!    (`engine::CacheAwareScheduler`).
//!
//! This example runs both: it profiles four unknown operators, recovers the
//! paper's taxonomy automatically, then plans co-run waves for a queue.
//!
//! ```text
//! cargo run --release --example online_classifier
//! ```

use cache_partitioning::prelude::*;
use ccp_engine::sim::{classify_operator, AggregationSim, ColumnScanSim, FkJoinSim};
use ccp_engine::{Admission, CacheAwareScheduler};

/// A named constructor for a simulated operator to be classified.
type SimOpFactory = Box<dyn Fn(&mut AddrSpace) -> Box<dyn ccp_engine::sim::SimOperator>>;

fn main() {
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
    let (warm, measure) = (3_000_000, 6_000_000);

    println!("probing four operators the engine has never seen…\n");
    let candidates: Vec<(&str, SimOpFactory)> = vec![
        (
            "mystery-A (it's a column scan)",
            Box::new(|s: &mut AddrSpace| Box::new(ColumnScanSim::paper_q1(s, 1 << 33)) as _),
        ),
        (
            "mystery-B (aggregation, 40 MiB dict, 1e5 groups)",
            Box::new(|s: &mut AddrSpace| {
                Box::new(AggregationSim::paper_q2(s, 1 << 40, 40 << 20, 100_000)) as _
            }),
        ),
        (
            "mystery-C (join, 1e6 keys)",
            Box::new(|s: &mut AddrSpace| Box::new(FkJoinSim::new(s, 1_000_000, 1 << 40)) as _),
        ),
        (
            "mystery-D (aggregation, 4 MiB dict, 1e2 groups)",
            Box::new(|s: &mut AddrSpace| {
                Box::new(AggregationSim::paper_q2(s, 1 << 40, 4 << 20, 100)) as _
            }),
        ),
    ];

    let mut classified = Vec::new();
    for (name, build) in &candidates {
        let r = classify_operator(&cfg, &policy, build.as_ref(), warm, measure);
        println!("{name}");
        println!(
            "  sensitivity {:.2}  re-use {:.2}  hot ≈ {:.2} MiB  ⇒ {:?}  (mask {:#x})",
            r.sensitivity_ratio,
            r.reuse_hit_ratio,
            r.hot_bytes as f64 / (1024.0 * 1024.0),
            r.cuid,
            policy.mask_for(r.cuid).bits()
        );
        classified.push(r.cuid);
    }

    println!("\nplanning co-run waves (2 slots, never two cache-sensitive together):");
    let sched = CacheAwareScheduler::new(policy, 2);
    let waves = sched.plan_waves(&classified);
    for (w, members) in waves.iter().enumerate() {
        let names: Vec<&str> = members.iter().map(|&i| candidates[i].0).collect();
        println!("  wave {}: {names:?}", w + 1);
    }

    // Admission control view of the same rule.
    let agg = classified[1];
    println!(
        "\nadmission check: may a second cache-sensitive query join a running one? {:?}",
        sched.admit(&[agg], agg)
    );
    assert_eq!(sched.admit(&[agg], agg), Admission::Defer);
    println!("(deferred — exactly the conclusion's advice)");
}
