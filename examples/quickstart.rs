//! Quickstart: the paper's headline result in one runnable program.
//!
//! Runs the paper's Figure 1 scenario on the simulated Broadwell machine:
//! an LLC-sensitive aggregation (Query 2) co-running with a polluting
//! column scan (Query 1), first unpartitioned, then with the paper's
//! partitioning policy (scan confined to 10 % of the LLC).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cache_partitioning::prelude::*;

fn main() {
    println!("cache-partitioning quickstart — reproducing the paper's Figure 1 effect\n");

    let e = Experiment::default();
    println!(
        "simulated machine: {} MiB LLC / {} ways, {} KiB L2 (Intel Xeon E5-2699 v4)",
        e.cfg.llc.size_bytes >> 20,
        e.cfg.llc.ways,
        e.cfg.l2.size_bytes >> 10
    );

    // The two queries of the mixed workload. The aggregation's hash table
    // (10^5 groups ≈ 55 MB across all worker threads) is LLC-sized — the
    // paper's most cache-sensitive configuration.
    let build_specs = |mask_for_scan: MaskChoice| {
        vec![
            QuerySpec::new("Q2 aggregation", MaskChoice::Full, |s| {
                paper::q2_aggregation(s, paper::DICT_4MIB, 100_000)
            }),
            QuerySpec::new("Q1 column scan", mask_for_scan, paper::q1_scan),
        ]
    };

    println!("\n[1/2] concurrent, no partitioning…");
    let base = e.run_concurrent_normalized(&build_specs(MaskChoice::Full));
    println!("\n[2/2] concurrent, scan confined by the paper's policy (mask 0x3)…");
    let part = e.run_concurrent_normalized(&build_specs(MaskChoice::Policy));

    println!(
        "\n{:>18} {:>14} {:>14}",
        "query", "unpartitioned", "partitioned"
    );
    for (b, p) in base.iter().zip(&part) {
        println!(
            "{:>18} {:>13.1}% {:>13.1}%",
            b.name,
            b.normalized * 100.0,
            p.normalized * 100.0
        );
    }
    let gain = part[0].normalized / base[0].normalized - 1.0;
    println!(
        "\ncache partitioning improved the aggregation by {:+.1}% — the paper's Section VI-B \
         effect —\nwhile the scan kept {:.0}% of its isolated throughput.",
        gain * 100.0,
        part[1].normalized * 100.0
    );
}
