//! Full-stack service-layer test: queries travel over real TCP sockets
//! through admission, classification and the dual-pool executor, and one
//! `/metrics` scrape shows the server, executor and scheduler families
//! side by side.

use cache_partitioning::server::{fetch, Json, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

fn test_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        dataset_rows: 20_000,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

#[test]
fn concurrent_scan_and_aggregation_round_trip() {
    let mut server = test_server();
    let addr = server.addr();

    const BODIES: [&str; 6] = [
        r#"{"workload":"q1","threshold":25000}"#,
        r#"{"workload":"q2","agg":"max"}"#,
        r#"{"workload":"q3"}"#,
        r#"{"workload":"oltp","key":7}"#,
        r#"{"workload":"tpch-1"}"#,
        r#"{"workload":"tpch-6"}"#,
    ];
    let handles: Vec<_> = BODIES
        .iter()
        .map(|body| {
            thread::spawn(move || {
                let resp = fetch(addr, "POST", "/query", Some(body)).expect("round trip");
                assert_eq!(resp.status, 200, "body: {}", resp.body);
                Json::parse(resp.body.trim()).expect("outcome is JSON")
            })
        })
        .collect();
    let outcomes: Vec<Json> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Classification travelled with each result.
    let class_of = |i: usize| outcomes[i].get("class").and_then(Json::as_str).unwrap();
    assert_eq!(class_of(0), "polluting");
    assert_eq!(class_of(1), "sensitive");
    assert_eq!(class_of(2), "mixed");
    for o in &outcomes {
        assert!(o.get("latency_secs").and_then(Json::as_f64).unwrap() > 0.0);
        let norm = o
            .get("normalized_throughput")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(norm > 0.0 && norm <= 1.0 + 1e-9);
        assert!(o
            .get("mask")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("0x"));
    }

    // The polluter is confined to the paper's 10% mask; the sensitive
    // query keeps the full Broadwell mask.
    assert_eq!(outcomes[0].get("mask").and_then(Json::as_str), Some("0x3"));
    assert_eq!(
        outcomes[1].get("mask").and_then(Json::as_str),
        Some("0xfffff")
    );

    server.shutdown();
}

#[test]
fn scrape_exposes_all_layers() {
    let mut server = test_server();
    let addr = server.addr();
    for body in [r#"{"workload":"q1"}"#, r#"{"workload":"q2"}"#] {
        assert_eq!(
            fetch(addr, "POST", "/query", Some(body)).unwrap().status,
            200
        );
    }
    let scrape = fetch(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(scrape.status, 200);
    let text = scrape.body;
    for family in [
        // Service layer.
        "ccp_server_connections_total",
        "ccp_server_requests_total",
        "ccp_server_request_seconds",
        "ccp_server_admission_queue_depth",
        "ccp_server_admission_rejections_total",
        // Executor pools (olap + oltp labels).
        "ccp_executor_jobs_total",
        "ccp_executor_mask_switches_total",
        // Scheduler.
        "ccp_scheduler_admissions_total",
    ] {
        assert!(text.contains(family), "scrape missing {family}:\n{text}");
    }
    assert!(
        text.contains("pool=\"olap\"") && text.contains("pool=\"oltp\""),
        "both pools labeled"
    );
    // Executed jobs from the queries above are visible.
    assert!(text.contains("ccp_server_requests_total{endpoint=\"/query\",status=\"200\"} 2"));
    server.shutdown();
}

#[test]
fn stats_healthz_and_error_routes() {
    let mut server = test_server();
    let addr = server.addr();

    let health = fetch(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("ok"));

    let stats = fetch(addr, "GET", "/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    let v = Json::parse(&stats.body).expect("stats is JSON");
    assert!(v.get("pools").and_then(|p| p.get("olap")).is_some());
    assert!(v.get("admission").and_then(|a| a.get("capacity")).is_some());

    assert_eq!(fetch(addr, "GET", "/nope", None).unwrap().status, 404);
    assert_eq!(fetch(addr, "POST", "/metrics", None).unwrap().status, 405);
    assert_eq!(fetch(addr, "GET", "/query", None).unwrap().status, 404);
    let bad = fetch(addr, "POST", "/query", Some("not json")).unwrap();
    assert_eq!(bad.status, 400);
    let unknown = fetch(addr, "POST", "/query", Some(r#"{"workload":"q99"}"#)).unwrap();
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("unknown workload"));
    // The sleep workload is disabled unless explicitly enabled.
    let sleep = fetch(addr, "POST", "/query", Some(r#"{"workload":"sleep"}"#)).unwrap();
    assert_eq!(sleep.status, 400);
    server.shutdown();
}

#[test]
fn keep_alive_pipelines_queries_on_one_socket() {
    let mut server = test_server();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = r#"{"workload":"q1"}"#;
    // Two pipelined requests, then one asking to close.
    let mut raw = String::new();
    for connection in ["keep-alive", "keep-alive", "close"] {
        raw.push_str(&format!(
            "POST /query HTTP/1.1\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    stream.write_all(raw.as_bytes()).unwrap();
    let mut replies = String::new();
    stream.read_to_string(&mut replies).unwrap();
    assert_eq!(
        replies.matches("HTTP/1.1 200 OK").count(),
        3,
        "all pipelined queries answered in order: {replies}"
    );
    assert_eq!(replies.matches("\"workload\":\"q1\"").count(), 3);
    server.shutdown();
}

#[test]
fn multi_line_ndjson_body_executes_each_line() {
    let mut server = test_server();
    let addr = server.addr();
    let body =
        "{\"workload\":\"q1\"}\n{\"workload\":\"oltp\",\"key\":3}\n{\"workload\":\"nope\"}\n";
    let resp = fetch(addr, "POST", "/query", Some(body)).unwrap();
    assert_eq!(resp.status, 200);
    let lines: Vec<&str> = resp.body.trim().lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"workload\":\"q1\""));
    assert!(lines[1].contains("\"workload\":\"oltp\""));
    assert!(
        lines[2].contains("unknown workload"),
        "per-line error: {}",
        lines[2]
    );
    server.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_port_is_released() {
    let mut server = test_server();
    let addr = server.addr();
    assert_eq!(fetch(addr, "GET", "/healthz", None).unwrap().status, 200);
    server.shutdown();
    server.shutdown(); // second call is a no-op
                       // The port is free again: a fresh listener can bind it.
    std::net::TcpListener::bind(addr).expect("port released after shutdown");
}
