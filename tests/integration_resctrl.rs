//! Cross-crate integration: the resctrl stack end-to-end against the fake
//! kernel tree — controller, allocator, executor, and the paper's exact
//! Section V-C configuration.

use cache_partitioning::prelude::*;
use ccp_engine::ops::scan;
use ccp_resctrl::fs::{FakeFs, ResctrlFs};
use ccp_storage::{gen, DictColumn};
use std::path::Path;
use std::sync::Arc;

fn fake_stack() -> (FakeFs, JobExecutor) {
    let fs = FakeFs::broadwell();
    let ctl = CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl")
        .expect("fake tree mounts");
    let allocator = Arc::new(ResctrlAllocator::new(ctl, vec![0]));
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    let ex = JobExecutor::new(
        2,
        PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
        allocator,
    );
    (fs, ex)
}

#[test]
fn scan_jobs_land_in_the_polluter_group() {
    let (fs, ex) = fake_stack();
    let col = Arc::new(DictColumn::build(&gen::uniform_ints(50_000, 1_000, 1)));
    let count = scan::column_scan(&ex, &col, 500);
    assert!(count > 0);
    ex.wait_idle();

    // The executor created the 0x3 group and programmed its schemata.
    let schemata = fs
        .read(Path::new("/sys/fs/resctrl/ccp-3/schemata"))
        .expect("polluter group exists");
    assert_eq!(schemata, "L3:0=3\n");
    // Both worker threads were bound (two distinct tids).
    let tasks = fs.tasks_of(Path::new("/sys/fs/resctrl/ccp-3"));
    assert!(!tasks.is_empty() && tasks.len() <= 2, "tasks: {tasks:?}");
}

#[test]
fn alternating_jobs_reuse_groups_not_closids() {
    let (fs, ex) = fake_stack();
    let col = Arc::new(DictColumn::build(&gen::uniform_ints(20_000, 1_000, 2)));
    // Many scans: masks flip between polluter and (after toggling) full.
    for round in 0..4 {
        ex.set_partitioning(round % 2 == 0);
        scan::column_scan(&ex, &col, 500);
    }
    ex.wait_idle();
    // Only two groups ever exist (one per distinct mask), no matter how
    // many times jobs alternated — CLOS ids are a scarce resource (16).
    assert_eq!(fs.group_count(), 2, "exactly one group per distinct mask");
}

#[test]
fn paper_section5c_masks_via_detect_fallback() {
    // On this host detect() almost certainly reports no CAT; the engine
    // must still run (paper: partitioning is an optimization, not a gate).
    let support = detect();
    let allocator: Arc<dyn CacheAllocator> = if support.is_available() {
        Arc::new(ResctrlAllocator::open_host().expect("probe said available"))
    } else {
        Arc::new(NoopAllocator)
    };
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    let ex = JobExecutor::new(
        2,
        PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
        allocator,
    );
    let col = Arc::new(DictColumn::build(&gen::uniform_ints(10_000, 100, 3)));
    assert_eq!(scan::column_scan(&ex, &col, 0), 10_000);
    assert_eq!(ex.bind_failures(), 0);
}
