//! Cross-crate integration: fast "shape" checks of the paper's key claims
//! on the simulated machine. These are smoke-sized versions of the bench
//! targets (the full figures live in `crates/bench/benches/`).

use cache_partitioning::prelude::*;
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::{paper, s4hana};

fn quick() -> Experiment {
    Experiment {
        warm_cycles: 1_500_000,
        measure_cycles: 3_000_000,
        ..Default::default()
    }
}

#[test]
fn scan_is_llc_insensitive_but_aggregation_is_not() {
    let e = quick();
    let way = e.cfg.llc.way_bytes();
    let sizes = [2 * way, 20 * way];

    let scan: OpBuilder = Box::new(paper::q1_scan);
    let scan_points = e.llc_sweep(&scan, &sizes);
    assert!(
        scan_points[0].normalized > 0.95,
        "scan at 10% cache must keep its throughput, got {}",
        scan_points[0].normalized
    );

    let agg: OpBuilder = Box::new(|s| paper::q2_aggregation(s, paper::DICT_40MIB, 100_000));
    let agg_points = e.llc_sweep(&agg, &sizes);
    assert!(
        agg_points[0].normalized < 0.85,
        "LLC-sized aggregation must degrade at 10% cache, got {}",
        agg_points[0].normalized
    );
}

#[test]
fn join_sensitivity_depends_on_bitvec_size() {
    let e = quick();
    let way = e.cfg.llc.way_bytes();
    let sizes = [2 * way, 20 * way];

    let small: OpBuilder = Box::new(|s| paper::q3_join(s, 1_000_000));
    let big: OpBuilder = Box::new(|s| paper::q3_join(s, 100_000_000));
    let small_drop = e.llc_sweep(&small, &sizes)[0].normalized;
    let big_drop = e.llc_sweep(&big, &sizes)[0].normalized;
    assert!(
        small_drop > 0.9,
        "125 KB bit vector join must be insensitive: {small_drop}"
    );
    assert!(
        big_drop < 0.85,
        "12.5 MB bit vector join must be sensitive: {big_drop}"
    );
}

#[test]
fn partitioning_policy_beats_unpartitioned_for_the_mixed_workload() {
    let e = quick();
    let mk = |mask| {
        vec![
            QuerySpec::new("q2", MaskChoice::Full, |s| {
                paper::q2_aggregation(s, paper::DICT_40MIB, 10_000)
            }),
            QuerySpec::new("q1", mask, paper::q1_scan),
        ]
    };
    let base = e.run_concurrent_normalized(&mk(MaskChoice::Full));
    let part = e.run_concurrent_normalized(&mk(MaskChoice::Policy));
    assert!(
        part[0].normalized > base[0].normalized,
        "aggregation must improve: {} -> {}",
        base[0].normalized,
        part[0].normalized
    );
    // The paper's no-regression guarantee: the confined scan loses (almost)
    // nothing.
    assert!(
        part[1].normalized > base[1].normalized - 0.02,
        "scan must not regress: {} -> {}",
        base[1].normalized,
        part[1].normalized
    );
}

#[test]
fn oltp_gains_from_confining_the_olap_scan() {
    // The OLTP working set is ~50 MiB; it needs a longer warm-up than the
    // other smoke tests to reach steady state.
    let e = Experiment {
        warm_cycles: 5_000_000,
        measure_cycles: 8_000_000,
        ..Default::default()
    };
    let mk = |mask| {
        vec![
            QuerySpec::new("oltp", MaskChoice::Full, s4hana::oltp_13col),
            QuerySpec::new("olap", mask, paper::q1_scan),
        ]
    };
    let base = e.run_concurrent_normalized(&mk(MaskChoice::Full));
    let part = e.run_concurrent_normalized(&mk(MaskChoice::Policy));
    assert!(
        base[0].normalized < 0.95,
        "OLAP must hurt OLTP: {}",
        base[0].normalized
    );
    assert!(
        part[0].normalized > base[0].normalized,
        "partitioning must lift OLTP: {} -> {}",
        base[0].normalized,
        part[0].normalized
    );
}

#[test]
fn tpch_q1_is_more_cache_sensitive_than_q13() {
    // Q1 aggregates 590M rows through the 29 MiB price dictionary; Q13
    // streams through tiny dictionaries and an L2-scale customer bit
    // vector.
    let e = quick();
    let way = e.cfg.llc.way_bytes();
    let sizes = [2 * way, 20 * way];
    let q1: OpBuilder = Box::new(|s| ccp_tpch::build_query(s, 1));
    let q13: OpBuilder = Box::new(|s| ccp_tpch::build_query(s, 13));
    let q1_drop = e.llc_sweep(&q1, &sizes)[0].normalized;
    let q13_drop = e.llc_sweep(&q13, &sizes)[0].normalized;
    assert!(
        q1_drop < q13_drop - 0.1,
        "TPC-H Q1 ({q1_drop}) must be clearly more LLC-sensitive than Q13 ({q13_drop})"
    );
}

#[test]
fn experiments_are_reproducible_end_to_end() {
    let e = quick();
    let run = || {
        let specs = vec![
            QuerySpec::new("q2", MaskChoice::Full, |s| {
                paper::q2_aggregation(s, paper::DICT_4MIB, 1_000)
            }),
            QuerySpec::new("q1", MaskChoice::Policy, paper::q1_scan),
        ];
        e.run_concurrent_normalized(&specs)
            .into_iter()
            .map(|o| (o.normalized * 1e12) as i64)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(),
        run(),
        "identical runs must produce identical results"
    );
}
