//! End-to-end exposition check: the Figure-9-style co-run demo (the same
//! code path `examples/metrics_dump.rs` runs) must produce structurally
//! valid Prometheus text containing the executor, scheduler, resctrl and
//! native-workload families.

use cache_partitioning::obs_demo::run_corun_demo;
use std::collections::HashSet;
use std::time::Duration;

fn demo_text() -> String {
    run_corun_demo(Duration::from_millis(30)).render_prometheus()
}

#[test]
fn corun_demo_exports_every_layer() {
    let text = demo_text();
    // Executor: both pools, per-class counters, latency histograms.
    assert!(text.contains("# TYPE ccp_executor_jobs_total counter"));
    assert!(text.contains("ccp_executor_jobs_total{class=\"polluting\",pool=\"olap\"}"));
    assert!(text.contains("ccp_executor_jobs_total{class=\"sensitive\",pool=\"oltp\"}"));
    assert!(text.contains("# TYPE ccp_executor_job_latency_seconds histogram"));
    assert!(text.contains("ccp_executor_queue_wait_seconds_count"));
    // Scheduler: the demo plans 2 waves from its 4-query co-run queue.
    assert!(text.contains("ccp_scheduler_waves_planned_total 2"));
    assert!(text.contains("ccp_scheduler_wave_occupancy_count 2"));
    // resctrl: three groups programmed once each, three redundant writes
    // skipped, CMT occupancy gauges per group.
    assert!(text.contains("ccp_resctrl_schemata_writes_total 3"));
    assert!(text.contains("ccp_resctrl_skipped_writes_total 3"));
    assert!(text.contains("ccp_resctrl_llc_occupancy_bytes{domain=\"0\",group=\"cuid_polluting\"}"));
    // Native workload: one throughput gauge per co-run query.
    assert!(text.contains("ccp_native_query_throughput{query=\"q1_scan\"}"));
    assert!(text.contains("ccp_native_query_throughput{query=\"q2_aggregation\"}"));
}

#[test]
fn corun_demo_ran_real_work() {
    let text = demo_text();
    // The scan and aggregation each complete at least once even in a
    // 30 ms window, and their jobs flow through the OLAP pool.
    let jobs_line = text
        .lines()
        .find(|l| l.starts_with("ccp_executor_jobs_total{class=\"polluting\",pool=\"olap\"}"))
        .expect("olap polluting jobs line present");
    let jobs: u64 = jobs_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(jobs > 0, "scan jobs must have executed: {jobs_line}");
    let ping_line = text
        .lines()
        .find(|l| l.starts_with("ccp_native_query_completions{query=\"oltp_ping\"}"))
        .expect("oltp ping completions present");
    let pings: f64 = ping_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(pings >= 1.0, "OLTP pings must have completed: {ping_line}");
}

#[test]
fn exposition_is_structurally_valid_prometheus() {
    let text = demo_text();
    assert!(!text.is_empty());
    let mut typed: HashSet<String> = HashSet::new();
    let mut last_help: Option<String> = None;
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a metric");
            last_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a metric");
            let kind = parts.next().expect("TYPE has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "bad kind {kind}"
            );
            // TYPE directly follows its HELP line.
            assert_eq!(
                last_help.as_deref(),
                Some(name),
                "HELP/TYPE pairing for {name}"
            );
            assert!(
                typed.insert(name.to_string()),
                "family {name} rendered twice"
            );
            continue;
        }
        // Sample line: `name{labels} value` or `name value`.
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable sample value {value:?} in {line:?}"
        );
        let name = series.split('{').next().unwrap();
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.contains(*b))
            .unwrap_or(name);
        assert!(typed.contains(base), "sample {name} lacks a # TYPE header");
        if let Some(rest) = series.split_once('{') {
            assert!(rest.1.ends_with('}'), "unterminated label set in {line:?}");
        }
    }
    assert!(
        typed.len() >= 10,
        "expected a rich exposition, got {} families",
        typed.len()
    );
}

#[test]
fn histogram_bucket_counts_are_cumulative_and_consistent() {
    let text = demo_text();
    // For one histogram series, +Inf bucket == _count and buckets never
    // decrease.
    let buckets: Vec<u64> = text
        .lines()
        .filter(|l| {
            l.starts_with(
                "ccp_executor_job_latency_seconds_bucket{class=\"polluting\",pool=\"olap\"",
            )
        })
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(!buckets.is_empty());
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "buckets must be cumulative"
    );
    let count_line = text
        .lines()
        .find(|l| {
            l.starts_with(
                "ccp_executor_job_latency_seconds_count{class=\"polluting\",pool=\"olap\"}",
            )
        })
        .expect("histogram _count present");
    let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(*buckets.last().unwrap(), count, "+Inf bucket equals _count");
}
