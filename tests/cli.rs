//! Black-box tests for the `ccp` binary: unknown subcommands and
//! malformed flags must exit non-zero with a clear message on stderr —
//! never panic, never silently succeed.

use std::process::{Command, Output};

fn ccp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccp"))
        .args(args)
        .output()
        .expect("spawn ccp")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_subcommand_fails_with_message() {
    let out = ccp(&["bogus"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("unknown command"), "stderr: {err}");
    assert!(err.contains("bogus"), "names the offender: {err}");
    assert!(!err.contains("panicked"), "no panic: {err}");
}

#[test]
fn stray_arguments_on_simple_commands_fail() {
    for cmd in ["probe", "demo", "classify"] {
        let out = ccp(&[cmd, "--verbose"]);
        assert_eq!(out.status.code(), Some(1), "{cmd} accepts no flags");
        let err = stderr(&out);
        assert!(err.contains("takes no arguments"), "{cmd} stderr: {err}");
    }
}

#[test]
fn malformed_serve_flags_fail_without_binding() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["serve", "--queue", "nope"],
            "expected a number, got \"nope\"",
        ),
        (&["serve", "--frobnicate"], "unknown serve flag"),
        (&["serve", "--slots"], "flag --slots needs a value"),
        (&["serve", "--rows", "0"], "expected a positive number"),
        (&["serve", "--addr"], "flag --addr needs a value"),
    ];
    for (args, expect) in cases {
        let out = ccp(args);
        assert_eq!(out.status.code(), Some(1), "args: {args:?}");
        let err = stderr(&out);
        assert!(err.contains(expect), "args {args:?} stderr: {err}");
        assert!(!err.contains("panicked"), "no panic for {args:?}: {err}");
    }
}

#[test]
fn help_and_no_args_succeed() {
    for args in [&["help"][..], &[][..]] {
        let out = ccp(args);
        assert!(out.status.success(), "args: {args:?}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("serve"), "help mentions serve: {text}");
    }
}
