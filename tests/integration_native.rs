//! Cross-crate integration: native operators through the partitioned
//! executor, verified against naive reference computations, with the
//! allocator call stream checked end-to-end.

use cache_partitioning::prelude::*;
use ccp_engine::alloc::RecordingAllocator;
use ccp_engine::ops::{aggregate, join, oltp, scan};
use ccp_storage::{gen, Aggregate, Column, DictColumn, Table};
use std::collections::BTreeMap;
use std::sync::Arc;

fn executor_with(alloc: Arc<dyn CacheAllocator>) -> JobExecutor {
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    JobExecutor::new(
        4,
        PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
        alloc,
    )
}

#[test]
fn full_query_mix_produces_correct_results_and_masks() {
    let rec = Arc::new(RecordingAllocator::new());
    let ex = executor_with(rec.clone());

    const ROWS: usize = 120_000;
    let amounts_raw = gen::uniform_ints(ROWS, 50_000, 11);
    let regions_raw = gen::uniform_ints(ROWS, 64, 12);
    let amounts = Arc::new(DictColumn::build(&amounts_raw));
    let regions = Arc::new(DictColumn::build(&regions_raw));

    // Q1: scan.
    let threshold = 25_000;
    let scan_count = scan::column_scan(&ex, &amounts, threshold);
    let expected = amounts_raw.iter().filter(|&&v| v > threshold).count() as u64;
    assert_eq!(scan_count, expected);

    // Q2: aggregation, checked against a BTreeMap reference.
    let agg = aggregate::grouped_aggregate(&ex, &amounts, &regions, Aggregate::Max);
    let mut reference: BTreeMap<i64, i64> = BTreeMap::new();
    for (a, g) in amounts_raw.iter().zip(&regions_raw) {
        reference
            .entry(*g)
            .and_modify(|m| *m = (*m).max(*a))
            .or_insert(*a);
    }
    assert_eq!(agg.len(), reference.len());
    for (g, m) in &reference {
        let code = regions.dict().encode(g).expect("group exists");
        assert_eq!(agg.get(code), Some(*m));
    }

    // Q3: join — every FK matches because FKs reference the PK domain.
    let pk = Arc::new(DictColumn::build(&gen::primary_keys(30_000, 13)));
    let fk = Arc::new(DictColumn::build(&gen::foreign_keys(90_000, 30_000, 14)));
    assert_eq!(join::fk_join_count(&ex, &pk, &fk), 90_000);

    // The allocator saw all three mask classes: 0x3 for the scan and the
    // small-bitvec join, 0xfffff for the aggregation.
    let masks: std::collections::HashSet<u32> = rec.calls().iter().map(|(_, m)| m.bits()).collect();
    assert!(masks.contains(&0x3), "polluter mask must appear");
    assert!(masks.contains(&0xfffff), "sensitive mask must appear");
}

#[test]
fn oltp_point_select_over_generated_table() {
    let mut t = Table::new("customers");
    let ids = gen::primary_keys(5_000, 21);
    t.add_column("ID", Column::Int(DictColumn::build(&ids)));
    t.add_column(
        "NAME",
        Column::Str(DictColumn::build(&gen::string_values(5_000, 500, 16, 22))),
    );
    let q = oltp::PointSelect::prepare(&t, "ID", &["NAME"]);
    // Every primary key is present exactly once.
    for key in [1i64, 777, 5_000] {
        let rows = q.execute_int(key);
        assert_eq!(rows.len(), 1, "key {key}");
        assert_eq!(rows[0][0].0, "NAME");
    }
    assert!(q.execute_int(5_001).is_empty());
}

#[test]
fn executor_respects_partitioning_toggle_mid_stream() {
    let rec = Arc::new(RecordingAllocator::new());
    let ex = executor_with(rec.clone());
    let col = Arc::new(DictColumn::build(&gen::uniform_ints(10_000, 100, 31)));

    scan::column_scan(&ex, &col, 50);
    ex.set_partitioning(false);
    scan::column_scan(&ex, &col, 50);

    let masks: Vec<u32> = rec.calls().iter().map(|(_, m)| m.bits()).collect();
    assert!(
        masks.contains(&0x3),
        "partitioned phase uses the polluter mask"
    );
    assert!(
        masks.contains(&0xfffff),
        "unpartitioned phase re-binds to the full mask"
    );
}

#[test]
fn join_cuid_switches_with_pk_cardinality() {
    // Small PK domain -> polluter mask; LLC-comparable domain -> 60% mask.
    let rec = Arc::new(RecordingAllocator::new());
    let ex = executor_with(rec.clone());

    let small_pk = Arc::new(DictColumn::build(&gen::primary_keys(1_000, 41)));
    let fk = Arc::new(DictColumn::build(&gen::foreign_keys(5_000, 1_000, 42)));
    join::fk_join_count(&ex, &small_pk, &fk);
    assert!(rec.calls().iter().all(|(_, m)| m.bits() == 0x3));

    // An artificial wide-domain PK column: values spread to 100M so the bit
    // vector is LLC-comparable (12.5 MB).
    let wide: Vec<i64> = (0..2_000).map(|i| i * 50_000 + 1).collect();
    let wide_pk = Arc::new(DictColumn::build(&wide));
    let fk2 = Arc::new(DictColumn::build(&vec![1i64; 5_000]));
    join::fk_join_count(&ex, &wide_pk, &fk2);
    let last_masks: Vec<u32> = rec.calls().iter().map(|(_, m)| m.bits()).collect();
    assert!(
        last_masks.contains(&0xfff),
        "LLC-comparable bit vector gets the 60% mask"
    );
}
