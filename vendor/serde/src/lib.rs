//! Offline stand-in for the `serde` crate.
//!
//! The workspace's `#[derive(Serialize, Deserialize)]` annotations mark
//! types as *intended* to be serializable; nothing in the workspace
//! actually serializes through serde's data model (the bench harness
//! renders its JSON by hand — see `ccp-bench`). So in this registry-less
//! build environment `Serialize`/`Deserialize` are marker traits with
//! blanket implementations, and the derives (re-exported from the
//! vendored `serde_derive` when the `derive` feature is on) expand to
//! nothing. Swapping the real serde back in requires only restoring the
//! registry dependency — call sites are source-compatible.

/// Marker for types serializable in principle. Blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types deserializable in principle. Blanket-implemented.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Deserialize<'_> for T {}

/// Owned-deserialization marker, mirroring serde's blanket rule.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized + for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn blanket_impls_cover_everything() {
        assert_serialize::<u64>();
        assert_serialize::<Vec<String>>();
        assert_deserialize::<(u8, f64)>();
    }

    #[cfg(feature = "derive")]
    #[test]
    fn derives_compile_on_structs_and_enums() {
        #[derive(Serialize, Deserialize)]
        struct S {
            _a: u32,
        }
        #[derive(Serialize, Deserialize)]
        enum E {
            _A,
            _B { _x: u64 },
        }
        assert_serialize::<S>();
        assert_serialize::<E>();
    }
}
