//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's microbenchmarks use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! benchmark groups with [`Throughput`], and [`Bencher::iter`] /
//! [`Bencher::iter_batched`] / [`Bencher::iter_batched_ref`] — backed by
//! a small calibrating timer instead of criterion's statistical engine.
//! Results print as `<group>/<name>  time: ... ns/iter (± throughput)`.
//! No files are written and no command-line options are parsed.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch sizing knob (accepted for API compatibility; the stand-in
/// re-runs setup for every iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement configuration shared by all benchmarks of a binary.
#[derive(Debug, Clone)]
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the stand-in quick: ~1/4 s measuring window per benchmark
        // unless CCP_BENCH_MS overrides it.
        let ms = std::env::var("CCP_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(250);
        Criterion {
            target_time: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, None, self.target_time, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `<group>/<name>`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_benchmark(&full, self.throughput, self.criterion.target_time, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    target_time: Duration,
    /// Total measured time and iterations of the final window.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: grow the iteration count until the window is at
        // least ~1/8 of the target time, then measure one full window.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_time / 8 || n >= 1 << 30 {
                self.result = Some((elapsed, n));
                if elapsed < self.target_time && n < 1 << 30 {
                    let scale =
                        (self.target_time.as_nanos() / elapsed.as_nanos().max(1)).clamp(1, 1024);
                    n = n.saturating_mul(scale as u64);
                    let start = Instant::now();
                    for _ in 0..n {
                        black_box(routine());
                    }
                    self.result = Some((start.elapsed(), n));
                }
                return;
            }
            n = n.saturating_mul(4);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.target_time / 4 && iters < 1 << 24 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((total, iters.max(1)));
    }

    /// Like [`Bencher::iter_batched`] with the routine borrowing its
    /// input.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.target_time / 4 && iters < 1 << 24 {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((total, iters.max(1)));
    }
}

fn run_benchmark(
    name: &str,
    throughput: Option<Throughput>,
    target_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        target_time,
        result: None,
    };
    f(&mut b);
    let Some((elapsed, iters)) = b.result else {
        println!("{name:<40} (no measurement recorded)");
        return;
    };
    let ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    emit_json_line(name, ns_per_iter, iters);
    let rate = |units: u64| {
        let per_sec = units as f64 * 1e9 / ns_per_iter.max(1e-9);
        if per_sec >= 1e9 {
            format!("{:.2} G", per_sec / 1e9)
        } else if per_sec >= 1e6 {
            format!("{:.2} M", per_sec / 1e6)
        } else {
            format!("{per_sec:.0} ")
        }
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("{name:<40} {ns_per_iter:>12.1} ns/iter   {}elem/s", rate(n));
        }
        Some(Throughput::Bytes(n)) => {
            println!("{name:<40} {ns_per_iter:>12.1} ns/iter   {}B/s", rate(n));
        }
        None => println!("{name:<40} {ns_per_iter:>12.1} ns/iter"),
    }
}

/// Appends one JSON line per measurement to the file named by the
/// `CCP_BENCH_JSON` environment variable, for machine consumers such as
/// the CI perf-regression gate. Silent no-op when the variable is unset;
/// write failures are reported on stderr but never fail the benchmark.
fn emit_json_line(name: &str, ns_per_iter: f64, iters: u64) {
    let Ok(path) = std::env::var("CCP_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let line =
        format!("{{\"id\":\"{escaped}\",\"ns_per_iter\":{ns_per_iter:.3},\"iters\":{iters}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion stand-in: cannot append to {path}: {e}");
    }
}

/// Declares a group-runner function calling each benchmark with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1));
        g.bench_function("spin", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7));
        });
        g.finish();
    }

    #[test]
    fn json_lines_append_when_env_is_set() {
        let path = std::env::temp_dir().join(format!("ccp-bench-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CCP_BENCH_JSON", &path);
        let mut c = Criterion {
            target_time: Duration::from_millis(2),
        };
        c.bench_function("gate/probe", |b| b.iter(|| black_box(1u64) + 1));
        std::env::remove_var("CCP_BENCH_JSON");
        let text = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        let line = text
            .lines()
            .find(|l| l.contains("\"id\":\"gate/probe\""))
            .expect("measurement line present");
        assert!(line.contains("\"ns_per_iter\":"), "line: {line}");
        assert!(line.contains("\"iters\":"), "line: {line}");
    }

    #[test]
    fn batched_runs_setup_per_iteration() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let setups = AtomicU64::new(0);
        let runs = AtomicU64::new(0);
        let mut c = Criterion {
            target_time: Duration::from_millis(2),
        };
        c.bench_function("batched", |b| {
            b.iter_batched_ref(
                || setups.fetch_add(1, Ordering::Relaxed),
                |_| runs.fetch_add(1, Ordering::Relaxed),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups.load(Ordering::Relaxed), runs.load(Ordering::Relaxed));
        assert!(runs.load(Ordering::Relaxed) >= 1);
    }
}
