//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. The build environment has no access to a crates registry,
//! so the workspace patches `parking_lot` to this crate (see the
//! workspace `Cargo.toml`). Only the API surface this workspace uses is
//! provided: [`Mutex`], [`MutexGuard`], [`Condvar`] and [`RwLock`] — with
//! parking_lot semantics (no lock poisoning: a panic while holding a lock
//! does not poison it for other threads).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex that ignores poisoning, like `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never fails:
    /// poisoning is ignored, matching parking_lot behaviour.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can move the std
/// guard out and back in without unsafe code; it is always `Some` outside
/// of that method.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable working with [`MutexGuard`], parking_lot style
/// (`wait` takes `&mut guard` instead of consuming it).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and blocks until notified.
    /// (`T: Sized` because `std::sync::Condvar::wait` requires it.)
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present on wait entry");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Like [`wait`](Condvar::wait) with an upper bound on blocking time.
    /// Returns a result whose [`timed_out`](WaitTimeoutResult::timed_out)
    /// reports whether the wait ended by timeout rather than notification.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present on wait entry");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes up one blocked thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes up all blocked threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Outcome of [`Condvar::wait_for`], mirroring
/// `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock that ignores poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still usable.
        assert_eq!(*m.lock(), 1);
    }
}
