//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic mini property-testing harness. It covers exactly the
//! surface this workspace's property suites use:
//!
//! * the [`proptest!`] macro over `#[test] fn name(arg in strategy, ...)`
//!   items;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * integer range strategies (`0u32..28`, `1u32..=32`);
//! * [`collection::vec`] and [`collection::btree_set`];
//! * tuple strategies (`(0u32..200, -100i64..100)`);
//! * [`strategy::Just`], [`prop_oneof!`] and
//!   [`strategy::Strategy::prop_map`].
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of cases from a generator seeded by the test's name, so every
//! failure reproduces exactly. The case count can be raised with the
//! `PROPTEST_CASES` environment variable.

// Lets code inside this crate (including the macro-expansion tests below)
// refer to itself by its external name, exactly like user crates do.
extern crate self as proptest;

pub mod test_runner {
    //! Deterministic case generation.

    /// Deterministic RNG driving case generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so each property gets an
        /// independent but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Draws a value in `0..span` (rejection sampling, no modulo
        /// bias).
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty sampling domain");
            let zone = u64::MAX - (u64::MAX % span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }

    /// Number of cases each property runs (default 64, override with
    /// `PROPTEST_CASES`).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, dynamically dispatched strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuples {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuples! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = sample_len(rng, &self.len);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s targeting a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets of `element` values with a size in `size`
    /// (best effort: if the element domain is too small to reach the
    /// sampled size, the set is as large as the domain allows).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = sample_len(rng, &self.size);
            let mut out = BTreeSet::new();
            // Inserting duplicates does not grow the set, so allow a
            // generous number of draws before giving up.
            let mut attempts = target.saturating_mul(16) + 16;
            while out.len() < target && attempts > 0 {
                out.insert(self.element.generate(rng));
                attempts -= 1;
            }
            out
        }
    }

    fn sample_len(rng: &mut TestRng, range: &Range<usize>) -> usize {
        assert!(range.start < range.end, "empty length range");
        let span = (range.end - range.start) as u64;
        range.start + rng.below(span) as usize
    }
}

pub mod prelude {
    //! Everything the `proptest!` suites import.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running [`test_runner::cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..$crate::test_runner::cases() {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a property (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_reaches_min_size() {
        let mut rng = TestRng::deterministic("set");
        for _ in 0..200 {
            let s = crate::collection::btree_set(0u64..10_000, 2..50).generate(&mut rng);
            assert!((2..50).contains(&s.len()));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..8).prop_map(|v| v)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 3];
        for _ in 0..300 {
            match s.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                5..=7 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    proptest! {
        /// The macro itself: args bind, bodies run, assertions fire.
        #[test]
        fn macro_binds_args(a in 0u32..10, b in proptest::collection::vec(0i64..5, 1..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b.len().min(3), b.len());
            prop_assert_ne!(b.len(), 0);
        }
    }
}
