//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace patches
//! `rand` to this crate. It provides a deterministic, seedable PRNG
//! ([`rngs::StdRng`], a xoshiro256** generator seeded via SplitMix64)
//! behind the `rand 0.8` API names the workspace uses: [`SeedableRng`],
//! [`Rng::gen_range`] over integer ranges, [`RngCore::next_u64`], and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The streams differ from the real `rand` crate's — everything in this
//! workspace only relies on *seed determinism* (same seed ⇒ same data),
//! not on matching upstream byte streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as `gen_range` domains.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded(rng, span as u64);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-width domain: any 64-bit draw is in range.
                    return rng.next_u64() as $t;
                }
                let v = bounded(rng, span as u64);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Draws a value in `0..span` without modulo bias (rejection sampling on
/// the top of the 64-bit stream).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Zone is the largest multiple of span that fits in u64.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the crate's standard RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // procedure the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element reference, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values drawn in 1000 tries");
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        assert_ne!(v, orig, "shuffle changed the order");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (1_800..3_200).contains(&trues),
            "got {trues} trues for p=0.25"
        );
    }

    #[test]
    fn choose_is_uniformish() {
        let v = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
