//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate (see `vendor/serde`) declares `Serialize`
//! and `Deserialize` as marker traits with blanket implementations, so
//! the derives legitimately have nothing to generate: they accept the
//! input (including `#[serde(...)]` helper attributes) and emit no code.
//! That keeps the workspace's `#[derive(Serialize, Deserialize)]`
//! annotations compiling unchanged in this registry-less build
//! environment.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (the trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (the trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
