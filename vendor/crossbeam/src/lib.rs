//! Offline stand-in for the `crossbeam` crate. Only `crossbeam::channel`
//! is provided (the workspace's executor uses an unbounded MPMC channel);
//! it is implemented over `std::sync` primitives with the crossbeam
//! semantics the executor depends on: cloneable receivers, FIFO order per
//! sender, and `recv` returning `Err` once every sender is dropped and
//! the queue has drained.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        state: Arc<State<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC): each
    /// message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        state: Arc<State<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let state = Arc::new(State {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                state: state.clone(),
            },
            Receiver { state },
        )
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue and wakes one receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.state.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.state.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.state.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                state: self.state.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.state.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe disconnection.
                self.state.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.state.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.state.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.state.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.state
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.state
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                state: self.state.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn each_message_delivered_exactly_once_across_clones() {
            let (tx, rx) = unbounded::<u64>();
            let n: u64 = 10_000;
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for i in 1..=n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, n * (n + 1) / 2);
        }

        #[test]
        fn blocked_receivers_wake_on_disconnect() {
            let (tx, rx) = unbounded::<()>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }
    }
}
