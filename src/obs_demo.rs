//! A small Figure-9-style co-run wired for exposition — shared by
//! `examples/metrics_dump.rs` and the metrics integration test.
//!
//! The demo assembles the full telemetry chain of the workspace in one
//! process: a dual-pool executor (partitioned OLAP, full-cache OLTP)
//! runs a concurrent scan + aggregation mix, the cache-aware scheduler
//! plans the co-run's waves, and a resctrl controller (over the in-memory
//! fake, so it works on any host) programs the paper's three masks and
//! reads CMT occupancy back. Everything registers into one
//! [`Registry`], whose Prometheus rendering is the demo's output.

use ccp_engine::alloc::RecordingAllocator;
use ccp_engine::ops::{aggregate, scan};
use ccp_engine::{
    CacheAwareScheduler, CacheUsageClass, DualPoolExecutor, Job, PartitionPolicy, SchedulerMetrics,
};
use ccp_obs::Registry;
use ccp_resctrl::{fs::FakeFs, CacheController};
use ccp_storage::{gen, Aggregate, DictColumn};
use ccp_workloads::{run_mixed, NativeQuery};
use std::sync::Arc;
use std::time::Duration;

/// Runs the co-run demo for roughly `window` of wall-clock time and
/// returns the registry holding every exported family.
pub fn run_corun_demo(window: Duration) -> Registry {
    let registry = Registry::new();

    let cfg = ccp_cachesim::HierarchyConfig::broadwell_e5_2699_v4();
    let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);

    // --- Scheduler: plan the co-run's waves (one sensitive query per
    // wave, polluters fill the rest).
    let scheduler = CacheAwareScheduler::new(policy, 2);
    let scheduler_metrics = SchedulerMetrics::new();
    scheduler_metrics.register_into(&registry);
    let queue = [
        CacheUsageClass::Polluting,
        CacheUsageClass::Sensitive,
        CacheUsageClass::Polluting,
        CacheUsageClass::Sensitive,
    ];
    let waves = scheduler.plan_waves_observed(&queue, &scheduler_metrics);
    debug_assert_eq!(waves.len(), 2);

    // --- Engine: a dual pool (2 OLAP workers partitioned by CUID, 1
    // OLTP worker always on the full mask) driving real column data.
    let dual = DualPoolExecutor::new(2, 1, policy, Arc::new(RecordingAllocator::new()));
    dual.register_metrics(&registry);

    const ROWS: usize = 60_000;
    let amounts = Arc::new(DictColumn::build(&gen::uniform_ints(ROWS, 50_000, 11)));
    let regions = Arc::new(DictColumn::build(&gen::uniform_ints(ROWS, 64, 12)));

    // --- Native co-run: the paper's Q1 scan (polluting) against the Q2
    // aggregation (sensitive), repeat-until-deadline, plus an OLTP ping
    // through the dedicated pool.
    let queries = vec![
        NativeQuery::new("q1_scan", {
            let dual = &dual;
            let amounts = amounts.clone();
            move || {
                scan::column_scan(dual.olap(), &amounts, 25_000);
            }
        }),
        NativeQuery::new("q2_aggregation", {
            let dual = &dual;
            let amounts = amounts.clone();
            let regions = regions.clone();
            move || {
                aggregate::grouped_aggregate(dual.olap(), &amounts, &regions, Aggregate::Max);
            }
        }),
        NativeQuery::new("oltp_ping", {
            let dual = &dual;
            move || {
                dual.submit_oltp(Job::unannotated("ping", || {}));
                dual.oltp().wait_idle();
            }
        }),
    ];
    let report = run_mixed(window, &queries);
    report.export_metrics(&registry);

    // --- resctrl: program the paper's Section V-B masks on the fake
    // kernel tree and read CMT/MBM monitoring back as gauges.
    let fake = FakeFs::broadwell();
    let mut ctl = CacheController::open_with(Box::new(fake.clone()), "/sys/fs/resctrl")
        .expect("fake resctrl tree is always mounted");
    ctl.metrics().register_into(&registry);
    let groups = [
        ("cuid_polluting", 0x3u32),
        ("cuid_sensitive", 0xfffff),
        ("cuid_mixed", 0xfff),
    ];
    for (i, (name, mask)) in groups.iter().enumerate() {
        let g = ctl.create_group(name).expect("closids available");
        let mask = ccp_cachesim::WayMask::new(*mask).expect("paper masks are valid");
        ctl.set_l3_mask(&g, 0, mask)
            .expect("mask fits the fake hardware");
        // Re-programming the same mask exercises the Section V-C skip path.
        ctl.set_l3_mask(&g, 0, mask).expect("skipped rewrite");
        ctl.assign_task(&g, 100 + i as u64)
            .expect("task file writable");
        // The fake kernel's CMT counter "ticks": occupancy proportional
        // to the group's way share of the 55 MiB LLC.
        let occupancy = (mask.way_count() as u64) * (55 * 1024 * 1024 / 20);
        fake.set_mon_counter(
            std::path::Path::new(&format!("/sys/fs/resctrl/{name}")),
            "llc_occupancy",
            occupancy,
        );
        ctl.monitoring(&g, 0).expect("fake exposes mon_data");
    }

    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_registry_contains_all_layers() {
        let registry = run_corun_demo(Duration::from_millis(20));
        let text = registry.render_prometheus();
        for family in [
            "ccp_executor_jobs_total",
            "ccp_scheduler_waves_planned_total",
            "ccp_resctrl_schemata_writes_total",
            "ccp_native_query_throughput",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
