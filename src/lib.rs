//! # cache-partitioning
//!
//! A from-scratch reproduction of **“Accelerating Concurrent Workloads with
//! CPU Cache Partitioning”** (Noll, Teubner, May, Böhm — ICDE 2018) as a
//! Rust workspace: an in-memory column-store execution engine whose job
//! scheduler drives Intel **Cache Allocation Technology** (CAT) so that
//! cache-polluting operators (column scans) cannot evict the working sets
//! of cache-sensitive ones (hash aggregations), plus everything needed to
//! regenerate every figure of the paper on hardware *without* CAT.
//!
//! ## The idea in one paragraph
//!
//! All cores of a socket share the last-level cache (LLC). A column scan
//! streams gigabytes through it without ever re-using a line, evicting the
//! hash tables and dictionaries a concurrently running aggregation depends
//! on — the aggregation can lose more than half of its throughput. CAT
//! partitions the LLC by *ways*: confine the scan to 2 of 20 ways (10 %)
//! and it runs exactly as fast (scans don't need cache), while the
//! aggregation gets its working set back. The paper integrates this into
//! the engine by tagging every job with a **cache usage identifier**
//! (CUID) and binding worker threads to resctrl classes before a job runs.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`cachesim`] | deterministic cache-hierarchy simulator with CAT way-masking |
//! | [`resctrl`] | typed driver for Linux `/sys/fs/resctrl` (real CAT hardware) |
//! | [`storage`] | column-store substrate: dictionaries, bit-packing, hash tables, bit vectors, inverted indexes |
//! | [`engine`] | jobs + CUIDs, worker pool, allocator backends, native operators and their simulated twins |
//! | [`workloads`] | the paper's workloads (Q1/Q2/Q3, S/4HANA OLTP) and measurement protocol |
//! | [`tpch`] | TPC-H SF 100 cache profiles for all 22 queries |
//! | [`server`] | std-only HTTP service: query admission front end + Prometheus scrape endpoint |
//!
//! ## Quickstart
//!
//! Reproduce the paper's headline effect (Figure 1) in a few lines:
//!
//! ```
//! use cache_partitioning::prelude::*;
//!
//! // A fast experiment configuration (short virtual-time windows).
//! let e = Experiment { warm_cycles: 1_000_000, measure_cycles: 2_000_000, ..Default::default() };
//!
//! // An aggregation whose hash table is LLC-sized, co-running with a scan.
//! let specs = vec![
//!     QuerySpec::new("aggregation", MaskChoice::Full, |s| {
//!         paper::q2_aggregation(s, paper::DICT_4MIB, 100_000)
//!     }),
//!     // `Policy` applies the paper's heuristic: scans are polluters -> 0x3.
//!     QuerySpec::new("scan", MaskChoice::Policy, paper::q1_scan),
//! ];
//! let outcomes = e.run_concurrent_normalized(&specs);
//! assert!(outcomes[0].normalized > 0.5, "partitioned aggregation keeps most of its throughput");
//! ```
//!
//! On a machine with CAT and a mounted resctrl filesystem, the same policy
//! drives real hardware through [`engine::JobExecutor`] with
//! [`engine::ResctrlAllocator`]; see `examples/htap_mixed.rs`.

pub mod db;
pub mod obs_demo;

pub use ccp_cachesim as cachesim;
pub use ccp_engine as engine;
pub use ccp_obs as obs;
pub use ccp_resctrl as resctrl;
pub use ccp_server as server;
pub use ccp_storage as storage;
pub use ccp_tpch as tpch;
pub use ccp_workloads as workloads;

/// The most common imports for working with the library.
pub mod prelude {
    pub use crate::db::{Database, DbError};
    pub use ccp_cachesim::{AddrSpace, HierarchyConfig, MemoryHierarchy, WayMask};
    pub use ccp_engine::alloc::{CacheAllocator, NoopAllocator, ResctrlAllocator};
    pub use ccp_engine::job::{CacheUsageClass, Job};
    pub use ccp_engine::partition::PartitionPolicy;
    pub use ccp_engine::sim::{run_concurrent, run_isolated, SimWorkload};
    pub use ccp_engine::JobExecutor;
    pub use ccp_resctrl::{detect, CacheController, CatSupport};
    pub use ccp_server::{Server, ServerConfig};
    pub use ccp_workloads::paper;
    pub use ccp_workloads::{Experiment, MaskChoice, NormalizedOutcome, QuerySpec};
}
