//! `ccp` — command-line front end for the cache-partitioning library.
//!
//! ```text
//! ccp probe                     # CAT/resctrl support of this host
//! ccp demo                      # the paper's Figure 1 effect, simulated
//! ccp classify                  # online CUID classification of the paper's operators
//! ccp schedule scan agg join:125000 agg
//!                               # plan co-run waves for a query queue
//! ccp serve --addr 127.0.0.1:9090
//!                               # HTTP query admission + Prometheus scrape service
//! ccp bench-serve --addr 127.0.0.1:9090 --qps 50 --duration 10
//!                               # drive a running server, report latency percentiles
//! ccp help
//! ```
//!
//! Argument parsing is hand-rolled (the workspace deliberately keeps its
//! dependency set to the offline-audited list).

use cache_partitioning::prelude::*;
use ccp_engine::sim::{classify_operator, AggregationSim, ColumnScanSim, FkJoinSim};
use ccp_engine::CacheAwareScheduler;
use ccp_server::{
    fetch, install_sigint_handler, sigint_requested, HttpClient, Json, Server, ServerConfig,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A named constructor for a simulated operator, used by `classify`.
type SimOpFactory = Box<dyn Fn(&mut AddrSpace) -> Box<dyn ccp_engine::sim::SimOperator>>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("probe") => reject_extra_args("probe", &args[1..]).unwrap_or_else(probe),
        Some("demo") => reject_extra_args("demo", &args[1..]).unwrap_or_else(demo),
        Some("classify") => reject_extra_args("classify", &args[1..]).unwrap_or_else(classify),
        Some("schedule") => schedule(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("bench-serve") => bench_serve(&args[1..]),
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

/// Commands that take no arguments fail loudly on stray ones instead of
/// silently ignoring a typo like `ccp probe --verbose`.
fn reject_extra_args(cmd: &str, rest: &[String]) -> Option<ExitCode> {
    if rest.is_empty() {
        None
    } else {
        eprintln!("`ccp {cmd}` takes no arguments, got {rest:?}");
        Some(ExitCode::FAILURE)
    }
}

fn print_help() {
    println!(
        "ccp — CPU cache partitioning for concurrent database workloads (ICDE 2018 reproduction)\n\n\
         USAGE:\n  ccp <command>\n\n\
         COMMANDS:\n  \
         probe      detect Intel CAT / resctrl support on this host\n  \
         demo       reproduce the paper's headline effect on the simulator\n  \
         classify   probe the paper's operators and derive their CUIDs online\n  \
         schedule   plan cache-aware co-run waves, e.g. `ccp schedule scan agg join:125000`\n  \
         serve      run the HTTP query/metrics service, e.g. `ccp serve --addr 127.0.0.1:9090`\n  \
         bench-serve  load-test a running server over keep-alive sockets\n  \
         help       this text\n\n\
         SERVE FLAGS:\n  \
         --addr HOST:PORT   bind address        (default 127.0.0.1:9090)\n  \
         --olap-workers N   partitioned workers (default 2)\n  \
         --oltp-workers N   full-cache workers  (default 1)\n  \
         --slots N          concurrent queries  (default 2)\n  \
         --queue N          admission queue cap (default 16)\n  \
         --queue-limit-polluting N  cap on waiting polluting queries (default: global cap only)\n  \
         --queue-limit-sensitive N  cap on waiting sensitive queries (default: global cap only)\n  \
         --queue-limit-mixed N      cap on waiting mixed queries     (default: global cap only)\n  \
         --max-conns N      connection cap      (default 64)\n  \
         --rows N           resident rows       (default 60000)\n  \
         --queue-deadline-ms N  shed queries queued longer than N ms with 503 (default 30000, 0 = wait forever)\n  \
         --faults PLAN      arm ccp-fault failpoints, e.g. resctrl.write_schemata=err@1+40 (or env CCP_FAULTS)\n  \
         --fake-resctrl     back the engine with an in-memory resctrl (chaos harness; no CAT needed)\n  \
         --reprobe-interval-ms N  resctrl health sync / degraded re-probe period (default 200)\n  \
         --adaptive         close the loop: occupancy readings repartition the LLC online\n  \
         --control-interval-ms N  adaptive controller tick period (default 100)\n  \
         --monitor-interval-ms N  occupancy sampler period (default 250)\n  \
         --occupancy-script SPEC  scripted occupancy trace for CI, e.g. 'sensitive:0.95x6,0.12;polluting:0.08'\n  \
         --reuse-budget-mb N  reuse-cache byte budget in MiB (default 64)\n  \
         --no-reuse         disable the artifact reuse cache (every query reports reuse=bypass)\n  \
         --no-flight        disable the flight recorder (/timeline and /dashboard return 404)\n  \
         --flight-interval-ms N  flight recorder snapshot period (default 250)\n  \
         --tenant-quota NAME=N    cap NAME's in-flight queries at N, 429 above (repeatable)\n  \
         --tenant-weight NAME=W   weighted-fair admission share for NAME (default 1, repeatable)\n  \
         --fake-closids N   fake resctrl with only N CLOSIDs (implies --fake-resctrl; exhaustion chaos)\n  \
         --reconcile-interval-ms N  tenant group reconciler pass period (default 500)\n\n\
         BENCH-SERVE FLAGS:\n\
         --addr HOST:PORT   server to drive     (default 127.0.0.1:9090)\n  \
         --qps N            target request rate (default 50)\n  \
         --duration SECS    run length          (default 10)\n  \
         --concurrency N    client connections  (default 4)\n  \
         --workload KIND    q1|q2|oltp|mix      (default mix)\n  \
         --max-error-pct N  exit non-zero above this error rate (default 5)\n  \
         --ab-addr HOST:PORT  second server for an A/B run (phase A on --addr, phase B here)\n  \
         --json-out FILE    write the phase summaries as JSON (includes the server's build info)\n  \
         --timeline-out FILE  save the server's /timeline after the run (flight-recorder black box)\n  \
         --tenant-mix SPEC  spread requests over tenants by weight via X-CCP-Tenant,\n                     \
         e.g. 'alpha:50,beta:30,gamma:20' (per-tenant sent/ok/429 reported)\n\n\
         The full experiment suite lives in `cargo bench -p ccp-bench`."
    );
}

fn probe() -> ExitCode {
    match detect() {
        CatSupport::Available { mount } => {
            println!("CAT available, resctrl mounted at {mount}");
            match CacheController::open() {
                Ok(ctl) => {
                    let info = ctl.info();
                    println!(
                        "cbm_mask={:#x} ({} ways), min_cbm_bits={}, num_closids={}",
                        info.cbm_mask,
                        info.ways(),
                        info.min_cbm_bits,
                        info.num_closids
                    );
                    println!("groups: {:?}", ctl.groups().unwrap_or_default());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("resctrl mounted but unusable: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        CatSupport::NotMounted => {
            println!("CPU+kernel support CAT; mount it with:");
            println!("  sudo mount -t resctrl resctrl /sys/fs/resctrl");
            ExitCode::SUCCESS
        }
        other => {
            println!("no usable CAT on this host: {other:?}");
            println!("(the simulator-based experiments work everywhere: cargo bench -p ccp-bench)");
            ExitCode::SUCCESS
        }
    }
}

fn demo() -> ExitCode {
    println!("simulating the paper's Figure 1 on the Broadwell model (one minute)…\n");
    let e = Experiment::default();
    let mk = |mask| {
        vec![
            QuerySpec::new("aggregation (Q2)", MaskChoice::Full, |s| {
                paper::q2_aggregation(s, paper::DICT_4MIB, 100_000)
            }),
            QuerySpec::new("column scan (Q1)", mask, paper::q1_scan),
        ]
    };
    let base = e.run_concurrent_normalized(&mk(MaskChoice::Full));
    let part = e.run_concurrent_normalized(&mk(MaskChoice::Policy));
    println!(
        "{:>20} {:>14} {:>14}",
        "query", "unpartitioned", "partitioned"
    );
    for (b, p) in base.iter().zip(&part) {
        println!(
            "{:>20} {:>13.1}% {:>13.1}%",
            b.name,
            b.normalized * 100.0,
            p.normalized * 100.0
        );
    }
    ExitCode::SUCCESS
}

fn classify() -> ExitCode {
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
    let ops: Vec<(&str, SimOpFactory)> = vec![
        (
            "column scan",
            Box::new(|s: &mut AddrSpace| Box::new(ColumnScanSim::paper_q1(s, 1 << 33)) as _),
        ),
        (
            "aggregation 40MiB/1e5G",
            Box::new(|s: &mut AddrSpace| {
                Box::new(AggregationSim::paper_q2(s, 1 << 40, 40 << 20, 100_000)) as _
            }),
        ),
        (
            "fk join 1e6 keys",
            Box::new(|s: &mut AddrSpace| Box::new(FkJoinSim::new(s, 1_000_000, 1 << 40)) as _),
        ),
        (
            "fk join 1e8 keys",
            Box::new(|s: &mut AddrSpace| Box::new(FkJoinSim::new(s, 100_000_000, 1 << 40)) as _),
        ),
    ];
    println!(
        "{:>24} {:>12} {:>8} {:>12} {:>20}",
        "operator", "sensitivity", "re-use", "hot MiB", "CUID -> mask"
    );
    for (name, build) in &ops {
        let r = classify_operator(&cfg, &policy, build.as_ref(), 3_000_000, 6_000_000);
        println!(
            "{:>24} {:>12.2} {:>8.2} {:>12.2} {:>13?} {:#x}",
            name,
            r.sensitivity_ratio,
            r.reuse_hit_ratio,
            r.hot_bytes as f64 / (1024.0 * 1024.0),
            r.cuid,
            policy.mask_for(r.cuid).bits()
        );
    }
    ExitCode::SUCCESS
}

/// Parses `serve` flags into a [`ServerConfig`] plus an optional
/// `--faults` plan string (installed by [`serve`], not here — parsing
/// stays side-effect free); any unknown flag, missing value or
/// unparsable number is a clean failure, never a panic.
fn parse_serve_config(args: &[String]) -> Result<(ServerConfig, Option<String>), String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:9090".to_string(),
        ..ServerConfig::default()
    };
    let mut faults = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--olap-workers" => config.olap_workers = parse_count(&value_of("--olap-workers")?)?,
            "--oltp-workers" => config.oltp_workers = parse_count(&value_of("--oltp-workers")?)?,
            "--slots" => config.scheduler_slots = parse_count(&value_of("--slots")?)?,
            "--queue" => config.queue_capacity = parse_count(&value_of("--queue")?)?,
            "--queue-limit-polluting" => {
                config.class_queue_limits.polluting =
                    Some(parse_limit(&value_of("--queue-limit-polluting")?)?)
            }
            "--queue-limit-sensitive" => {
                config.class_queue_limits.sensitive =
                    Some(parse_limit(&value_of("--queue-limit-sensitive")?)?)
            }
            "--queue-limit-mixed" => {
                config.class_queue_limits.mixed =
                    Some(parse_limit(&value_of("--queue-limit-mixed")?)?)
            }
            "--max-conns" => config.max_connections = parse_count(&value_of("--max-conns")?)?,
            "--rows" => config.dataset_rows = parse_count(&value_of("--rows")?)?,
            "--queue-deadline-ms" => {
                let ms: u64 = value_of("--queue-deadline-ms")?
                    .parse()
                    .map_err(|_| "expected a number for --queue-deadline-ms".to_string())?;
                // 0 opts out of shedding (wait for a slot indefinitely).
                config.queue_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--faults" => faults = Some(value_of("--faults")?),
            "--fake-resctrl" => config.fake_resctrl = true,
            "--reprobe-interval-ms" => {
                let ms = parse_count(&value_of("--reprobe-interval-ms")?)? as u64;
                config.reprobe_interval = Duration::from_millis(ms);
            }
            "--adaptive" => config.adaptive = true,
            "--control-interval-ms" => {
                let ms = parse_count(&value_of("--control-interval-ms")?)? as u64;
                config.control_interval = Duration::from_millis(ms);
            }
            "--monitor-interval-ms" => {
                let ms = parse_count(&value_of("--monitor-interval-ms")?)? as u64;
                config.monitor_interval = Some(Duration::from_millis(ms));
            }
            "--occupancy-script" => config.occupancy_script = Some(value_of("--occupancy-script")?),
            "--reuse-budget-mb" => {
                config.reuse_budget_mb = parse_count(&value_of("--reuse-budget-mb")?)?
            }
            "--no-reuse" => config.no_reuse = true,
            "--no-flight" => config.flight = false,
            "--flight-interval-ms" => {
                let ms = parse_count(&value_of("--flight-interval-ms")?)? as u64;
                config.flight_interval = Duration::from_millis(ms);
            }
            "--tenant-quota" => {
                let (name, n) = parse_tenant_kv(&value_of("--tenant-quota")?, "--tenant-quota")?;
                // Quota 0 is legal: it rejects every arrival for that tenant.
                let quota = parse_limit(&n)?;
                config.tenant_quotas.push((name, quota));
            }
            "--tenant-weight" => {
                let (name, w) = parse_tenant_kv(&value_of("--tenant-weight")?, "--tenant-weight")?;
                let weight = parse_count(&w)? as u32;
                config.tenant_weights.push((name, weight));
            }
            "--fake-closids" => {
                config.fake_closids = Some(parse_count(&value_of("--fake-closids")?)? as u32);
            }
            "--reconcile-interval-ms" => {
                let ms = parse_count(&value_of("--reconcile-interval-ms")?)? as u64;
                config.reconcile_interval = Duration::from_millis(ms);
            }
            other => {
                return Err(format!(
                    "unknown serve flag {other:?} (see `ccp help` for the flag list)"
                ))
            }
        }
    }
    Ok((config, faults))
}

/// Splits a `NAME=VALUE` tenant flag argument; tenant id validation is
/// left to the server (it returns a startup error naming the bad id).
fn parse_tenant_kv(s: &str, flag: &str) -> Result<(String, String), String> {
    let (name, value) = s
        .split_once('=')
        .ok_or_else(|| format!("{flag} expects NAME=VALUE, got {s:?}"))?;
    if name.is_empty() {
        return Err(format!(
            "{flag} expects a tenant name before '=', got {s:?}"
        ));
    }
    Ok((name.to_string(), value.to_string()))
}

/// Parses a per-class queue cap; unlike [`parse_count`], `0` is legal
/// (it means "reject every arrival of that class").
fn parse_limit(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("expected a non-negative number, got {s:?}"))
}

fn parse_count(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!("expected a positive number, got {s:?}")),
        Err(_) => Err(format!("expected a number, got {s:?}")),
    }
}

fn serve(args: &[String]) -> ExitCode {
    let (config, faults) = match parse_serve_config(args) {
        Ok(c) => c,
        Err(why) => {
            eprintln!("{why}");
            return ExitCode::FAILURE;
        }
    };
    // `--faults` wins over the CCP_FAULTS environment variable; either
    // way a malformed plan is a startup failure naming the bad clause,
    // not a server that silently runs without its chaos.
    let installed = match faults {
        Some(plan) => ccp_fault::install_str(&plan).map(Some),
        None => ccp_fault::install_from_env(),
    };
    if let Err(e) = installed {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    install_sigint_handler();
    let mut server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("ccp-server listening on http://{}", server.addr());
    println!(
        "  partitioning: {}",
        if server.cat_live() {
            "live CAT via resctrl"
        } else {
            "no-op allocator (no CAT on this host)"
        }
    );
    println!(
        "  endpoints: /metrics /healthz /stats /trace /timeline /dashboard /profile /version \
         POST /query POST /data/bump"
    );
    if let Some(plan) = ccp_fault::active_plan() {
        println!("  fault plan: {plan}");
    }
    println!("  ctrl-c to stop");
    while !sigint_requested() && !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("shutting down…");
    server.shutdown();
    ExitCode::SUCCESS
}

/// Tunables of the `bench-serve` load generator.
struct BenchConfig {
    addr: String,
    qps: u64,
    duration: Duration,
    concurrency: usize,
    workload: String,
    max_error_pct: u64,
    /// Second server for an A/B comparison: phase A ("static") drives
    /// `addr`, phase B ("adaptive") drives this one.
    ab_addr: Option<String>,
    /// Write the phase summaries as JSON to this file.
    json_out: Option<String>,
    /// Save the driven server's `/timeline` here after the run (the
    /// phase-B server in an A/B run — the one whose story matters).
    timeline_out: Option<String>,
    /// Weighted tenant assignment: each request carries `X-CCP-Tenant`
    /// drawn from this distribution by its schedule slot. Empty = no
    /// header (the server books everything under the default tenant).
    tenant_mix: Vec<(String, u64)>,
}

fn parse_bench_config(args: &[String]) -> Result<BenchConfig, String> {
    let mut config = BenchConfig {
        addr: "127.0.0.1:9090".to_string(),
        qps: 50,
        duration: Duration::from_secs(10),
        concurrency: 4,
        workload: "mix".to_string(),
        max_error_pct: 5,
        ab_addr: None,
        json_out: None,
        timeline_out: None,
        tenant_mix: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--qps" => config.qps = parse_count(&value_of("--qps")?)? as u64,
            "--duration" => {
                config.duration = Duration::from_secs(parse_count(&value_of("--duration")?)? as u64)
            }
            "--concurrency" => config.concurrency = parse_count(&value_of("--concurrency")?)?,
            "--workload" => {
                let w = value_of("--workload")?;
                if !["q1", "q2", "oltp", "mix"].contains(&w.as_str()) {
                    return Err(format!("unknown workload {w:?} (q1, q2, oltp or mix)"));
                }
                config.workload = w;
            }
            "--max-error-pct" => {
                config.max_error_pct = value_of("--max-error-pct")?
                    .parse()
                    .map_err(|_| "expected a number for --max-error-pct".to_string())?
            }
            "--ab-addr" => config.ab_addr = Some(value_of("--ab-addr")?),
            "--json-out" => config.json_out = Some(value_of("--json-out")?),
            "--timeline-out" => config.timeline_out = Some(value_of("--timeline-out")?),
            "--tenant-mix" => {
                for part in value_of("--tenant-mix")?.split(',') {
                    let (name, weight) = part.split_once(':').ok_or_else(|| {
                        format!("--tenant-mix expects NAME:WEIGHT entries, got {part:?}")
                    })?;
                    if name.is_empty() {
                        return Err(format!("--tenant-mix entry {part:?} has no tenant name"));
                    }
                    let weight = parse_count(weight)? as u64;
                    config.tenant_mix.push((name.to_string(), weight));
                }
            }
            other => {
                return Err(format!(
                    "unknown bench-serve flag {other:?} (see `ccp help`)"
                ))
            }
        }
    }
    Ok(config)
}

/// Request bodies the generator rotates through per workload choice.
fn bench_bodies(workload: &str) -> Vec<&'static str> {
    let q1 = r#"{"workload":"q1","threshold":100}"#;
    let q2 = r#"{"workload":"q2","agg":"sum"}"#;
    let oltp = r#"{"workload":"oltp","ops":200}"#;
    match workload {
        "q1" => vec![q1],
        "q2" => vec![q2],
        "oltp" => vec![oltp],
        _ => vec![q1, q2, oltp],
    }
}

/// One finished request: client-observed wall latency plus the server's
/// own phase breakdown (microseconds each).
#[derive(Debug, Clone, Copy)]
struct BenchSample {
    total_us: u64,
    queue_us: u64,
    exec_us: u64,
    reuse: ReuseMark,
}

/// The `"reuse"` field of a `/query` response, as seen by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReuseMark {
    Hit,
    Miss,
    /// `bypass`, a pre-reuse server, or an unparsable response.
    Other,
}

impl ReuseMark {
    fn of(outcome: &Json) -> ReuseMark {
        match outcome.get("reuse").and_then(Json::as_str) {
            Some("hit") => ReuseMark::Hit,
            Some("miss") => ReuseMark::Miss,
            _ => ReuseMark::Other,
        }
    }
}

/// Per-tenant request tally for a `--tenant-mix` run.
#[derive(Debug, Default, Clone, Copy)]
struct TenantTally {
    sent: u64,
    ok: u64,
    /// Quota rejections (HTTP 429) — the signal the mix exists to read.
    rejected: u64,
}

#[derive(Debug, Default)]
struct BenchOutcome {
    samples: Vec<BenchSample>,
    errors: u64,
    /// Keyed by tenant name; only populated under `--tenant-mix`.
    tenants: std::collections::BTreeMap<String, TenantTally>,
}

/// Deterministic weighted assignment: slot `n` goes to the tenant whose
/// cumulative-weight bucket contains `n % Σweights`, so the offered mix
/// matches the requested ratios exactly over every whole period.
fn tenant_for_slot(mix: &[(String, u64)], slot: u64) -> Option<&str> {
    let total: u64 = mix.iter().map(|(_, w)| *w).sum();
    if total == 0 {
        return None;
    }
    let mut r = slot % total;
    for (name, w) in mix {
        if r < *w {
            return Some(name);
        }
        r -= *w;
    }
    None
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn breakdown_us(outcome: &Json, field: &str) -> u64 {
    outcome
        .get("breakdown")
        .and_then(|b| b.get(field))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Scrapes the server's cumulative reuse counters from `/metrics`.
/// Returns `None` when the scrape fails or the metrics are absent
/// (reuse disabled with `--no-reuse`, or a pre-reuse server).
fn reuse_counters(addr: std::net::SocketAddr) -> Option<(f64, f64)> {
    let scrape = fetch(addr, "GET", "/metrics", None).ok()?.body;
    let sample = |name: &str| -> Option<f64> {
        scrape
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse().ok())
    };
    Some((
        sample("ccp_reuse_hits_total ")?,
        sample("ccp_reuse_misses_total ")?,
    ))
}

/// Reuse-cache view of one phase: what the client observed per response
/// plus the server's own counter delta over the phase (cumulative
/// counters survive earlier phases, so only the delta is this phase's).
struct ReusePhase {
    hits: u64,
    misses: u64,
    /// p95 of client wall latency over hit responses (0 if none).
    hit_p95_us: u64,
    /// p95 of client wall latency over miss responses (0 if none).
    miss_p95_us: u64,
    /// `Δhits / (Δhits + Δmisses)` from `/metrics`, when scrapable.
    server_hit_rate: Option<f64>,
}

impl ReusePhase {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hits", Json::num(self.hits as f64)),
            ("misses", Json::num(self.misses as f64)),
            ("hit_p95_us", Json::num(self.hit_p95_us as f64)),
            ("miss_p95_us", Json::num(self.miss_p95_us as f64)),
            (
                "server_hit_rate",
                self.server_hit_rate.map_or(Json::Null, Json::num),
            ),
        ])
    }
}

/// One phase's percentile summary (all values microseconds).
struct PhaseSummary {
    addr: String,
    sent: u64,
    errors: u64,
    error_pct: u64,
    achieved_qps: f64,
    /// p50/p95/p99 of client-observed wall latency.
    total: [u64; 3],
    /// p50/p95/p99 of server-reported queue time.
    queue: [u64; 3],
    /// p50/p95/p99 of server-reported execution time.
    exec: [u64; 3],
    reuse: ReusePhase,
    /// Per-tenant tallies, in tenant-name order (empty without
    /// `--tenant-mix`).
    tenants: Vec<(String, TenantTally)>,
}

impl PhaseSummary {
    fn to_json(&self) -> Json {
        let trio = |v: &[u64; 3]| {
            Json::obj(vec![
                ("p50_us", Json::num(v[0] as f64)),
                ("p95_us", Json::num(v[1] as f64)),
                ("p99_us", Json::num(v[2] as f64)),
            ])
        };
        let mut fields = vec![
            ("addr", Json::str(&self.addr)),
            ("sent", Json::num(self.sent as f64)),
            ("errors", Json::num(self.errors as f64)),
            ("achieved_qps", Json::num(self.achieved_qps)),
            ("total", trio(&self.total)),
            ("queue", trio(&self.queue)),
            ("exec", trio(&self.exec)),
            ("reuse", self.reuse.to_json()),
        ];
        let tenants = Json::obj(
            self.tenants
                .iter()
                .map(|(name, t)| {
                    (
                        name.as_str(),
                        Json::obj(vec![
                            ("sent", Json::num(t.sent as f64)),
                            ("ok", Json::num(t.ok as f64)),
                            ("rejected_429", Json::num(t.rejected as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        if !self.tenants.is_empty() {
            fields.push(("tenants", tenants));
        }
        Json::obj(fields)
    }
}

/// Open-loop load generator for one server: `concurrency` keep-alive
/// connections share one global request schedule at the target QPS
/// (each request has a fixed start slot, so server slowdowns show up as
/// latency, not as a silently reduced offered rate).
fn run_phase(label: &str, addr_str: &str, config: &BenchConfig) -> Result<PhaseSummary, String> {
    let addr = std::net::ToSocketAddrs::to_socket_addrs(&addr_str)
        .ok()
        .and_then(|mut addrs| addrs.next())
        .ok_or_else(|| format!("cannot resolve {addr_str:?}"))?;
    let bodies = bench_bodies(&config.workload);
    let interval = Duration::from_nanos(1_000_000_000 / config.qps.max(1));
    let counters_before = reuse_counters(addr);
    let started = Instant::now();
    let deadline = started + config.duration;
    let next_slot = Arc::new(AtomicU64::new(0));
    let outcome = Arc::new(Mutex::new(BenchOutcome::default()));

    println!(
        "[{label}] driving {} at {} qps for {:?} over {} connection(s), workload {}…",
        addr_str, config.qps, config.duration, config.concurrency, config.workload
    );
    let mut workers = Vec::new();
    for _ in 0..config.concurrency {
        let bodies: Vec<&'static str> = bodies.clone();
        let mix = config.tenant_mix.clone();
        let next_slot = Arc::clone(&next_slot);
        let outcome = Arc::clone(&outcome);
        workers.push(std::thread::spawn(move || {
            let mut client = match HttpClient::connect(addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot connect to {addr}: {e}");
                    outcome.lock().unwrap().errors += 1;
                    return;
                }
            };
            loop {
                // ORDERING: relaxed ticket counter; each worker only needs
                // a unique slot number, not ordering with other memory.
                let slot = next_slot.fetch_add(1, Ordering::Relaxed);
                let at = started + interval * slot as u32;
                if at >= deadline {
                    return;
                }
                if let Some(wait) = at.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let body = bodies[slot as usize % bodies.len()];
                let tenant = tenant_for_slot(&mix, slot);
                let sent = Instant::now();
                let resp = match tenant {
                    Some(t) => client.request_with_headers(
                        "POST",
                        "/query",
                        &[("X-CCP-Tenant", t)],
                        Some(body),
                    ),
                    None => client.request("POST", "/query", Some(body)),
                };
                let mut out = outcome.lock().unwrap();
                if let Some(t) = tenant {
                    out.tenants.entry(t.to_string()).or_default().sent += 1;
                }
                match resp {
                    Ok(resp) if resp.status == 200 => {
                        let total_us = sent.elapsed().as_micros() as u64;
                        let (queue_us, exec_us, reuse) = Json::parse(resp.body.trim())
                            .map(|o| {
                                (
                                    breakdown_us(&o, "queue_us"),
                                    breakdown_us(&o, "exec_us"),
                                    ReuseMark::of(&o),
                                )
                            })
                            .unwrap_or((0, 0, ReuseMark::Other));
                        out.samples.push(BenchSample {
                            total_us,
                            queue_us,
                            exec_us,
                            reuse,
                        });
                        if let Some(t) = tenant {
                            out.tenants.entry(t.to_string()).or_default().ok += 1;
                        }
                    }
                    Ok(resp) if resp.status == 429 => {
                        out.errors += 1;
                        if let Some(t) = tenant {
                            out.tenants.entry(t.to_string()).or_default().rejected += 1;
                        }
                    }
                    _ => out.errors += 1,
                }
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }

    let outcome = Arc::try_unwrap(outcome)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_default();
    let sent = outcome.samples.len() as u64 + outcome.errors;
    if sent == 0 {
        return Err(format!("[{label}] no requests were sent"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    let error_pct = outcome.errors * 100 / sent;
    println!(
        "[{label}] {} requests in {:.1}s ({:.1} achieved qps), {} error(s) ({error_pct}%)",
        sent,
        elapsed,
        outcome.samples.len() as f64 / elapsed,
        outcome.errors
    );
    let mut percentiles = [[0u64; 3]; 3];
    for (i, (part, pick)) in [
        (
            "total",
            (|s: &BenchSample| s.total_us) as fn(&BenchSample) -> u64,
        ),
        ("queue", |s| s.queue_us),
        ("exec", |s| s.exec_us),
    ]
    .into_iter()
    .enumerate()
    {
        let mut us: Vec<u64> = outcome.samples.iter().map(pick).collect();
        us.sort_unstable();
        percentiles[i] = [
            percentile(&us, 50.0),
            percentile(&us, 95.0),
            percentile(&us, 99.0),
        ];
        println!(
            "{part:>8} latency  p50 {:>8} us   p95 {:>8} us   p99 {:>8} us",
            percentiles[i][0], percentiles[i][1], percentiles[i][2],
        );
    }
    let mark_p95 = |mark: ReuseMark| {
        let mut us: Vec<u64> = outcome
            .samples
            .iter()
            .filter(|s| s.reuse == mark)
            .map(|s| s.total_us)
            .collect();
        us.sort_unstable();
        (us.len() as u64, percentile(&us, 95.0))
    };
    let (hits, hit_p95_us) = mark_p95(ReuseMark::Hit);
    let (misses, miss_p95_us) = mark_p95(ReuseMark::Miss);
    // Reuse counters are cumulative across phases, so the server's hit
    // rate for *this* phase is the delta between the two scrapes.
    let server_hit_rate =
        counters_before
            .zip(reuse_counters(addr))
            .and_then(|((h0, m0), (h1, m1))| {
                let (dh, dm) = (h1 - h0, m1 - m0);
                (dh + dm > 0.0).then(|| dh / (dh + dm))
            });
    let reuse = ReusePhase {
        hits,
        misses,
        hit_p95_us,
        miss_p95_us,
        server_hit_rate,
    };
    match reuse.server_hit_rate {
        Some(rate) => println!(
            "   reuse  server hit rate {:.1}%   client hits {hits} (p95 {hit_p95_us} us)   misses {misses} (p95 {miss_p95_us} us)",
            rate * 100.0
        ),
        None => println!("   reuse  no server reuse counters (disabled or unscrapable)"),
    }
    let tenants: Vec<(String, TenantTally)> = outcome.tenants.into_iter().collect();
    for (name, t) in &tenants {
        println!(
            "  tenant  {name}: sent {}, ok {}, 429 {}",
            t.sent, t.ok, t.rejected
        );
    }
    Ok(PhaseSummary {
        addr: addr_str.to_string(),
        sent,
        errors: outcome.errors,
        error_pct,
        achieved_qps: outcome.samples.len() as f64 / elapsed,
        total: percentiles[0],
        queue: percentiles[1],
        exec: percentiles[2],
        reuse,
        tenants,
    })
}

/// Resolves `host:port` for the ad-hoc fetches around a bench run.
fn resolve_bench_addr(addr_str: &str) -> Option<std::net::SocketAddr> {
    std::net::ToSocketAddrs::to_socket_addrs(&addr_str)
        .ok()
        .and_then(|mut addrs| addrs.next())
}

/// The driven server's `GET /version` build info, so a saved bench
/// report names the exact build that produced its numbers.
fn server_build_info(addr_str: &str) -> Option<Json> {
    let addr = resolve_bench_addr(addr_str)?;
    let resp = fetch(addr, "GET", "/version", None).ok()?;
    (resp.status == 200)
        .then(|| Json::parse(&resp.body).ok())
        .flatten()
}

/// `bench-serve`: one load phase against `--addr`, or an A/B comparison
/// (`--ab-addr`) that drives a second — typically `--adaptive` — server
/// with the identical schedule and reports the p95 ratio between them.
fn bench_serve(args: &[String]) -> ExitCode {
    let config = match parse_bench_config(args) {
        Ok(c) => c,
        Err(why) => {
            eprintln!("{why}");
            return ExitCode::FAILURE;
        }
    };
    let first_label = if config.ab_addr.is_some() {
        "static"
    } else {
        "bench"
    };
    let first = match run_phase(first_label, &config.addr, &config) {
        Ok(s) => s,
        Err(why) => {
            eprintln!("{why}");
            return ExitCode::FAILURE;
        }
    };
    let second = match &config.ab_addr {
        Some(addr) => match run_phase("adaptive", addr, &config) {
            Ok(s) => Some(s),
            Err(why) => {
                eprintln!("{why}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut failed = false;
    for (label, phase) in
        std::iter::once((first_label, &first)).chain(second.iter().map(|s| ("adaptive", s)))
    {
        if phase.error_pct > config.max_error_pct {
            eprintln!(
                "[{label}] error rate {}% exceeds --max-error-pct {}",
                phase.error_pct, config.max_error_pct
            );
            failed = true;
        }
    }

    let build = server_build_info(&config.addr).unwrap_or(Json::Null);
    let report = match &second {
        Some(adaptive) => {
            let p95_ratio = if first.total[1] == 0 {
                1.0
            } else {
                adaptive.total[1] as f64 / first.total[1] as f64
            };
            println!(
                "\nA/B: static p95 {} us, adaptive p95 {} us, ratio {p95_ratio:.3}",
                first.total[1], adaptive.total[1]
            );
            Json::obj(vec![
                ("mode", Json::str("ab")),
                ("build", build),
                ("static", first.to_json()),
                ("adaptive", adaptive.to_json()),
                ("p95_ratio", Json::num(p95_ratio)),
            ])
        }
        None => Json::obj(vec![
            ("mode", Json::str("single")),
            ("build", build),
            ("bench", first.to_json()),
        ]),
    };
    if let Some(path) = &config.json_out {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("cannot write {path}: {e}");
            failed = true;
        }
    }
    // Save the flight recorder's story of the run — the phase-B server
    // in an A/B comparison (the adaptive one), else the only server.
    if let Some(path) = &config.timeline_out {
        let target = config.ab_addr.as_deref().unwrap_or(&config.addr);
        let timeline = resolve_bench_addr(target)
            .and_then(|addr| fetch(addr, "GET", "/timeline", None).ok())
            .filter(|resp| resp.status == 200);
        match timeline {
            Some(resp) => {
                if let Err(e) = std::fs::write(path, format!("{}\n", resp.body)) {
                    eprintln!("cannot write {path}: {e}");
                    failed = true;
                }
            }
            None => {
                eprintln!("cannot save timeline: {target} did not serve /timeline (--no-flight?)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn schedule(specs: &[String]) -> ExitCode {
    if specs.is_empty() {
        eprintln!("usage: ccp schedule <scan|agg|join:<bitvec-bytes>> …");
        return ExitCode::FAILURE;
    }
    let mut queue = Vec::new();
    for s in specs {
        let cuid = if s == "scan" {
            CacheUsageClass::Polluting
        } else if s == "agg" {
            CacheUsageClass::Sensitive
        } else if let Some(bytes) = s.strip_prefix("join:") {
            match bytes.parse::<u64>() {
                Ok(b) => CacheUsageClass::Mixed { hot_bytes: b },
                Err(_) => {
                    eprintln!("bad join spec {s:?}: expected join:<bytes>");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!("unknown query kind {s:?}: expected scan, agg or join:<bytes>");
            return ExitCode::FAILURE;
        };
        queue.push(cuid);
    }
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
    let sched = CacheAwareScheduler::new(policy, 2);
    println!("queue: {queue:?}");
    for (i, wave) in sched.plan_waves(&queue).iter().enumerate() {
        let members: Vec<String> = wave
            .iter()
            .map(|&j| {
                format!(
                    "{} (mask {:#x})",
                    specs[j],
                    policy.mask_for(queue[j]).bits()
                )
            })
            .collect();
        println!("wave {}: {}", i + 1, members.join("  +  "));
    }
    ExitCode::SUCCESS
}
