//! An embedded-database facade over the whole stack.
//!
//! [`Database`] wires the pieces together the way the paper's prototype
//! does: a table registry over the column store, a partitioned job executor
//! for OLAP operators, a dedicated full-cache pool for OLTP statements, and
//! the CUID-based partition policy in between. It is the five-minute entry
//! point for library users; everything it does can also be assembled by
//! hand from the sub-crates (see `examples/htap_mixed.rs`).

use ccp_cachesim::HierarchyConfig;
use ccp_engine::alloc::{CacheAllocator, NoopAllocator, ResctrlAllocator};
use ccp_engine::dual_pool::DualPoolExecutor;
use ccp_engine::job::Job;
use ccp_engine::ops::{aggregate, join, oltp, scan};
use ccp_engine::partition::PartitionPolicy;
use ccp_resctrl::{detect, CatSupport};
use ccp_storage::{AggHashTable, Aggregate, Column, DictColumn, Table};
use std::collections::HashMap;
use std::sync::Arc;

/// Errors surfaced by the facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// No table with that name is registered.
    NoSuchTable(String),
    /// The table has no column with that name.
    NoSuchColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// The column exists but has the wrong type for the operation.
    WrongColumnType {
        /// Table searched.
        table: String,
        /// Offending column.
        column: String,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t:?}"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column {column:?} in table {table:?}")
            }
            DbError::WrongColumnType { table, column } => {
                write!(
                    f,
                    "column {table}.{column} has the wrong type for this operation"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

/// A small in-memory column-store database with cache-partitioned
/// execution.
pub struct Database {
    tables: HashMap<String, Arc<Table>>,
    pools: DualPoolExecutor,
    policy: PartitionPolicy,
    cat_live: bool,
}

impl Database {
    /// Opens a database with `olap_workers`/`oltp_workers` threads,
    /// partitioning through real CAT when the host supports it and falling
    /// back to no-op allocation otherwise — the engine never refuses to
    /// run.
    pub fn open(olap_workers: usize, oltp_workers: usize) -> Self {
        let support = detect();
        let (allocator, cat_live): (Arc<dyn CacheAllocator>, bool) = match &support {
            CatSupport::Available { .. } => match ResctrlAllocator::open_host() {
                Ok(a) => (Arc::new(a), true),
                Err(_) => (Arc::new(NoopAllocator), false),
            },
            _ => (Arc::new(NoopAllocator), false),
        };
        Self::open_with(olap_workers, oltp_workers, allocator, cat_live)
    }

    /// Opens with an explicit allocator (tests use the recording one).
    pub fn open_with(
        olap_workers: usize,
        oltp_workers: usize,
        allocator: Arc<dyn CacheAllocator>,
        cat_live: bool,
    ) -> Self {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        Database {
            tables: HashMap::new(),
            pools: DualPoolExecutor::new(olap_workers, oltp_workers, policy, allocator),
            policy,
            cat_live,
        }
    }

    /// Whether masks reach real CAT hardware (vs. no-op fallback).
    pub fn cat_is_live(&self) -> bool {
        self.cat_live
    }

    /// The active partition policy.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Registers a table (replacing any previous one of the same name).
    pub fn register_table(&mut self, table: Table) {
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Names of registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    fn table(&self, name: &str) -> Result<&Arc<Table>, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    fn int_column(&self, table: &str, column: &str) -> Result<Arc<DictColumn<i64>>, DbError> {
        let t = self.table(table)?;
        match t.column(column) {
            Some(Column::Int(c)) => Ok(Arc::new(c.clone())),
            Some(_) => Err(DbError::WrongColumnType {
                table: table.to_string(),
                column: column.to_string(),
            }),
            None => Err(DbError::NoSuchColumn {
                table: table.to_string(),
                column: column.to_string(),
            }),
        }
    }

    /// `SELECT COUNT(*) FROM table WHERE column > threshold` — the paper's
    /// Query 1, executed as polluting (mask-confined) scan jobs.
    ///
    /// # Errors
    /// [`DbError`] on unknown table/column or a non-integer column.
    pub fn count_where_greater(
        &self,
        table: &str,
        column: &str,
        threshold: i64,
    ) -> Result<u64, DbError> {
        let col = self.int_column(table, column)?;
        Ok(scan::column_scan(self.pools.olap(), &col, threshold))
    }

    /// `SELECT agg(value_column), group_column FROM table GROUP BY
    /// group_column` — the paper's Query 2, executed as cache-sensitive
    /// jobs with the full cache.
    ///
    /// # Errors
    /// [`DbError`] on unknown table/column or a non-integer column.
    pub fn aggregate_by(
        &self,
        table: &str,
        value_column: &str,
        group_column: &str,
        agg: Aggregate,
    ) -> Result<AggHashTable, DbError> {
        let v = self.int_column(table, value_column)?;
        let g = self.int_column(table, group_column)?;
        Ok(aggregate::grouped_aggregate(self.pools.olap(), &v, &g, agg))
    }

    /// `SELECT COUNT(*) FROM pk_table, fk_table WHERE pk = fk` — the
    /// paper's Query 3; the job class (polluting vs 60 %-confined) follows
    /// the bit-vector size automatically.
    ///
    /// # Errors
    /// [`DbError`] on unknown table/column or a non-integer column.
    pub fn fk_join_count(
        &self,
        pk_table: &str,
        pk_column: &str,
        fk_table: &str,
        fk_column: &str,
    ) -> Result<u64, DbError> {
        let pk = self.int_column(pk_table, pk_column)?;
        let fk = self.int_column(fk_table, fk_column)?;
        Ok(join::fk_join_count(self.pools.olap(), &pk, &fk))
    }

    /// Indexed point select, run on the dedicated OLTP pool (full cache,
    /// paper §V-C). Returns the projected rows for `key`.
    ///
    /// # Errors
    /// [`DbError`] on unknown table/columns.
    ///
    /// # Panics
    /// Panics if an OLTP worker dies (propagated executor failure).
    pub fn point_select(
        &self,
        table: &str,
        key_column: &str,
        key: i64,
        projected: &[&str],
    ) -> Result<Vec<oltp::ProjectedRow>, DbError> {
        let t = self.table(table)?.clone();
        // Validate columns eagerly so the job cannot panic on bad schema.
        if t.column(key_column).is_none() {
            return Err(DbError::NoSuchColumn {
                table: table.to_string(),
                column: key_column.to_string(),
            });
        }
        for p in projected {
            if t.column(p).is_none() {
                return Err(DbError::NoSuchColumn {
                    table: table.to_string(),
                    column: p.to_string(),
                });
            }
        }
        let key_column = key_column.to_string();
        let projected: Vec<String> = projected.iter().map(|s| s.to_string()).collect();
        let result: Arc<parking_lot::Mutex<Vec<oltp::ProjectedRow>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let out = result.clone();
        self.pools
            .submit_oltp(Job::unannotated("point_select", move || {
                let refs: Vec<&str> = projected.iter().map(|s| s.as_str()).collect();
                let stmt = oltp::PointSelect::prepare(&t, &key_column, &refs);
                *out.lock() = stmt.execute_int(key);
            }));
        self.pools.wait_idle();
        Ok(Arc::try_unwrap(result)
            .map(|m| m.into_inner())
            .unwrap_or_default())
    }

    /// Toggles OLAP-side cache partitioning (the paper's evaluation knob).
    pub fn set_partitioning(&self, on: bool) {
        self.pools.set_partitioning(on);
    }

    /// `(olap mask switches, oltp mask switches)` — observability for the
    /// §V-C fast-path guarantee.
    pub fn mask_switches(&self) -> (u64, u64) {
        self.pools.mask_switches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_engine::alloc::RecordingAllocator;
    use ccp_storage::gen;

    fn sample_db(alloc: Arc<dyn CacheAllocator>) -> Database {
        let mut db = Database::open_with(2, 1, alloc, false);
        let mut sales = Table::new("sales");
        sales.add_column(
            "AMOUNT",
            Column::Int(DictColumn::build(&gen::uniform_ints(50_000, 10_000, 1))),
        );
        sales.add_column(
            "REGION",
            Column::Int(DictColumn::build(&gen::uniform_ints(50_000, 50, 2))),
        );
        sales.add_column(
            "ORDER_FK",
            Column::Int(DictColumn::build(&gen::foreign_keys(50_000, 5_000, 3))),
        );
        db.register_table(sales);
        let mut orders = Table::new("orders");
        orders.add_column(
            "ID",
            Column::Int(DictColumn::build(&gen::primary_keys(5_000, 4))),
        );
        db.register_table(orders);
        db
    }

    #[test]
    fn end_to_end_query_mix() {
        let db = sample_db(Arc::new(NoopAllocator));
        assert_eq!(db.table_names(), vec!["orders", "sales"]);

        let n = db.count_where_greater("sales", "AMOUNT", 5_000).unwrap();
        assert!(
            n > 20_000 && n < 30_000,
            "uniform data: ~half qualify, got {n}"
        );

        let groups = db
            .aggregate_by("sales", "AMOUNT", "REGION", Aggregate::Max)
            .unwrap();
        assert_eq!(groups.len(), 50);

        let matches = db
            .fk_join_count("orders", "ID", "sales", "ORDER_FK")
            .unwrap();
        assert_eq!(matches, 50_000);

        let rows = db.point_select("orders", "ID", 42, &["ID"]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], ("ID".to_string(), "42".to_string()));
    }

    #[test]
    fn errors_are_typed() {
        let db = sample_db(Arc::new(NoopAllocator));
        assert_eq!(
            db.count_where_greater("nope", "AMOUNT", 0),
            Err(DbError::NoSuchTable("nope".into()))
        );
        assert!(matches!(
            db.count_where_greater("sales", "NOPE", 0),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            db.point_select("sales", "AMOUNT", 1, &["NOPE"]),
            Err(DbError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn scan_jobs_are_confined_and_oltp_is_not() {
        let rec = Arc::new(RecordingAllocator::new());
        let db = sample_db(rec.clone());
        db.count_where_greater("sales", "AMOUNT", 5_000).unwrap();
        db.point_select("orders", "ID", 7, &["ID"]).unwrap();
        let masks: Vec<u32> = rec.calls().iter().map(|(_, m)| m.bits()).collect();
        assert!(masks.contains(&0x3), "scan must be confined");
        assert!(masks.contains(&0xfffff), "OLTP must keep the full cache");
    }

    #[test]
    fn cat_flag_reflects_backend() {
        let db = Database::open(1, 1);
        // In this container there is no CAT; the facade must fall back.
        let _ = db.cat_is_live(); // no panic; value depends on host
        assert!(db.table_names().is_empty());
    }
}
