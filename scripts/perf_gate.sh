#!/usr/bin/env bash
# Perf-regression gate for the cache-allocation fast path.
#
# Runs the `micro_alloc` criterion benchmark several times on the current
# tree and on a base ref (checked out into a throwaway git worktree),
# compares per-benchmark medians, and fails if any gated benchmark got
# more than the threshold slower. The measurements come from the JSON
# lines the vendored criterion stand-in appends when CCP_BENCH_JSON is
# set.
#
# Usage:
#   scripts/perf_gate.sh [BASE_REF]        # default: origin/main, then main
#
# Tunables (environment):
#   CCP_PERF_RUNS       repetitions per side (default 5)
#   CCP_PERF_THRESHOLD  allowed slowdown in percent (default 15)
#   CCP_PERF_GATE_IDS   space-separated benchmark ids to gate
#                       (default: the mask-rebind fast path + mask switch)
#   CCP_BENCH_MS        measuring window per benchmark in ms (default 120)

set -euo pipefail

RUNS="${CCP_PERF_RUNS:-5}"
THRESHOLD="${CCP_PERF_THRESHOLD:-15}"
GATE_IDS="${CCP_PERF_GATE_IDS:-alloc/fast_path/rebind_same_mask alloc/switch/alternate_masks}"
export CCP_BENCH_MS="${CCP_BENCH_MS:-120}"

REPO_ROOT="$(git rev-parse --show-toplevel)"
cd "$REPO_ROOT"

BASE_REF="${1:-}"
if [[ -z "$BASE_REF" ]]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
        BASE_REF=origin/main
    else
        BASE_REF=main
    fi
fi

WORK_DIR="$(mktemp -d)"
BASE_TREE="$WORK_DIR/base"
PR_JSON="$WORK_DIR/pr.jsonl"
BASE_JSON="$WORK_DIR/base.jsonl"
cleanup() {
    git worktree remove --force "$BASE_TREE" >/dev/null 2>&1 || true
    rm -rf "$WORK_DIR"
}
trap cleanup EXIT

run_bench() { # run_bench <tree-dir> <json-out>
    local tree="$1" out="$2" i
    for ((i = 1; i <= RUNS; i++)); do
        echo "  run $i/$RUNS …"
        (cd "$tree" && CCP_BENCH_JSON="$out" \
            cargo bench -p ccp-bench --bench micro_alloc >/dev/null)
    done
}

echo "== perf gate: current tree vs $BASE_REF (runs=$RUNS, threshold=${THRESHOLD}%) =="
echo "-- benchmarking current tree"
run_bench "$REPO_ROOT" "$PR_JSON"

echo "-- benchmarking base ($BASE_REF)"
git worktree add --detach "$BASE_TREE" "$BASE_REF" >/dev/null
run_bench "$BASE_TREE" "$BASE_JSON"

if [[ ! -s "$BASE_JSON" ]]; then
    # The base ref predates CCP_BENCH_JSON support in the vendored
    # criterion stand-in; there is nothing to compare against yet.
    echo "-- base produced no measurements; gate passes vacuously"
    exit 0
fi

python3 - "$PR_JSON" "$BASE_JSON" "$THRESHOLD" $GATE_IDS <<'PY'
import json
import statistics
import sys

pr_path, base_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
gate_ids = sys.argv[4:]


def medians(path):
    by_id = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            by_id.setdefault(rec["id"], []).append(rec["ns_per_iter"])
    return {bench: statistics.median(v) for bench, v in by_id.items()}


pr, base = medians(pr_path), medians(base_path)
failed = False
for bench in gate_ids:
    if bench not in pr:
        print(f"FAIL {bench}: missing from current-tree measurements")
        failed = True
        continue
    if bench not in base:
        print(f"skip {bench}: not measured on base (new benchmark)")
        continue
    delta = (pr[bench] - base[bench]) / base[bench] * 100.0
    verdict = "FAIL" if delta > threshold else "ok  "
    print(
        f"{verdict} {bench}: base {base[bench]:10.1f} ns  "
        f"pr {pr[bench]:10.1f} ns  delta {delta:+6.1f}%"
    )
    if delta > threshold:
        failed = True

sys.exit(1 if failed else 0)
PY
echo "== perf gate passed =="
