#!/usr/bin/env bash
# Perf-regression gate for the cache-allocation fast path.
#
# Runs the `micro_alloc` criterion benchmark several times on the current
# tree and on a base ref (checked out into a throwaway git worktree),
# compares per-benchmark medians, and fails if any gated benchmark got
# more than the threshold slower. The measurements come from the JSON
# lines the vendored criterion stand-in appends when CCP_BENCH_JSON is
# set.
#
# Usage:
#   scripts/perf_gate.sh [BASE_REF]        # default: origin/main, then main
#
# Tunables (environment):
#   CCP_PERF_RUNS       repetitions per side (default 5)
#   CCP_PERF_THRESHOLD  allowed slowdown in percent (default 15)
#   CCP_PERF_GATE_IDS   space-separated benchmark ids to gate
#                       (default: the mask-rebind fast path + mask switch)
#   CCP_BENCH_MS        measuring window per benchmark in ms (default 120)

set -euo pipefail

RUNS="${CCP_PERF_RUNS:-5}"
THRESHOLD="${CCP_PERF_THRESHOLD:-15}"
GATE_IDS="${CCP_PERF_GATE_IDS:-alloc/fast_path/rebind_same_mask alloc/switch/alternate_masks}"
export CCP_BENCH_MS="${CCP_BENCH_MS:-120}"

REPO_ROOT="$(git rev-parse --show-toplevel)"
cd "$REPO_ROOT"

BASE_REF="${1:-}"
if [[ -z "$BASE_REF" ]]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
        BASE_REF=origin/main
    else
        BASE_REF=main
    fi
fi

WORK_DIR="$(mktemp -d)"
BASE_TREE="$WORK_DIR/base"
PR_JSON="$WORK_DIR/pr.jsonl"
BASE_JSON="$WORK_DIR/base.jsonl"
cleanup() {
    git worktree remove --force "$BASE_TREE" >/dev/null 2>&1 || true
    rm -rf "$WORK_DIR"
}
trap cleanup EXIT

run_bench() { # run_bench <tree-dir> <json-out>
    local tree="$1" out="$2" i
    for ((i = 1; i <= RUNS; i++)); do
        echo "  run $i/$RUNS …"
        (cd "$tree" && CCP_BENCH_JSON="$out" \
            cargo bench -p ccp-bench --bench micro_alloc >/dev/null)
    done
}

# Anything written here lands in the GitHub Actions job summary; local
# runs just drop it.
SUMMARY="${GITHUB_STEP_SUMMARY:-/dev/null}"

echo "== perf gate: current tree vs $BASE_REF (runs=$RUNS, threshold=${THRESHOLD}%) =="
echo "-- benchmarking current tree"
run_bench "$REPO_ROOT" "$PR_JSON"

if [[ ! -s "$PR_JSON" ]]; then
    # A silently-empty measurement file must never read as "no
    # regression": it means the bench harness itself broke.
    echo "perf gate: no CCP_BENCH_JSON lines from the current tree — the" >&2
    echo "vendored criterion stand-in emitted no measurements (is the" >&2
    echo "micro_alloc bench still wired to CCP_BENCH_JSON?)" >&2
    echo "### Perf gate (micro_alloc): FAILED — no measurements from the current tree" >>"$SUMMARY"
    exit 1
fi

echo "-- benchmarking base ($BASE_REF)"
git worktree add --detach "$BASE_TREE" "$BASE_REF" >/dev/null
run_bench "$BASE_TREE" "$BASE_JSON"

if [[ ! -s "$BASE_JSON" ]]; then
    # The base ref predates CCP_BENCH_JSON support in the vendored
    # criterion stand-in; there is nothing to compare against yet.
    echo "-- base produced no measurements; gate passes vacuously"
    {
        echo "### Perf gate (micro_alloc)"
        echo
        echo "Vacuous pass: base \`${BASE_REF}\` produced no CCP_BENCH_JSON measurements."
    } >>"$SUMMARY"
    exit 0
fi

STATUS=0
python3 - "$PR_JSON" "$BASE_JSON" "$THRESHOLD" "$WORK_DIR/summary.md" $GATE_IDS <<'PY' || STATUS=$?
import json
import statistics
import sys

pr_path, base_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
summary_path = sys.argv[4]
gate_ids = sys.argv[5:]


def medians(path):
    by_id = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            by_id.setdefault(rec["id"], []).append(rec["ns_per_iter"])
    return {bench: statistics.median(v) for bench, v in by_id.items()}


pr, base = medians(pr_path), medians(base_path)
failed = False
rows = []
for bench in gate_ids:
    if bench not in pr:
        print(f"FAIL {bench}: missing from current-tree measurements")
        rows.append((bench, "—", "—", "—", "FAIL (not measured)"))
        failed = True
        continue
    if bench not in base:
        print(f"skip {bench}: not measured on base (new benchmark)")
        rows.append((bench, "—", f"{pr[bench]:.1f}", "—", "skip (new)"))
        continue
    delta = (pr[bench] - base[bench]) / base[bench] * 100.0
    verdict = "FAIL" if delta > threshold else "ok"
    print(
        f"{verdict:4s} {bench}: base {base[bench]:10.1f} ns  "
        f"pr {pr[bench]:10.1f} ns  delta {delta:+6.1f}%"
    )
    rows.append(
        (bench, f"{base[bench]:.1f}", f"{pr[bench]:.1f}", f"{delta:+.1f}%", verdict)
    )
    if delta > threshold:
        failed = True

with open(summary_path, "w") as f:
    f.write("### Perf gate (micro_alloc)\n\n")
    f.write(f"Threshold: {threshold:.0f}% slowdown on medians.\n\n")
    f.write("| benchmark | base (ns/iter) | pr (ns/iter) | delta | verdict |\n")
    f.write("|---|---:|---:|---:|---|\n")
    for row in rows:
        f.write("| " + " | ".join(row) + " |\n")

sys.exit(1 if failed else 0)
PY
cat "$WORK_DIR/summary.md" >>"$SUMMARY"
if [[ $STATUS -ne 0 ]]; then
    exit "$STATUS"
fi
echo "== perf gate passed =="
