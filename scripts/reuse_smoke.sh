#!/usr/bin/env bash
# Reuse-cache gate: drives a server with a repeated-query mix and
# asserts the artifact cache actually pays for itself.
#
# Phase 1 (warm): `ccp bench-serve` fires the identical q1 at the
# server; everything after the first scan must be a cache hit.
# Asserts from the bench's --json-out and a /metrics scrape:
#
#   * server-side reuse hit rate >= CCP_REUSE_MIN_HIT_RATE (default 0.5);
#   * client p95 over hit responses <= 0.5 x p95 over miss responses
#     (a hit must skip the scan, not just relabel it);
#   * ccp_reuse_bytes <= the configured budget.
#
# Phase 2 (invalidate): `POST /data/bump` advances the data version;
# the next q1 must rebuild (reuse=miss), the one after must hit again,
# and ccp_reuse_invalidations_total must have moved.
#
# Zero worker panics throughout.
#
# Usage:
#   scripts/reuse_smoke.sh [PORT]      # default 19390
#
# Tunables (environment):
#   CCP_REUSE_QPS           offered load in phase 1 (default 100)
#   CCP_REUSE_SECS          phase-1 duration in seconds (default 3)
#   CCP_REUSE_PROFILE       cargo profile to build/run (default release)
#   CCP_REUSE_MIN_HIT_RATE  server hit-rate floor (default 0.5)
#   CCP_REUSE_BUDGET_MB     server cache budget in MiB (default 8)
#   CCP_SMOKE_ARTIFACTS     directory to receive server logs + final
#                           /metrics when the script fails

set -euo pipefail

PORT="${1:-19390}"
QPS="${CCP_REUSE_QPS:-100}"
SECS="${CCP_REUSE_SECS:-3}"
PROFILE="${CCP_REUSE_PROFILE:-release}"
MIN_HIT_RATE="${CCP_REUSE_MIN_HIT_RATE:-0.5}"
BUDGET_MB="${CCP_REUSE_BUDGET_MB:-8}"

cd "$(dirname "$0")/.."
. scripts/lib.sh

ccp_build "$PROFILE"
ccp_init

ADDR="127.0.0.1:${PORT}"
# A big enough table that a real scan is clearly slower than a cache
# hit — the hit-vs-miss latency gate depends on that separation.
ccp_launch_server reuse "$ADDR" --rows 2000000 --reuse-budget-mb "$BUDGET_MB"

echo "== warm phase: identical q1 at ${QPS} qps for ${SECS}s"
"$CCP" bench-serve --addr "$ADDR" --qps "$QPS" --duration "$SECS" \
  --concurrency 2 --workload q1 --max-error-pct 1 \
  --json-out "$WORK/warm.json"

echo "== reuse gates (hit rate >= ${MIN_HIT_RATE}, hit p95 <= 0.5 x miss p95)"
python3 - "$WORK/warm.json" "$MIN_HIT_RATE" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
reuse = doc["bench"]["reuse"]
rate = reuse["server_hit_rate"]
assert rate is not None, "server exposed no reuse counters: is the cache on?"
floor = float(sys.argv[2])
assert rate >= floor, f"server hit rate {rate:.3f} below the {floor} floor"
hits, misses = reuse["hits"], reuse["misses"]
assert hits > 0 and misses > 0, f"need both outcomes to compare ({reuse})"
hit_p95, miss_p95 = reuse["hit_p95_us"], reuse["miss_p95_us"]
assert hit_p95 * 2 <= miss_p95, (
    f"hit p95 {hit_p95}us not under half of miss p95 {miss_p95}us — "
    "hits are not skipping the scan"
)
print(f"   hit rate {rate:.3f}, hit p95 {hit_p95}us, miss p95 {miss_p95}us "
      f"({hits} hits / {misses} misses)")
PY

ccp_scrape "$ADDR" /metrics "$WORK/warm.metrics.txt"
BYTES=$(ccp_metric "$WORK/warm.metrics.txt" ccp_reuse_bytes)
awk -v b="$BYTES" -v mb="$BUDGET_MB" 'BEGIN {
  budget = mb * 1024 * 1024
  if (b == "" || b > budget) {
    print "ccp_reuse_bytes " b " exceeds the " budget "-byte budget" > "/dev/stderr"
    exit 1
  }
}'
echo "   ccp_reuse_bytes=${BYTES} within ${BUDGET_MB}MiB"

echo "== bump phase: /data/bump invalidates, next q1 rebuilds, then hits"
ccp_post "$ADDR" /data/bump "" "$WORK/bump.json"
grep -qF '"status":"ok"' "$WORK/bump.json" || {
  echo "bump failed: $(cat "$WORK/bump.json")" >&2
  exit 1
}
Q1='{"workload":"q1","threshold":100}'
ccp_post "$ADDR" /query "$Q1" "$WORK/rebuild.json"
grep -qF '"reuse":"miss"' "$WORK/rebuild.json" || {
  echo "post-bump q1 did not rebuild: $(cat "$WORK/rebuild.json")" >&2
  exit 1
}
ccp_post "$ADDR" /query "$Q1" "$WORK/refill.json"
grep -qF '"reuse":"hit"' "$WORK/refill.json" || {
  echo "post-rebuild q1 did not hit: $(cat "$WORK/refill.json")" >&2
  exit 1
}
ccp_scrape "$ADDR" /metrics "$WORK/final.metrics.txt"
INVALIDATIONS=$(ccp_metric "$WORK/final.metrics.txt" ccp_reuse_invalidations_total)
if [[ -z "$INVALIDATIONS" || "$INVALIDATIONS" == 0 ]]; then
  echo "bump never invalidated anything (ccp_reuse_invalidations_total=${INVALIDATIONS})" >&2
  grep '^ccp_reuse' "$WORK/final.metrics.txt" >&2 || true
  exit 1
fi
echo "   invalidations=${INVALIDATIONS}, rebuild->hit recovery confirmed"

ccp_assert_no_panics "$WORK/final.metrics.txt"
echo "   jobs_panicked = 0"

echo "reuse smoke OK"
