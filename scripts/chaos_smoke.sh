#!/usr/bin/env bash
# Chaos smoke gate: the service must degrade gracefully, not fail, when
# the resctrl backend misbehaves.
#
# Starts `ccp serve` with the in-memory fake resctrl backend and an
# armed fault window (every schemata write fails with EBUSY for the
# first 80 hits), drives it with `ccp bench-serve`, and asserts:
#
#   * >=99% of queries succeed (bench-serve exits 0 with a 1% gate) —
#     partitioning is an optimization, never a gate;
#   * the `ccp_resctrl_degraded` gauge flips 0 -> 1 (observed live
#     mid-run) -> 0 (after the re-probe loop burns through the window),
#     with breaker-trip and restore counters recording the transitions;
#   * zero worker panics end to end.
#
# Usage:
#   scripts/chaos_smoke.sh [PORT]          # default: 19191
#
# Tunables (environment):
#   CCP_CHAOS_QPS        offered load (default 40)
#   CCP_CHAOS_SECS       bench duration in seconds (default 6)
#   CCP_CHAOS_PROFILE    cargo profile to build/run (default release)
#   CCP_SMOKE_ARTIFACTS  directory to receive server log + final
#                        /metrics when the script fails (for CI uploads)

set -euo pipefail

PORT="${1:-19191}"
ADDR="127.0.0.1:${PORT}"
QPS="${CCP_CHAOS_QPS:-40}"
SECS="${CCP_CHAOS_SECS:-6}"
PROFILE="${CCP_CHAOS_PROFILE:-release}"
# A bounded window: enough failing writes that the breaker trips (3
# exhausted ops of 3 attempts each) and degraded mode lasts a couple of
# seconds of 150ms re-probes, small enough that the run always heals.
FAULTS="resctrl.write_schemata=err@1+80"

cd "$(dirname "$0")/.."
. scripts/lib.sh

ccp_build "$PROFILE"
ccp_init

ccp_launch_server serve "$ADDR" --fake-resctrl --reprobe-interval-ms 150 \
  --faults "$FAULTS"

ccp_scrape "$ADDR" /stats "$WORK/stats.json"
grep -qF '"supervised":true' "$WORK/stats.json" || {
  echo "engine is not under resctrl supervision:" >&2
  cat "$WORK/stats.json" >&2
  exit 1
}

echo "== bench-serve under fault plan '${FAULTS}': ${QPS} qps for ${SECS}s"
"$CCP" bench-serve --addr "$ADDR" --qps "$QPS" --duration "$SECS" \
  --concurrency 2 --max-error-pct 1 &
BENCH_PID=$!

# While the bench runs, watch for the degraded gauge going high: the
# breaker trips within the first few hundred milliseconds of load and
# degraded mode lasts a couple of seconds, so 100ms polls cannot miss it.
SAW_DEGRADED=0
while kill -0 "$BENCH_PID" 2>/dev/null; do
  if ccp_scrape "$ADDR" /metrics "$WORK/metrics.txt" 2>/dev/null \
    && grep -qE '^ccp_resctrl_degraded 1' "$WORK/metrics.txt"; then
    SAW_DEGRADED=1
  fi
  sleep 0.1
done
wait "$BENCH_PID" # propagates bench-serve's >=99%-success gate

if [[ "$SAW_DEGRADED" != 1 ]]; then
  echo "ccp_resctrl_degraded never went high under the fault plan" >&2
  exit 1
fi
echo "   observed degraded mode mid-run"

# The re-probe loop must heal once the fault window is exhausted.
HEALED=0
for _ in $(seq 1 100); do
  ccp_scrape "$ADDR" /metrics "$WORK/metrics.txt"
  if grep -qE '^ccp_resctrl_degraded 0' "$WORK/metrics.txt"; then
    HEALED=1
    break
  fi
  sleep 0.1
done
if [[ "$HEALED" != 1 ]]; then
  echo "server never recovered from degraded mode:" >&2
  grep '^ccp_resctrl' "$WORK/metrics.txt" >&2 || true
  exit 1
fi
echo "   healed back to partitioned mode"

TRIPS=$(ccp_metric "$WORK/metrics.txt" ccp_resctrl_breaker_trips_total)
RESTORES=$(ccp_metric "$WORK/metrics.txt" ccp_resctrl_restores_total)
if [[ -z "$TRIPS" || "$TRIPS" == 0 || -z "$RESTORES" || "$RESTORES" == 0 ]]; then
  echo "transition counters missing the 0->1->0 episode: trips=${TRIPS:-?} restores=${RESTORES:-?}" >&2
  exit 1
fi
echo "   breaker_trips=${TRIPS} restores=${RESTORES}"

ccp_assert_no_panics "$WORK/metrics.txt"
echo "   jobs_panicked = 0"

echo "chaos smoke OK"
