#!/usr/bin/env bash
# Adaptive-vs-static gate for the closed-loop occupancy controller.
#
# Phase 1 (A/B): starts two servers on the fake resctrl backend — one
# static, one with `--adaptive` fed a scripted occupancy trace in which
# the sensitive class's working set collapses after ~600ms — waits for
# the controller to repartition, then drives both with a single
# `ccp bench-serve --ab-addr` run and asserts:
#
#   * the controller repartitioned at least once and is not thrashing
#     (repartitions <= CCP_ADAPT_MAX_REPARTS);
#   * `ccp_control_mask_ways{class="sensitive"}` shrank below the full
#     20 ways while the polluter kept >= 2 ways;
#   * adaptive p95 <= static p95 * 1.10 + CCP_AB_SLACK_US (the slack
#     absorbs scheduler jitter on loaded CI runners at microsecond
#     scales);
#   * zero worker panics on either server.
#
# Phase 2 (chaos): a third adaptive server starts with schemata writes
# failing for a bounded window plus a one-shot `control.apply` fault,
# and must (a) clamp to the static masks while degraded, (b) record at
# least one revert, and (c) land the adaptive plan after healing.
#
# Usage:
#   scripts/adaptive_smoke.sh [PORT_STATIC] [PORT_ADAPTIVE]  # 19290/19291
#
# Tunables (environment):
#   CCP_ADAPT_QPS         offered load per phase (default 40)
#   CCP_ADAPT_SECS        bench duration per phase in seconds (default 3)
#   CCP_ADAPT_PROFILE     cargo profile to build/run (default release)
#   CCP_ADAPT_MAX_REPARTS thrash ceiling on repartitions (default 8)
#   CCP_AB_SLACK_US       absolute p95 slack in microseconds (default 2000)
#   CCP_SMOKE_ARTIFACTS   directory to receive server logs + final
#                         /metrics when the script fails (for CI uploads)

set -euo pipefail

PORT_STATIC="${1:-19290}"
PORT_ADAPTIVE="${2:-19291}"
PORT_CHAOS=$((PORT_ADAPTIVE + 1))
QPS="${CCP_ADAPT_QPS:-40}"
SECS="${CCP_ADAPT_SECS:-3}"
PROFILE="${CCP_ADAPT_PROFILE:-release}"
MAX_REPARTS="${CCP_ADAPT_MAX_REPARTS:-8}"
SLACK_US="${CCP_AB_SLACK_US:-2000}"
# Sensitive occupancy sits at 95% of its allocation for 6 monitor ticks
# (the classifier needs a stable window), then collapses to 12%: the
# controller must shrink the sensitive mask and regrow the polluter's.
TRACE='sensitive:0.95x6,0.12;polluting:0.08;mixed:0.02'
SENS_WAYS='ccp_control_mask_ways{class="sensitive"}'
POLL_WAYS='ccp_control_mask_ways{class="polluting"}'

cd "$(dirname "$0")/.."
. scripts/lib.sh

ccp_build "$PROFILE"
ccp_init

ADDR_STATIC="127.0.0.1:${PORT_STATIC}"
ADDR_ADAPTIVE="127.0.0.1:${PORT_ADAPTIVE}"
ADDR_CHAOS="127.0.0.1:${PORT_CHAOS}"

ccp_launch_server static "$ADDR_STATIC" --fake-resctrl
ccp_launch_server adaptive "$ADDR_ADAPTIVE" --fake-resctrl --adaptive \
  --control-interval-ms 50 --monitor-interval-ms 100 \
  --occupancy-script "$TRACE"

# Let the controller converge before measuring: the scripted collapse
# lands after 6 monitor ticks, the dwell gate 3 control ticks later.
echo "== waiting for the adaptive controller to repartition"
CONVERGED=0
for _ in $(seq 1 150); do
  if ccp_scrape "$ADDR_ADAPTIVE" /metrics "$WORK/adaptive.metrics.txt" 2>/dev/null; then
    REPARTS=$(ccp_metric "$WORK/adaptive.metrics.txt" ccp_control_repartitions_total)
    if [[ -n "$REPARTS" && "$REPARTS" != 0 ]]; then
      CONVERGED=1
      break
    fi
  fi
  sleep 0.1
done
if [[ "$CONVERGED" != 1 ]]; then
  echo "controller never repartitioned on the scripted trace:" >&2
  grep '^ccp_control' "$WORK/adaptive.metrics.txt" >&2 || true
  exit 1
fi
echo "   repartitions=${REPARTS}"

echo "== A/B bench: ${QPS} qps for ${SECS}s per phase (static, then adaptive)"
"$CCP" bench-serve --addr "$ADDR_STATIC" --ab-addr "$ADDR_ADAPTIVE" \
  --qps "$QPS" --duration "$SECS" --concurrency 2 --max-error-pct 1 \
  --json-out "$WORK/ab.json"

echo "== checking controller state after load"
ccp_scrape "$ADDR_ADAPTIVE" /metrics "$WORK/adaptive.metrics.txt"
REPARTS=$(ccp_metric "$WORK/adaptive.metrics.txt" ccp_control_repartitions_total)
if [[ -z "$REPARTS" || "$REPARTS" == 0 ]]; then
  echo "repartitions counter went missing after the bench" >&2
  exit 1
fi
if (( REPARTS > MAX_REPARTS )); then
  echo "controller is thrashing: ${REPARTS} repartitions > ${MAX_REPARTS}" >&2
  grep '^ccp_control' "$WORK/adaptive.metrics.txt" >&2 || true
  exit 1
fi
SENS=$(ccp_metric "$WORK/adaptive.metrics.txt" "$SENS_WAYS")
POLL=$(ccp_metric "$WORK/adaptive.metrics.txt" "$POLL_WAYS")
awk -v s="$SENS" -v p="$POLL" 'BEGIN {
  if (s == "" || s >= 20) { print "sensitive mask never shrank: " s > "/dev/stderr"; exit 1 }
  if (p == "" || p < 2)   { print "polluter starved: " p > "/dev/stderr"; exit 1 }
}'
echo "   repartitions=${REPARTS} mask_ways sensitive=${SENS} polluting=${POLL}"

echo "== p95 gate (adaptive <= static * 1.10 + ${SLACK_US}us)"
python3 - "$WORK/ab.json" "$SLACK_US" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["mode"] == "ab", f"expected an A/B report, got {doc['mode']!r}"
static_p95 = doc["static"]["total"]["p95_us"]
adaptive_p95 = doc["adaptive"]["total"]["p95_us"]
limit = static_p95 * 1.10 + int(sys.argv[2])
assert adaptive_p95 <= limit, (
    f"adaptive p95 {adaptive_p95}us regressed past static {static_p95}us "
    f"(limit {limit:.0f}us)"
)
print(f"   static p95 {static_p95}us, adaptive p95 {adaptive_p95}us "
      f"(limit {limit:.0f}us)")
PY

ccp_assert_no_panics "$WORK/adaptive.metrics.txt"
ccp_scrape "$ADDR_STATIC" /metrics "$WORK/static.metrics.txt"
ccp_assert_no_panics "$WORK/static.metrics.txt"
echo "   jobs_panicked = 0 on both servers"

# ---------------------------------------------------------------------------
# Phase 2: the controller must revert cleanly when the backend misbehaves.
# A one-shot control.apply fault fails the first repartition outright and
# a bounded schemata-write window trips the supervisor's breaker; while
# degraded the controller must clamp to the static masks, and once the
# re-probe loop heals the backend it must land the adaptive plan.
# ---------------------------------------------------------------------------
FAULTS='resctrl.write_schemata=err@1+40,control.apply=err@1+1'
echo "== chaos variant under fault plan '${FAULTS}'"
ccp_launch_server chaos "$ADDR_CHAOS" --fake-resctrl --adaptive \
  --control-interval-ms 50 --monitor-interval-ms 100 --reprobe-interval-ms 150 \
  --occupancy-script "$TRACE" --faults "$FAULTS"

# (a) degraded mode observed with the controller clamped to static masks.
CLAMPED=0
for _ in $(seq 1 150); do
  if ccp_scrape "$ADDR_CHAOS" /metrics "$WORK/chaos.metrics.txt" 2>/dev/null \
    && grep -qE '^ccp_resctrl_degraded 1' "$WORK/chaos.metrics.txt"; then
    CSENS=$(ccp_metric "$WORK/chaos.metrics.txt" "$SENS_WAYS")
    if awk -v s="$CSENS" 'BEGIN { exit !(s != "" && s == 20) }' \
      && ccp_scrape "$ADDR_CHAOS" /stats "$WORK/chaos.stats.json" 2>/dev/null \
      && grep -qF '"clamped":true' "$WORK/chaos.stats.json"; then
      CLAMPED=1
      break
    fi
  fi
  sleep 0.1
done
if [[ "$CLAMPED" != 1 ]]; then
  echo "never observed the controller clamped to static masks while degraded" >&2
  grep -E '^ccp_(control|resctrl)' "$WORK/chaos.metrics.txt" >&2 || true
  exit 1
fi
echo "   degraded=1 with sensitive=20 ways and clamped=true"

# (b) the backend heals once the fault window is exhausted.
HEALED=0
for _ in $(seq 1 200); do
  ccp_scrape "$ADDR_CHAOS" /metrics "$WORK/chaos.metrics.txt"
  if grep -qE '^ccp_resctrl_degraded 0' "$WORK/chaos.metrics.txt"; then
    HEALED=1
    break
  fi
  sleep 0.1
done
if [[ "$HEALED" != 1 ]]; then
  echo "server never recovered from degraded mode:" >&2
  grep '^ccp_resctrl' "$WORK/chaos.metrics.txt" >&2 || true
  exit 1
fi
echo "   healed back to partitioned mode"

# (c) at least one recorded revert, and the adaptive plan lands post-heal.
LANDED=0
for _ in $(seq 1 150); do
  ccp_scrape "$ADDR_CHAOS" /metrics "$WORK/chaos.metrics.txt"
  REVERTS=$(ccp_metric "$WORK/chaos.metrics.txt" ccp_control_reverts_total)
  CREPARTS=$(ccp_metric "$WORK/chaos.metrics.txt" ccp_control_repartitions_total)
  CSENS=$(ccp_metric "$WORK/chaos.metrics.txt" "$SENS_WAYS")
  if [[ -n "$REVERTS" && "$REVERTS" != 0 && -n "$CREPARTS" && "$CREPARTS" != 0 ]] \
    && awk -v s="$CSENS" 'BEGIN { exit !(s != "" && s < 20) }'; then
    LANDED=1
    break
  fi
  sleep 0.1
done
if [[ "$LANDED" != 1 ]]; then
  echo "adaptive plan never landed after healing:" >&2
  grep '^ccp_control' "$WORK/chaos.metrics.txt" >&2 || true
  exit 1
fi
echo "   reverts=${REVERTS} repartitions=${CREPARTS} sensitive=${CSENS} ways"

ccp_assert_no_panics "$WORK/chaos.metrics.txt"
echo "   jobs_panicked = 0"

echo "adaptive smoke OK"
