# shellcheck shell=bash
# Shared helpers for the smoke-test scripts (serve_smoke, chaos_smoke,
# adaptive_smoke, chaos_soak). Source this file after `set -euo pipefail`,
# then call `ccp_build` and `ccp_init`.
#
# Contract:
#   * ccp_init installs a single EXIT trap that kills every server
#     launched through ccp_launch_server and removes $WORK;
#   * when the script fails AND CCP_SMOKE_ARTIFACTS is set, the trap
#     first copies each server's log and a final /metrics scrape into
#     that directory, so CI uploads show what the server was doing.

# Builds the ccp binary for the requested cargo profile (default:
# release) and sets $CCP to its path.
ccp_build() {
  local profile="${1:-release}"
  if [[ "$profile" == "release" ]]; then
    cargo build --release -q --bin ccp
    CCP=target/release/ccp
  else
    cargo build -q --bin ccp
    CCP=target/debug/ccp
  fi
}

# Creates $WORK, initializes the server registry and installs the
# cleanup trap. Call once, after cd'ing to the repo root.
ccp_init() {
  WORK="$(mktemp -d)"
  CCP_SERVER_PIDS=()
  CCP_SERVER_LOGS=()
  CCP_SERVER_ADDRS=()
  trap ccp_cleanup EXIT
}

ccp_cleanup() {
  local status=$?
  if [[ $status -ne 0 && -n "${CCP_SMOKE_ARTIFACTS:-}" ]]; then
    mkdir -p "$CCP_SMOKE_ARTIFACTS"
    local i name
    for i in ${CCP_SERVER_LOGS[@]+"${!CCP_SERVER_LOGS[@]}"}; do
      name="$(basename "${CCP_SERVER_LOGS[$i]}" .log)"
      cp "${CCP_SERVER_LOGS[$i]}" "$CCP_SMOKE_ARTIFACTS/${name}.log" 2>/dev/null || true
      ccp_scrape "${CCP_SERVER_ADDRS[$i]}" /metrics \
        "$CCP_SMOKE_ARTIFACTS/${name}.metrics.txt" 2>/dev/null || true
      # The flight recorder's black box: what every series and control
      # event looked like in the run-up to the failure.
      ccp_scrape "${CCP_SERVER_ADDRS[$i]}" /timeline \
        "$CCP_SMOKE_ARTIFACTS/${name}.timeline.json" 2>/dev/null || true
    done
  fi
  local pid
  for pid in ${CCP_SERVER_PIDS[@]+"${CCP_SERVER_PIDS[@]}"}; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
  exit "$status"
}

# ccp_launch_server NAME ADDR [serve flags...]
# Starts `ccp serve` in the background, logging to $WORK/NAME.log, and
# waits for the listener to come up (failing fast, with the log dumped,
# if the process exits first).
ccp_launch_server() {
  local name="$1" addr="$2"
  shift 2
  local port="${addr##*:}"
  local log="$WORK/${name}.log"
  "$CCP" serve --addr "$addr" "$@" >"$log" 2>&1 &
  local pid=$!
  CCP_SERVER_PIDS+=("$pid")
  CCP_SERVER_LOGS+=("$log")
  CCP_SERVER_ADDRS+=("$addr")
  local _i
  for _i in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/${port}") 2>/dev/null; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "serve (${name}) exited early:" >&2
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "serve (${name}) never started listening on ${addr}" >&2
  return 1
}

# ccp_scrape ADDR PATH OUTFILE — fetch an endpoint with curl or wget.
ccp_scrape() {
  local addr="$1" path="$2" out="$3"
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://${addr}${path}" -o "$out"
  else
    wget -qO "$out" "http://${addr}${path}"
  fi
}

# ccp_post ADDR PATH BODY OUTFILE — POST to an endpoint with curl or
# wget (BODY may be empty for body-less endpoints like /data/bump).
ccp_post() {
  local addr="$1" path="$2" body="$3" out="$4"
  if command -v curl >/dev/null 2>&1; then
    curl -sf -X POST --data "$body" "http://${addr}${path}" -o "$out"
  else
    wget -qO "$out" --post-data="$body" "http://${addr}${path}"
  fi
}

# ccp_metric FILE NAME — first sample value of a metric (NAME may carry
# a label set, e.g. 'ccp_control_mask_ways{class="sensitive"}').
ccp_metric() {
  awk -v name="$2" '$1 == name { print $NF; exit }' "$1"
}

# ccp_assert_no_panics METRICS_FILE — no worker thread may have died.
ccp_assert_no_panics() {
  local panicked
  panicked=$(awk '/^ccp_executor_jobs_panicked_total/ { sum += $NF } END { print sum + 0 }' "$1")
  if [[ "$panicked" != 0 ]]; then
    echo "jobs_panicked = ${panicked} (> 0): worker panics during smoke load" >&2
    return 1
  fi
}
