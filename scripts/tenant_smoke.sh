#!/usr/bin/env bash
# Tenant lifecycle smoke gate: quotas bite per tenant, the group
# reconciler survives CLOSID exhaustion, and shutdown leaves zero
# `ccp-` groups behind.
#
# Starts `ccp serve` with the fake resctrl tree capped at 4 CLOSIDs —
# three tenants x three classes of desired groups can never all fit —
# plus a bounded ENOSPC fault window on tenant group creation, then:
#
#   * a zero-quota tenant is 429'd at arrival while a quota'd tenant
#     serves 200 through the very same queue (quotas are per tenant,
#     not a shared valve);
#   * `ccp bench-serve --tenant-mix alpha:50,beta:30,gamma:20` drives a
#     skewed three-tenant mix with a 1% error gate — >=99% of queries
#     succeed on shared class masks while dedicated groups are
#     impossible;
#   * the reconciler's retry counter advances through the fault window
#     and the failed-groups gauge converges to 0 (exhaustion degrades
#     to fallback, it is never booked as failure);
#   * SIGINT shutdown runs the final sweep and the server's own exit
#     log proves 0 `ccp-` groups remain;
#   * zero worker panics end to end.
#
# Usage:
#   scripts/tenant_smoke.sh [PORT]          # default: 19393
#
# Tunables (environment):
#   CCP_TENANT_QPS       offered load (default 40)
#   CCP_TENANT_SECS      bench duration in seconds (default 6)
#   CCP_TENANT_PROFILE   cargo profile to build/run (default release)
#   CCP_SMOKE_ARTIFACTS  directory to receive server log + final
#                        /metrics when the script fails (for CI uploads)

set -euo pipefail

PORT="${1:-19393}"
ADDR="127.0.0.1:${PORT}"
QPS="${CCP_TENANT_QPS:-40}"
SECS="${CCP_TENANT_SECS:-6}"
PROFILE="${CCP_TENANT_PROFILE:-release}"
# 20 ENOSPC hits on tenant group creation: the capacity-aware retry
# (one attempt every few 25ms passes under backoff) burns through the
# window in about two seconds, then lands on genuine 4-CLOSID scarcity.
FAULTS="tenant.create_group=err:enospc@1+20"

cd "$(dirname "$0")/.."
. scripts/lib.sh

ccp_build "$PROFILE"
ccp_init

ccp_launch_server serve "$ADDR" \
  --fake-closids 4 --reconcile-interval-ms 25 \
  --tenant-quota alpha=8 --tenant-weight alpha=5 \
  --tenant-quota beta=8 --tenant-weight beta=3 \
  --tenant-quota gamma=8 --tenant-weight gamma=2 \
  --tenant-quota tiny=0 \
  --faults "$FAULTS"
SERVER_PID="${CCP_SERVER_PIDS[${#CCP_SERVER_PIDS[@]}-1]}"
SERVER_LOG="${CCP_SERVER_LOGS[${#CCP_SERVER_LOGS[@]}-1]}"

# Numeric comparison helpers: counters render as integers but gauges
# render as '0.0' / '1.0', so string equality is not enough.
num_eq() { awk -v a="${1:-}" -v b="$2" 'BEGIN { exit (a+0 == b+0) ? 0 : 1 }'; }
num_gt0() { [[ -n "${1:-}" ]] && awk -v a="$1" 'BEGIN { exit (a+0 > 0) ? 0 : 1 }'; }

# POST /query as a tenant; echoes the HTTP status code.
post_as_tenant() {
  local tenant="$1" body="$2"
  if command -v curl >/dev/null 2>&1; then
    curl -s -o /dev/null -w '%{http_code}' -X POST \
      -H "X-CCP-Tenant: ${tenant}" --data "$body" "http://${ADDR}/query"
  else
    # wget exits non-zero on 4xx; read the status off --server-response.
    wget -q -O /dev/null --server-response \
      --header="X-CCP-Tenant: ${tenant}" --post-data="$body" \
      "http://${ADDR}/query" 2>&1 \
      | awk '/^  HTTP\// { code=$2 } END { print code }'
  fi
}

ccp_scrape "$ADDR" /stats "$WORK/stats.json"
grep -qF '"tenants"' "$WORK/stats.json" || {
  echo "/stats is missing the tenants section:" >&2
  cat "$WORK/stats.json" >&2
  exit 1
}
grep -qF '"reconciler":{"enabled":true' "$WORK/stats.json" || {
  echo "/stats says the reconciler is not running:" >&2
  cat "$WORK/stats.json" >&2
  exit 1
}

echo "== per-tenant quotas: tiny (quota 0) is rejected, alpha serves"
STATUS_TINY="$(post_as_tenant tiny '{"workload":"q1"}')"
STATUS_ALPHA="$(post_as_tenant alpha '{"workload":"q1"}')"
if [[ "$STATUS_TINY" != 429 ]]; then
  echo "tenant tiny (quota 0) got HTTP ${STATUS_TINY}, expected 429" >&2
  exit 1
fi
if [[ "$STATUS_ALPHA" != 200 ]]; then
  echo "tenant alpha (quota 8) got HTTP ${STATUS_ALPHA}, expected 200" >&2
  exit 1
fi
echo "   tiny -> 429, alpha -> 200"

echo "== bench-serve --tenant-mix alpha:50,beta:30,gamma:20 under '${FAULTS}': ${QPS} qps for ${SECS}s"
"$CCP" bench-serve --addr "$ADDR" --qps "$QPS" --duration "$SECS" \
  --concurrency 2 --max-error-pct 1 \
  --tenant-mix alpha:50,beta:30,gamma:20 # propagates the >=99% gate

# The reconciler must burn through the fault window (retries advance)
# and settle with zero failed groups: under permanent CLOSID scarcity
# every unsatisfiable group is fallback (shared class mask), which is
# degradation, not failure.
SETTLED=0
for _ in $(seq 1 100); do
  ccp_scrape "$ADDR" /metrics "$WORK/metrics.txt"
  RETRIED=$(ccp_metric "$WORK/metrics.txt" ccp_reconcile_retried_total)
  FAILED=$(ccp_metric "$WORK/metrics.txt" ccp_reconcile_failed_groups)
  if num_gt0 "$RETRIED" && num_eq "$FAILED" 0; then
    SETTLED=1
    break
  fi
  sleep 0.1
done
if [[ "$SETTLED" != 1 ]]; then
  echo "reconciler never settled (retried=${RETRIED:-?} failed=${FAILED:-?}):" >&2
  grep '^ccp_reconcile' "$WORK/metrics.txt" >&2 || true
  exit 1
fi
echo "   reconcile retried=${RETRIED}, failed_groups=0 after heal"

EXHAUSTED=$(ccp_metric "$WORK/metrics.txt" ccp_reconcile_exhausted)
FALLBACK=$(ccp_metric "$WORK/metrics.txt" ccp_reconcile_fallback_groups)
if ! num_eq "$EXHAUSTED" 1 || ! num_gt0 "$FALLBACK"; then
  echo "expected CLOSID exhaustion with class-sharing fallback, got exhausted=${EXHAUSTED:-?} fallback=${FALLBACK:-?}" >&2
  grep '^ccp_reconcile' "$WORK/metrics.txt" >&2 || true
  exit 1
fi
echo "   exhausted=1 with fallback_groups=${FALLBACK} on shared class masks"

# Every tenant's traffic is labelled in the scrape. The mix's oltp
# share (and reuse-predicted scan hits) are admitted as sensitive, so
# that family exists for every tenant regardless of reuse behaviour.
for tenant in alpha beta gamma; do
  SEEN=$(ccp_metric "$WORK/metrics.txt" \
    "ccp_server_tenant_requests_total{class=\"sensitive\",tenant=\"${tenant}\"}")
  if ! num_gt0 "$SEEN"; then
    echo "no labelled requests for tenant ${tenant} in /metrics" >&2
    exit 1
  fi
done
echo "   per-tenant request families present for alpha/beta/gamma"

ccp_assert_no_panics "$WORK/metrics.txt"
echo "   jobs_panicked = 0"

# Graceful shutdown must run the final sweep: the server's own exit log
# is the witness that zero ccp- groups outlive the process.
echo "== SIGINT shutdown: zero ccp- groups may remain"
kill -INT "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
if ! grep -qE 'reconcile shutdown sweep: removed [0-9]+ group\(s\), 0 ccp- group\(s\) remain' "$SERVER_LOG"; then
  echo "shutdown sweep did not report zero remaining ccp- groups:" >&2
  grep 'reconcile' "$SERVER_LOG" >&2 || cat "$SERVER_LOG" >&2
  exit 1
fi
echo "   shutdown sweep left 0 ccp- group(s)"

echo "tenant smoke OK"
