#!/usr/bin/env bash
# End-to-end smoke test for the networked service layer.
#
# Starts `ccp serve` on an ephemeral local port, drives it for a couple of
# seconds with `ccp bench-serve` over real sockets, then scrapes /metrics
# and /trace and fails on malformed or incomplete output:
#
#   * bench-serve must exit 0 (its own error-rate gate);
#   * /metrics must carry the server families and a per-CUID-class
#     llc-occupancy gauge for each of polluting/sensitive/mixed;
#   * /trace must be a valid Chrome trace-event JSON document with a
#     non-empty traceEvents array.
#
# Usage:
#   scripts/serve_smoke.sh [PORT]          # default: 19090
#
# Tunables (environment):
#   CCP_SMOKE_QPS        offered load (default 40)
#   CCP_SMOKE_SECS       bench duration in seconds (default 2)
#   CCP_SMOKE_PROFILE    cargo profile to build/run (default release)
#   CCP_SMOKE_ARTIFACTS  directory to receive server log + final
#                        /metrics when the script fails (for CI uploads)

set -euo pipefail

PORT="${1:-19090}"
ADDR="127.0.0.1:${PORT}"
QPS="${CCP_SMOKE_QPS:-40}"
SECS="${CCP_SMOKE_SECS:-2}"
PROFILE="${CCP_SMOKE_PROFILE:-release}"

cd "$(dirname "$0")/.."
. scripts/lib.sh

ccp_build "$PROFILE"
ccp_init

ccp_launch_server serve "$ADDR"

echo "== bench-serve: ${QPS} qps for ${SECS}s against ${ADDR}"
"$CCP" bench-serve --addr "$ADDR" --qps "$QPS" --duration "$SECS" --concurrency 2

echo "== scraping /metrics"
ccp_scrape "$ADDR" /metrics "$WORK/metrics.txt"
for needle in \
  'ccp_server_requests_total' \
  'ccp_executor_jobs_total' \
  'ccp_llc_occupancy_bytes{class="polluting"}' \
  'ccp_llc_occupancy_bytes{class="sensitive"}' \
  'ccp_llc_occupancy_bytes{class="mixed"}'; do
  if ! grep -qF "$needle" "$WORK/metrics.txt"; then
    echo "missing from /metrics: ${needle}" >&2
    exit 1
  fi
done
echo "   all expected families present ($(wc -l <"$WORK/metrics.txt") lines)"

# No worker thread may have died serving the load: a panicked job is a
# bug even when the request that triggered it got an error response.
ccp_assert_no_panics "$WORK/metrics.txt"
echo "   jobs_panicked = 0"

echo "== scraping /trace"
ccp_scrape "$ADDR" /trace "$WORK/trace.json"
python3 - "$WORK/trace.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
cats = {e.get("cat") for e in events if e.get("ph") != "M"}
for layer in ("server", "admission", "bind", "op", "query"):
    assert layer in cats, f"no {layer!r} spans in trace (got {sorted(filter(None, cats))})"
print(f"   valid Chrome trace JSON: {len(events)} events, layers {sorted(filter(None, cats))}")
PY

echo "serve smoke OK"
