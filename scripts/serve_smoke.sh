#!/usr/bin/env bash
# End-to-end smoke test for the networked service layer.
#
# Starts `ccp serve` on an ephemeral local port, drives it for a couple of
# seconds with `ccp bench-serve` over real sockets, then scrapes /metrics
# and /trace and fails on malformed or incomplete output:
#
#   * bench-serve must exit 0 (its own error-rate gate);
#   * /metrics must carry the server families and a per-CUID-class
#     llc-occupancy gauge for each of polluting/sensitive/mixed;
#   * /trace must be a valid Chrome trace-event JSON document with a
#     non-empty traceEvents array.
#
# Usage:
#   scripts/serve_smoke.sh [PORT]          # default: 19090
#
# Tunables (environment):
#   CCP_SMOKE_QPS       offered load (default 40)
#   CCP_SMOKE_SECS      bench duration in seconds (default 2)
#   CCP_SMOKE_PROFILE   cargo profile to build/run (default release)

set -euo pipefail

PORT="${1:-19090}"
ADDR="127.0.0.1:${PORT}"
QPS="${CCP_SMOKE_QPS:-40}"
SECS="${CCP_SMOKE_SECS:-2}"
PROFILE="${CCP_SMOKE_PROFILE:-release}"

cd "$(dirname "$0")/.."

if [[ "$PROFILE" == "release" ]]; then
  cargo build --release -q --bin ccp
  CCP=target/release/ccp
else
  cargo build -q --bin ccp
  CCP=target/debug/ccp
fi

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  [[ -n "$SERVER_PID" ]] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$CCP" serve --addr "$ADDR" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# Wait for the listener.
for _ in $(seq 1 50); do
  if (exec 3<>"/dev/tcp/127.0.0.1/${PORT}") 2>/dev/null; then
    break
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve exited early:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

echo "== bench-serve: ${QPS} qps for ${SECS}s against ${ADDR}"
"$CCP" bench-serve --addr "$ADDR" --qps "$QPS" --duration "$SECS" --concurrency 2

scrape() { # scrape PATH OUTFILE
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://${ADDR}$1" -o "$2"
  else
    wget -qO "$2" "http://${ADDR}$1"
  fi
}

echo "== scraping /metrics"
scrape /metrics "$WORK/metrics.txt"
for needle in \
  'ccp_server_requests_total' \
  'ccp_executor_jobs_total' \
  'ccp_llc_occupancy_bytes{class="polluting"}' \
  'ccp_llc_occupancy_bytes{class="sensitive"}' \
  'ccp_llc_occupancy_bytes{class="mixed"}'; do
  if ! grep -qF "$needle" "$WORK/metrics.txt"; then
    echo "missing from /metrics: ${needle}" >&2
    exit 1
  fi
done
echo "   all expected families present ($(wc -l <"$WORK/metrics.txt") lines)"

# No worker thread may have died serving the load: a panicked job is a
# bug even when the request that triggered it got an error response.
PANICKED=$(awk '/^ccp_executor_jobs_panicked_total/ { sum += $NF } END { print sum + 0 }' \
  "$WORK/metrics.txt")
if [[ "$PANICKED" != 0 ]]; then
  echo "jobs_panicked = ${PANICKED} (> 0): worker panics during smoke load" >&2
  exit 1
fi
echo "   jobs_panicked = 0"

echo "== scraping /trace"
scrape /trace "$WORK/trace.json"
python3 - "$WORK/trace.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
cats = {e.get("cat") for e in events if e.get("ph") != "M"}
for layer in ("server", "admission", "bind", "op", "query"):
    assert layer in cats, f"no {layer!r} spans in trace (got {sorted(filter(None, cats))})"
print(f"   valid Chrome trace JSON: {len(events)} events, layers {sorted(filter(None, cats))}")
PY

echo "serve smoke OK"
