#!/usr/bin/env bash
# Model-check stats gate for ccp-verify.
#
# Runs the verify harness suite with CCP_VERIFY_JSON pointed at a
# collection file, renders the per-harness exploration stats (schedules
# run, Mazurkiewicz traces, interleaving-space size, reduction ratio)
# into the job summary, and fails if any DPOR harness stopped pulling
# its weight: on a space larger than MIN_SPACE interleavings the
# reduction ratio must stay >= MIN_RATIO, otherwise the access
# annotations (or the reduction itself) have rotted.
#
# Usage:
#   scripts/verify_stats.sh
#
# Tunables (environment):
#   CCP_VERIFY_MIN_RATIO  minimum reduction ratio for DPOR harnesses
#                         on large spaces (default 2)
#   CCP_VERIFY_MIN_SPACE  spaces at or below this many interleavings
#                         are exempt from the ratio gate (default 1000)
#   CCP_VERIFY_DEEP       forwarded to the harnesses (10x budgets)

set -euo pipefail

MIN_RATIO="${CCP_VERIFY_MIN_RATIO:-2}"
MIN_SPACE="${CCP_VERIFY_MIN_SPACE:-1000}"

REPO_ROOT="$(git rev-parse --show-toplevel)"
cd "$REPO_ROOT"

WORK_DIR="$(mktemp -d)"
# A caller-provided CCP_VERIFY_JSON names where the raw stats lines
# land (the nightly job uploads them as an artifact); emit_stats
# appends, so start from a clean slate either way.
STATS="${CCP_VERIFY_JSON:-$WORK_DIR/verify.jsonl}"
: >"$STATS"
cleanup() { rm -rf "$WORK_DIR"; }
trap cleanup EXIT

SUMMARY="${GITHUB_STEP_SUMMARY:-/dev/null}"

echo "== verify: model-check harnesses (stats -> $STATS) =="
CCP_VERIFY_JSON="$STATS" cargo test -q -p ccp-verify

if [[ ! -s "$STATS" ]]; then
    # An empty stats file must never read as "nothing to gate": it means
    # the harnesses stopped emitting, so the ratio gate went blind.
    echo "verify stats: no CCP_VERIFY_JSON lines emitted — are the" >&2
    echo "harnesses still calling ccp_verify::emit_stats?" >&2
    echo "### Verify stats: FAILED — no CCP_VERIFY_JSON lines emitted" >>"$SUMMARY"
    exit 1
fi

STATUS=0
python3 - "$STATS" "$MIN_RATIO" "$MIN_SPACE" "$WORK_DIR/summary.md" <<'PY' || STATUS=$?
import json
import sys

stats_path, min_ratio, min_space = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
summary_path = sys.argv[4]

rows = []
failed = False
with open(stats_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        # Lines are `CCP_VERIFY_JSON {...}` when echoed, bare JSON when
        # appended to the file; accept both.
        if line.startswith("CCP_VERIFY_JSON "):
            line = line[len("CCP_VERIFY_JSON "):]
        rec = json.loads(line)
        gated = rec["mode"] == "dpor" and rec["interleavings"] > min_space
        verdict = "ok"
        if not rec["exhausted"]:
            verdict = "FAIL (space not exhausted)"
            failed = True
        elif gated and rec["reduction_ratio"] < min_ratio:
            verdict = f"FAIL (ratio < {min_ratio:g}x)"
            failed = True
        elif not gated:
            verdict = "ok (small space)" if rec["mode"] == "dpor" else "ok (ungated)"
        rows.append(
            (
                rec["harness"],
                rec["mode"],
                f'{rec["schedules"]}',
                f'{rec["traces_explored"]}',
                f'{rec["interleavings"]}',
                f'{rec["reduction_ratio"]:.1f}x',
                f'{rec["wall_ms"]:.1f}',
                verdict,
            )
        )
        print(
            f'{verdict:20s} {rec["harness"]:30s} {rec["mode"]:10s} '
            f'schedules={rec["schedules"]:<8} traces={rec["traces_explored"]:<8} '
            f'space={rec["interleavings"]:<12} ratio={rec["reduction_ratio"]:.1f}x'
        )

with open(summary_path, "w") as f:
    f.write("### Verify stats (model-check harnesses)\n\n")
    f.write(
        f"Gate: DPOR harnesses on spaces > {min_space} interleavings "
        f"must report a reduction ratio >= {min_ratio:g}x.\n\n"
    )
    f.write("| harness | mode | schedules | traces | interleavings | ratio | wall (ms) | verdict |\n")
    f.write("|---|---|---:|---:|---:|---:|---:|---|\n")
    for row in rows:
        f.write("| " + " | ".join(row) + " |\n")

sys.exit(1 if failed else 0)
PY
cat "$WORK_DIR/summary.md" >>"$SUMMARY"
if [[ $STATUS -ne 0 ]]; then
    exit "$STATUS"
fi
echo "== verify stats gate passed =="
