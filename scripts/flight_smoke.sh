#!/usr/bin/env bash
# End-to-end gate for the flight recorder and the continuous profiler.
#
# Phase 1 (timeline): an adaptive server on the fake resctrl backend is
# fed the scripted occupancy collapse; once the controller repartitions,
# a bench run drives load with a `/profile?seconds=2` window inside it,
# and `bench-serve --timeline-out` saves the recorder's `/timeline`.
# Asserts:
#
#   * the timeline carries >= 1 `repartition` event, with per-class
#     `ccp_llc_occupancy_bytes` points both before and after the event's
#     sequence number (the black box shows cause and effect);
#   * `/dashboard` is one self-contained HTML page — inline SVG, no
#     external reference of any kind;
#   * the collapsed profile has >= 1 stack through `ccp_engine` (the
#     build forces frame pointers so the handler's walk sees real
#     frames).
#
# Phase 2 (overhead): two otherwise identical servers — recorder on vs
# `--no-flight` — take the same A/B bench (with a background profile
# window over the recorder-on phase), and the recorder side's p95 must
# stay within 5% (+ absolute slack) of the recorder-off side.
#
# Usage:
#   scripts/flight_smoke.sh [PORT_FLIGHT] [PORT_BASE]   # 19390/19392
#
# Tunables (environment):
#   CCP_FLIGHT_QPS        offered load (default 40)
#   CCP_FLIGHT_SECS       bench duration per phase in seconds (default 3)
#   CCP_FLIGHT_PROFILE    cargo profile to build/run (default release)
#   CCP_AB_SLACK_US       absolute p95 slack in microseconds (default 2000)
#   CCP_SMOKE_ARTIFACTS   directory to receive logs + scrapes on failure

set -euo pipefail

PORT_FLIGHT="${1:-19390}"
PORT_BASE="${2:-19392}"
PORT_ON=$((PORT_BASE + 1))
PORT_OFF=$((PORT_BASE + 2))
QPS="${CCP_FLIGHT_QPS:-40}"
# Phase 1 drives harder: SIGPROF samples CPU time, so the profile
# assertion needs the engine actually burning cycles during the window.
PROF_QPS="${CCP_FLIGHT_PROF_QPS:-300}"
SECS="${CCP_FLIGHT_SECS:-3}"
PROFILE="${CCP_FLIGHT_PROFILE:-release}"
SLACK_US="${CCP_AB_SLACK_US:-2000}"
TRACE='sensitive:0.95x6,0.12;polluting:0.08;mixed:0.02'

cd "$(dirname "$0")/.."
. scripts/lib.sh

# The profiler's stack walk follows frame pointers; without this flag a
# release build keeps only the leaf frame and the engine-frame assertion
# below would be meaningless.
export RUSTFLAGS="${RUSTFLAGS:-} -Cforce-frame-pointers=yes"

ccp_build "$PROFILE"
ccp_init

ADDR_FLIGHT="127.0.0.1:${PORT_FLIGHT}"
ADDR_ON="127.0.0.1:${PORT_ON}"
ADDR_OFF="127.0.0.1:${PORT_OFF}"

# ---------------------------------------------------------------------------
# Phase 1: the recorder's story of an adaptive collapse.
# ---------------------------------------------------------------------------
# --no-reuse: with the artifact cache on, repeated bench queries become
# cache hits served off the connection threads and the engine pools go
# idle — leaving the CPU-time profiler nothing to sample.
ccp_launch_server flight "$ADDR_FLIGHT" --fake-resctrl --adaptive \
  --control-interval-ms 50 --monitor-interval-ms 50 --flight-interval-ms 100 \
  --occupancy-script "$TRACE" --no-reuse

echo "== waiting for the adaptive controller to repartition"
CONVERGED=0
for _ in $(seq 1 150); do
  if ccp_scrape "$ADDR_FLIGHT" /metrics "$WORK/flight.metrics.txt" 2>/dev/null; then
    REPARTS=$(ccp_metric "$WORK/flight.metrics.txt" ccp_control_repartitions_total)
    if [[ -n "$REPARTS" && "$REPARTS" != 0 ]]; then
      CONVERGED=1
      break
    fi
  fi
  sleep 0.1
done
if [[ "$CONVERGED" != 1 ]]; then
  echo "controller never repartitioned on the scripted trace:" >&2
  grep '^ccp_control' "$WORK/flight.metrics.txt" >&2 || true
  exit 1
fi
echo "   repartitions=${REPARTS}"

echo "== bench with a 2s profile window inside the load"
# The profile window must sit fully inside the bench: SIGPROF ticks on
# CPU time (10ms apiece), so sampling an idle ramp-up yields nothing.
"$CCP" bench-serve --addr "$ADDR_FLIGHT" \
  --qps "$PROF_QPS" --duration "$SECS" --concurrency 2 --max-error-pct 1 \
  --json-out "$WORK/bench.json" --timeline-out "$WORK/timeline.json" &
BENCH_PID=$!
sleep 0.6
ccp_scrape "$ADDR_FLIGHT" "/profile?seconds=2" "$WORK/profile.txt"
wait "$BENCH_PID"
# Sampling is probabilistic: with ~10 process-wide ticks per window a
# run can land them all on unregistered connection threads. Retry under
# fresh load before calling that a failure.
for attempt in 1 2; do
  [[ -s "$WORK/profile.txt" ]] && break
  echo "   profile empty (attempt ${attempt}); retrying under fresh load"
  "$CCP" bench-serve --addr "$ADDR_FLIGHT" \
    --qps "$PROF_QPS" --duration "$SECS" --concurrency 2 --max-error-pct 1 &
  BENCH_PID=$!
  sleep 0.6
  ccp_scrape "$ADDR_FLIGHT" "/profile?seconds=2" "$WORK/profile.txt"
  wait "$BENCH_PID"
done

echo "== checking the timeline black box"
python3 - "$WORK/timeline.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    tl = json.load(f)

events = tl["events"]
reparts = [e for e in events if e["kind"] == "repartition"]
assert reparts, f"no repartition event in the timeline; kinds: {[e['kind'] for e in events]}"
ev = reparts[0]

occ = {name: pts for name, pts in tl["series"].items()
       if name.startswith("ccp_llc_occupancy_bytes")}
assert occ, f"no occupancy series in the timeline; have: {sorted(tl['series'])[:10]}"
for name, pts in occ.items():
    seqs = [seq for seq, _ in pts]
    assert any(s < ev["seq"] for s in seqs) and any(s > ev["seq"] for s in seqs), (
        f"{name} lacks points around the repartition at seq {ev['seq']}: "
        f"seqs {seqs[:3]}..{seqs[-3:]}"
    )

ways = [name for name in tl["series"] if name.startswith("ccp_control_mask_ways")]
assert ways, "mask-way series missing from the timeline"
print(f"   repartition at seq {ev['seq']} ({ev['detail']}), "
      f"{len(occ)} occupancy series bracket it")
PY

echo "== checking the dashboard is self-contained"
ccp_scrape "$ADDR_FLIGHT" /dashboard "$WORK/dashboard.html"
python3 - "$WORK/dashboard.html" <<'PY'
import sys

with open(sys.argv[1]) as f:
    page = f.read().lower()
assert "<svg" in page, "dashboard has no inline SVG chart"
for forbidden in ("http", "src=", "url(", "@import", "<script", "<link"):
    assert forbidden not in page, f"dashboard references an external asset: {forbidden!r}"
print(f"   {len(page)} bytes, inline SVG, zero external references")
PY

echo "== checking the collapsed profile"
python3 - "$WORK/profile.txt" <<'PY'
import sys

with open(sys.argv[1]) as f:
    lines = [l for l in f.read().splitlines() if l.strip()]
assert lines, "profile window captured no samples"
for line in lines:
    stack, count = line.rsplit(" ", 1)
    assert stack and int(count) > 0, f"malformed collapsed line: {line!r}"
# An engine operator frame: a stack on one of the executor pool's
# threads passing through reproduction code (the operators themselves
# live in ccp_storage; the engine's glue inlines into closure shims).
pools = ("olap-worker", "oltp-worker", "job-worker")
engine = [l for l in lines
          if l.startswith(pools) and ("ccp_engine" in l or "ccp_storage" in l)]
assert engine, (
    "no engine-pool stack passes through reproduction code; top lines:\n"
    + "\n".join(lines[:10])
)
print(f"   {len(lines)} collapsed stacks, {len(engine)} operator stacks, "
      f"e.g. {engine[0][:110]}")
PY

# The bench report must carry the build it measured.
python3 - "$WORK/bench.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
build = doc.get("build")
assert build and build.get("version") and build.get("git_sha") and build.get("profile"), (
    f"bench report lacks build provenance: {build!r}"
)
print(f"   bench report built from {build['git_sha']} ({build['profile']})")
PY

ccp_assert_no_panics "$WORK/flight.metrics.txt"

# ---------------------------------------------------------------------------
# Phase 2: recorder + profiler overhead stays inside the 5% gate.
# ---------------------------------------------------------------------------
echo "== overhead A/B: recorder on vs --no-flight, ${QPS} qps for ${SECS}s each"
ccp_launch_server flight-on "$ADDR_ON" --fake-resctrl --flight-interval-ms 100
ccp_launch_server flight-off "$ADDR_OFF" --fake-resctrl --no-flight

# A 2s profile window over the recorder-on phase (phase A runs first),
# so the gate prices the profiler too, not just the recorder.
ccp_scrape "$ADDR_ON" "/profile?seconds=2" "$WORK/overhead.profile.txt" &
PROFILE_PID=$!
"$CCP" bench-serve --addr "$ADDR_ON" --ab-addr "$ADDR_OFF" \
  --qps "$QPS" --duration "$SECS" --concurrency 2 --max-error-pct 1 \
  --json-out "$WORK/overhead.json"
wait "$PROFILE_PID" || true

python3 - "$WORK/overhead.json" "$SLACK_US" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["mode"] == "ab", f"expected an A/B report, got {doc['mode']!r}"
# Phase A (--addr, labeled "static") is the recorder-on server; phase B
# (--ab-addr, labeled "adaptive") runs --no-flight.
on_p95 = doc["static"]["total"]["p95_us"]
off_p95 = doc["adaptive"]["total"]["p95_us"]
limit = off_p95 * 1.05 + int(sys.argv[2])
assert on_p95 <= limit, (
    f"recorder+profiler p95 {on_p95}us exceeds recorder-off {off_p95}us "
    f"(limit {limit:.0f}us)"
)
print(f"   recorder-on p95 {on_p95}us vs off {off_p95}us (limit {limit:.0f}us)")
PY

ccp_scrape "$ADDR_OFF" /metrics "$WORK/flight-off.metrics.txt"
ccp_assert_no_panics "$WORK/flight-off.metrics.txt"

echo "flight smoke OK"
