#!/usr/bin/env bash
# Probabilistic chaos soak against the adaptive controller.
#
# Unlike chaos_smoke.sh (a deterministic, bounded fault window), this
# soak arms *probabilistic* failpoints — every schemata write fails with
# 2% probability, every CAT bind and every controller apply with 1% —
# seeded so any failure reproduces exactly, and drives an adaptive
# server with bench-serve for CCP_SOAK_SECS (default 600s). The point is
# to shake out ordering bugs between the controller, the supervisor's
# breaker, and the query path that the scripted windows can't reach.
#
# Asserts at the end of the soak:
#
#   * the server is still alive and answering scrapes;
#   * >= CCP_SOAK_MIN_OK% of queries succeeded (default 95 — the faults
#     are probabilistic, so some in-flight queries legitimately error);
#   * the controller kept making decisions (decisions > 0) and every
#     revert had a matching recovery path (degraded is 0 or 1, never
#     stuck mid-transition, and the live mask stayed non-empty: a
#     panicked worker or a poisoned control thread would freeze both);
#   * zero worker panics.
#
# Usage:
#   scripts/chaos_soak.sh [PORT]           # default: 19490
#
# Tunables (environment):
#   CCP_SOAK_SECS        soak duration in seconds (default 600)
#   CCP_SOAK_QPS         offered load (default 40)
#   CCP_SOAK_SEED        failpoint RNG seed (default: derived from date)
#   CCP_SOAK_MIN_OK      minimum query success percentage (default 95)
#   CCP_SOAK_PROFILE     cargo profile to build/run (default release)
#   CCP_SMOKE_ARTIFACTS  directory to receive server log + final
#                        /metrics when the script fails (for CI uploads)

set -euo pipefail

PORT="${1:-19490}"
ADDR="127.0.0.1:${PORT}"
SECS="${CCP_SOAK_SECS:-600}"
QPS="${CCP_SOAK_QPS:-40}"
SEED="${CCP_SOAK_SEED:-$(date +%Y%m%d)}"
MIN_OK="${CCP_SOAK_MIN_OK:-95}"
PROFILE="${CCP_SOAK_PROFILE:-release}"
MAX_ERR_PCT=$((100 - MIN_OK))
TRACE='sensitive:0.95x6,0.12x6,0.95;polluting:0.08;mixed:0.02'
FAULTS="resctrl.write_schemata=err@p2s${SEED},engine.bind=err@p1s${SEED},control.apply=err@p1s${SEED}"

cd "$(dirname "$0")/.."
. scripts/lib.sh

ccp_build "$PROFILE"
ccp_init

echo "== chaos soak: seed=${SEED} plan='${FAULTS}' for ${SECS}s at ${QPS} qps"
ccp_launch_server soak "$ADDR" --fake-resctrl --adaptive \
  --control-interval-ms 50 --monitor-interval-ms 100 --reprobe-interval-ms 150 \
  --occupancy-script "$TRACE" --faults "$FAULTS"

"$CCP" bench-serve --addr "$ADDR" --qps "$QPS" --duration "$SECS" \
  --concurrency 2 --max-error-pct "$MAX_ERR_PCT" &
BENCH_PID=$!

# Liveness watchdog: the server process and its scrape endpoint must
# stay up for the entire soak; a wedged /metrics is a finding even when
# the queries still flow.
while kill -0 "$BENCH_PID" 2>/dev/null; do
  sleep 5
  if ! ccp_scrape "$ADDR" /metrics "$WORK/metrics.txt" 2>/dev/null; then
    echo "metrics scrape failed mid-soak" >&2
    kill "$BENCH_PID" 2>/dev/null || true
    exit 1
  fi
done
wait "$BENCH_PID" # propagates the bench success-rate gate

ccp_scrape "$ADDR" /metrics "$WORK/metrics.txt"
DECISIONS=$(ccp_metric "$WORK/metrics.txt" ccp_control_decisions_total)
REPARTS=$(ccp_metric "$WORK/metrics.txt" ccp_control_repartitions_total)
REVERTS=$(ccp_metric "$WORK/metrics.txt" ccp_control_reverts_total)
DEGRADED=$(ccp_metric "$WORK/metrics.txt" ccp_resctrl_degraded)
if [[ -z "$DECISIONS" || "$DECISIONS" == 0 ]]; then
  echo "controller stopped making decisions under chaos" >&2
  grep '^ccp_control' "$WORK/metrics.txt" >&2 || true
  exit 1
fi
if ! awk -v d="$DEGRADED" 'BEGIN { exit !(d == 0 || d == 1) }'; then
  echo "degraded gauge in an impossible state: '${DEGRADED}'" >&2
  exit 1
fi
SENS=$(ccp_metric "$WORK/metrics.txt" 'ccp_control_mask_ways{class="sensitive"}')
if ! awk -v s="$SENS" 'BEGIN { exit !(s != "" && s >= 1) }'; then
  echo "sensitive class left with an empty mask: '${SENS}'" >&2
  exit 1
fi
ccp_assert_no_panics "$WORK/metrics.txt"

echo "   decisions=${DECISIONS} repartitions=${REPARTS:-0} reverts=${REVERTS:-0}"
echo "   degraded=${DEGRADED} sensitive_ways=${SENS} jobs_panicked=0"
echo "chaos soak OK (seed=${SEED})"
