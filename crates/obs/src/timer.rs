//! [`ScopedTimer`]: records a wall-clock span into a [`Histogram`] on
//! drop.
//!
//! This is the idiom for latency instrumentation throughout the
//! workspace: start a timer where the span begins (job pickup, resctrl
//! syscall entry) and let scope exit — including early returns and
//! panics unwinding through worker threads — record the elapsed seconds.

use crate::histogram::Histogram;
use std::time::Instant;

/// Records elapsed seconds into a histogram when dropped.
#[derive(Debug)]
pub struct ScopedTimer {
    histogram: Histogram,
    start: Instant,
    armed: bool,
}

impl ScopedTimer {
    /// Starts timing now; the span ends (and records) on drop.
    pub fn new(histogram: Histogram) -> Self {
        ScopedTimer {
            histogram,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Seconds elapsed so far, without ending the span.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Ends the span now and records it, consuming the timer. Returns
    /// the recorded seconds.
    pub fn stop(mut self) -> f64 {
        let secs = self.elapsed_seconds();
        self.histogram.observe(secs);
        self.armed = false;
        secs
    }

    /// Abandons the span without recording anything (e.g. the guarded
    /// operation turned out to be a cache hit that should not pollute
    /// the latency distribution).
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_one_observation() {
        let h = Histogram::latency();
        {
            let _t = ScopedTimer::new(h.clone());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.002);
    }

    #[test]
    fn stop_records_and_returns_elapsed() {
        let h = Histogram::latency();
        let t = ScopedTimer::new(h.clone());
        let secs = t.stop();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - secs).abs() < 1e-12);
    }

    #[test]
    fn discard_records_nothing() {
        let h = Histogram::latency();
        ScopedTimer::new(h.clone()).discard();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn unwinding_still_records() {
        let h = Histogram::latency();
        let h2 = h.clone();
        let _ = std::panic::catch_unwind(move || {
            let _t = ScopedTimer::new(h2);
            panic!("boom");
        });
        assert_eq!(h.count(), 1);
    }
}
