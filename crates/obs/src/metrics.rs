//! Scalar metric primitives: [`Counter`] and [`Gauge`].
//!
//! Both are cheap to clone (`Arc` inside) and safe to update from any
//! thread without locks, so hot paths — the executor's per-job
//! accounting, the resctrl driver's syscall counts — can publish
//! unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ORDERING: monotone statistics counter; no other state is
        // published alongside it, so relaxed suffices.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: relaxed snapshot of a monotone counter.
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time `f64` value (queue depths, occupancy bytes,
/// throughput). Stored as bit-cast `u64` so updates stay lock-free.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        // ORDERING: last-writer-wins gauge store; readers only want the
        // latest value, never ordering against other memory.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (atomic read-modify-write).
    pub fn add(&self, delta: f64) {
        // ORDERING: relaxed CAS loop; failure re-reads the live value,
        // so only atomicity of the read-modify-write is required.
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                // ORDERING: success/failure both relaxed — the retry
                // re-reads the live value, so atomicity is all we need.
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // ORDERING: single-word relaxed read of the gauge; no tearing.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c2.add(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        g.set(1.5);
        g.add(2.0);
        g.sub(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn concurrent_gauge_adds_are_lost_update_free() {
        let g = Gauge::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        g.add(1.0);
                    }
                });
            }
        });
        assert!((g.get() - 40_000.0).abs() < 1e-9);
    }
}
