//! Log-linear histograms with lock-free recording and quantile
//! estimation.
//!
//! Buckets are **log-linear**: the positive axis is cut into powers of
//! two (octaves), and every octave is subdivided into a fixed number of
//! equal-width linear buckets. That bounds the relative quantile error
//! by `1 / subdivisions` per octave while keeping the bucket count small
//! enough to render in a Prometheus exposition (a latency histogram
//! spanning 1 µs … 16 s at 4 subdivisions is ~100 buckets).
//!
//! Recording is an atomic increment on one bucket plus an atomic `f64`
//! sum update — no locks, so job workers can record latencies at full
//! rate. Quantiles are computed from a [`HistogramSnapshot`] using
//! linear interpolation inside the selected bucket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket layout of a log-linear histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSpec {
    /// Lowest octave: first finite bucket upper bound is `2^min_exp`.
    pub min_exp: i32,
    /// Highest octave: last finite bucket upper bound is `2^max_exp`.
    pub max_exp: i32,
    /// Linear subdivisions per octave (≥ 1).
    pub subdivisions: u32,
}

impl BucketSpec {
    /// Validates and materializes the finite bucket upper bounds, in
    /// increasing order. Values above the last bound land in the
    /// overflow (`+Inf`) bucket.
    fn bounds(&self) -> Vec<f64> {
        assert!(self.min_exp < self.max_exp, "empty octave range");
        assert!(self.subdivisions >= 1, "need at least one subdivision");
        let mut out = Vec::new();
        // First octave's lower edge: 2^min_exp; everything below it lands
        // in the first bucket.
        for exp in self.min_exp..self.max_exp {
            let lo = 2f64.powi(exp);
            let hi = 2f64.powi(exp + 1);
            let step = (hi - lo) / f64::from(self.subdivisions);
            for i in 1..=self.subdivisions {
                out.push(lo + step * f64::from(i));
            }
        }
        out
    }
}

/// Common bucket layouts.
pub mod unit {
    use super::BucketSpec;

    /// Latency in seconds: ~1 µs to ~16 s, 4 subdivisions per octave.
    pub fn latency_seconds() -> BucketSpec {
        BucketSpec {
            min_exp: -20,
            max_exp: 4,
            subdivisions: 4,
        }
    }

    /// Dimensionless small counts: 1 to ~4096, 2 subdivisions.
    pub fn small_counts() -> BucketSpec {
        BucketSpec {
            min_exp: 0,
            max_exp: 12,
            subdivisions: 2,
        }
    }
}

#[derive(Debug)]
struct Inner {
    bounds: Vec<f64>,
    /// One counter per finite bucket plus the trailing overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// A concurrent log-linear histogram. Cloning shares the same buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Histogram {
    /// Creates a histogram with the given bucket layout.
    pub fn new(spec: BucketSpec) -> Self {
        let bounds = spec.bounds();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(Inner {
                bounds,
                counts,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a latency histogram (seconds, ~1 µs … ~16 s).
    pub fn latency() -> Self {
        Histogram::new(unit::latency_seconds())
    }

    /// Records one observation. Negative or NaN values are clamped to 0
    /// (they would otherwise corrupt the sum).
    pub fn observe(&self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let idx = self.inner.bounds.partition_point(|&b| b < v);
        // ORDERING: the three fields below are independent monotone
        // statistics; scrapers tolerate (and the exposition format
        // expects) bucket/count/sum skew of a few in-flight records,
        // so no release pairing is needed between them.
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 accumulation (CAS loop, like Gauge::add).
        // ORDERING: relaxed CAS is sound because the loop re-reads the
        // actual value on failure; only atomicity of the f64 add matters.
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                // ORDERING: success/failure both relaxed — the retry
                // re-reads the live value, so atomicity is all we need.
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        // ORDERING: relaxed snapshot of a monotone counter.
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        // ORDERING: relaxed read of an independently-updated cell; the
        // value is complete in one word, so no tearing is possible.
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Consistent-enough point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self
                .inner
                .counts
                .iter()
                // ORDERING: per-bucket relaxed loads; concurrent observes
                // may land between buckets, which scrape semantics allow.
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
        }
    }

    /// Convenience quantile on a fresh snapshot (`q` in `0..=1`).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// Point-in-time view of a histogram, for quantiles and exposition.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
}

impl HistogramSnapshot {
    /// Finite bucket upper bounds (the exposition's `le` values, minus
    /// the trailing `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than [`bounds`](Self::bounds) (the
    /// last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of observations in the snapshot.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// The observations recorded in `self` but not yet in `prev`:
    /// per-bucket saturating subtraction plus a clamped sum delta.
    ///
    /// This is the windowed view a periodic sampler needs — two
    /// cumulative snapshots of the *same* histogram bracket an interval,
    /// and the delta's [`quantile`](Self::quantile) describes only the
    /// observations that landed inside it. Snapshots with a different
    /// bucket layout (a histogram replaced under the same name) fall
    /// back to `self` unchanged, treating everything as new.
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        if self.bounds != prev.bounds || self.counts.len() != prev.counts.len() {
            return self.clone();
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&prev.counts)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            sum: (self.sum - prev.sum).max(0.0),
        }
    }

    /// Quantile estimate (`q` in `0..=1`) by linear interpolation inside
    /// the bucket holding the target rank. Returns 0 on an empty
    /// histogram; the overflow bucket reports its lower bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        // Rank of the target observation, 1-based ceiling like Prometheus.
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let Some(&hi) = self.bounds.get(i) else {
                    return lo; // overflow bucket: best effort
                };
                let into = (rank - seen) as f64 / c as f64;
                return lo + (hi - lo) * into;
            }
            seen += c;
        }
        *self.bounds.last().unwrap_or(&0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_increasing_and_log_linear() {
        let spec = BucketSpec {
            min_exp: 0,
            max_exp: 3,
            subdivisions: 2,
        };
        let b = spec.bounds();
        // Octaves [1,2],[2,4],[4,8] at 2 subdivisions each.
        assert_eq!(b, vec![1.5, 2.0, 3.0, 4.0, 6.0, 8.0]);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn observe_places_values_in_right_buckets() {
        let h = Histogram::new(BucketSpec {
            min_exp: 0,
            max_exp: 3,
            subdivisions: 2,
        });
        h.observe(1.2); // -> first bucket (<= 1.5)
        h.observe(5.0); // -> bucket (4,6]
        h.observe(100.0); // -> overflow
        let s = h.snapshot();
        assert_eq!(s.counts()[0], 1);
        assert_eq!(s.counts()[4], 1);
        assert_eq!(*s.counts().last().unwrap(), 1);
        assert_eq!(s.count(), 3);
        assert!((s.sum() - 106.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new(BucketSpec {
            min_exp: -10,
            max_exp: 10,
            subdivisions: 4,
        });
        for i in 1..=1000 {
            h.observe(i as f64 / 1000.0); // uniform on (0, 1]
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!((0.4..0.62).contains(&p50), "p50={p50}");
        assert!((0.85..1.1).contains(&p95), "p95={p95}");
        assert!((0.9..1.15).contains(&p99), "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn negative_and_nan_are_clamped() {
        let h = Histogram::latency();
        h.observe(-1.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.snapshot().counts()[0], 2);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::latency();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    /// With `s` subdivisions per octave, a bucket spans at most a factor
    /// of `(1 + 1/s)` in value, so a quantile estimate can be off by at
    /// most that relative factor (plus rank granularity on small n).
    fn assert_close(est: f64, truth: f64, subdivisions: u32, what: &str) {
        let rel = 1.0 / f64::from(subdivisions);
        assert!(
            (est - truth).abs() <= rel * truth + f64::EPSILON,
            "{what}: estimate {est} vs truth {truth} (allowed rel {rel})"
        );
    }

    #[test]
    fn quantiles_match_exponential_distribution() {
        // Deterministic exponential stream via the inverse CDF:
        // x_i = -mean * ln(1 - u_i) for u_i uniform on (0, 1).
        let spec = BucketSpec {
            min_exp: -10,
            max_exp: 10,
            subdivisions: 8,
        };
        let h = Histogram::new(spec);
        let mean = 2.0;
        let n = 20_000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            h.observe(-mean * (1.0 - u).ln());
        }
        let s = h.snapshot();
        // Exponential quantile function: Q(q) = -mean * ln(1 - q).
        for q in [0.5f64, 0.9, 0.95, 0.99] {
            let truth = -mean * (1.0 - q).ln();
            assert_close(s.quantile(q), truth, spec.subdivisions, "exponential");
        }
    }

    #[test]
    fn quantiles_match_deterministic_uniform_stream() {
        let spec = BucketSpec {
            min_exp: -4,
            max_exp: 12,
            subdivisions: 8,
        };
        let h = Histogram::new(spec);
        for i in 1..=10_000 {
            h.observe(i as f64 / 10.0); // uniform on (0, 1000]
        }
        let s = h.snapshot();
        for (q, truth) in [(0.25, 250.0), (0.5, 500.0), (0.75, 750.0), (0.99, 990.0)] {
            assert_close(s.quantile(q), truth, spec.subdivisions, "uniform");
        }
        // Extremes stay inside the observed range.
        assert!(s.quantile(0.0) >= 0.0);
        assert!(s.quantile(1.0) <= 1000.0 * (1.0 + 1.0 / 8.0));
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let spec = BucketSpec {
            min_exp: -10,
            max_exp: 10,
            subdivisions: 8,
        };
        let h = Histogram::new(spec);
        // Phase A: slow observations around 4.0.
        for _ in 0..1000 {
            h.observe(4.0);
        }
        let prev = h.snapshot();
        // Phase B: fast observations around 0.25.
        for _ in 0..1000 {
            h.observe(0.25);
        }
        let delta = h.snapshot().delta_since(&prev);
        assert_eq!(delta.count(), 1000);
        assert!((delta.sum() - 250.0).abs() < 1e-6);
        // The windowed p95 sees only phase B, not the slow history.
        assert_close(delta.quantile(0.95), 0.25, spec.subdivisions, "delta p95");
        // The cumulative snapshot still reflects both phases.
        assert!(h.quantile(0.95) > 3.0);
    }

    #[test]
    fn delta_since_empty_window_is_empty() {
        let h = Histogram::latency();
        h.observe(0.5);
        let prev = h.snapshot();
        let delta = h.snapshot().delta_since(&prev);
        assert_eq!(delta.count(), 0);
        assert_eq!(delta.sum(), 0.0);
        assert_eq!(delta.quantile(0.95), 0.0);
    }

    #[test]
    fn delta_since_layout_mismatch_falls_back_to_self() {
        let a = Histogram::new(BucketSpec {
            min_exp: 0,
            max_exp: 3,
            subdivisions: 2,
        });
        let b = Histogram::latency();
        a.observe(1.0);
        a.observe(2.0);
        let delta = a.snapshot().delta_since(&b.snapshot());
        assert_eq!(delta.count(), 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new(BucketSpec {
            min_exp: -4,
            max_exp: 8,
            subdivisions: 4,
        });
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.observe(((t * 10_000 + i) % 200) as f64 + 0.5);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count(), 80_000);
        assert_eq!(h.count(), 80_000);
        // Sum of 400 copies of (0.5 + 1.5 + ... + 199.5).
        let expected = 400.0 * (0..200).map(|v| v as f64 + 0.5).sum::<f64>();
        assert!((s.sum() - expected).abs() < 1e-6 * expected);
        // Quantiles of the uniform 0.5..199.5 distribution survive the
        // concurrent recording: with 4 subdivisions per octave the bucket
        // resolution is ~19%, so allow that much slack around the truth.
        for (q, truth) in [(0.5, 100.0), (0.95, 190.0), (0.99, 198.0)] {
            let est = s.quantile(q);
            assert!(
                (est - truth).abs() <= 0.25 * truth,
                "p{} estimate {est} too far from {truth}",
                q * 100.0
            );
        }
        // Quantiles are monotone in q.
        assert!(s.quantile(0.5) <= s.quantile(0.95));
        assert!(s.quantile(0.95) <= s.quantile(0.99));
    }
}
