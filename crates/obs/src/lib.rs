//! # ccp-obs
//!
//! The workspace's observability core: lock-free metric primitives, a
//! process-wide registry, and Prometheus text-format exposition — with
//! **zero dependencies**, so every crate (engine, resctrl driver,
//! workload harness) can afford to be instrumented unconditionally.
//!
//! The paper's whole argument rests on *measuring* cache interference
//! (CMT/MBM occupancy, the sub-100 µs mask-switch overhead, normalized
//! throughput); LFOC and Com-CAS (see PAPERS.md) both show that
//! lightweight *online* monitoring is what turns static partitioning
//! into a policy loop. This crate is that telemetry spine: the executor,
//! scheduler, resctrl controller and native workload driver all publish
//! through it, and the bench harness and any future serving front end
//! scrape identical families.
//!
//! ## Primitives
//!
//! * [`Counter`] — monotone `u64`, lock-free.
//! * [`Gauge`] — `f64` point-in-time value, lock-free (bit-cast CAS).
//! * [`Histogram`] — log-linear buckets (powers of two, linearly
//!   subdivided), lock-free recording, p50/p95/p99 quantile estimates.
//! * [`ScopedTimer`] — records a latency span into a histogram on drop.
//! * [`Family`] — a metric name fanned out over label sets.
//! * [`Registry`] — owns families, renders the Prometheus text format.
//!
//! ## Example
//!
//! ```
//! use ccp_obs::{Registry, unit};
//!
//! let registry = Registry::new();
//! let jobs = registry.counter_family("jobs_total", "Jobs executed");
//! jobs.get_or_create(&[("class", "polluting")]).inc();
//!
//! let latency = registry.histogram_family_with(
//!     "job_seconds", "Job latency", unit::latency_seconds(),
//! );
//! {
//!     let _t = ccp_obs::ScopedTimer::new(
//!         latency.get_or_create(&[("class", "polluting")]),
//!     );
//!     // ... timed work ...
//! }
//! let text = registry.render_prometheus();
//! assert!(text.contains("jobs_total{class=\"polluting\"} 1"));
//! ```

mod histogram;
mod metrics;
mod registry;
mod timer;

pub use histogram::{unit, BucketSpec, Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use registry::{Family, FamilySample, Labels, MetricSample, Registry};
pub use timer::ScopedTimer;
