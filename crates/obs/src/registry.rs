//! Metric families and the process-wide [`Registry`].
//!
//! A [`Family`] is one metric name fanned out over label sets (e.g.
//! `ccp_executor_jobs_total{class="polluting"}`). The [`Registry`] owns
//! families by name and renders everything in the Prometheus text
//! exposition format, so a scrape endpoint or the `metrics_dump`
//! example can serve/print the whole process state in one call.
//!
//! Families are idempotent: asking twice for the same name returns the
//! same family, and instruments already held elsewhere (an executor's
//! private counters) can be attached under a label set with
//! [`Family::register`] — the registry then renders the live handle.

use crate::histogram::{BucketSpec, Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

/// A label set: `(key, value)` pairs, sorted by key on creation.
pub type Labels = Vec<(String, String)>;

fn normalize(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, s)| (k.to_string(), s.to_string()))
        .collect();
    v.sort();
    v
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct FamilyInner<T> {
    name: String,
    help: String,
    make: Box<dyn Fn() -> T + Send + Sync>,
    metrics: Mutex<BTreeMap<Labels, T>>,
}

/// One metric name fanned out over label sets. Cloning shares the
/// family; metrics handed out by [`get_or_create`](Family::get_or_create)
/// share state with the registry's copy.
pub struct Family<T> {
    inner: Arc<FamilyInner<T>>,
}

impl<T> Clone for Family<T> {
    fn clone(&self) -> Self {
        Family {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for Family<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family")
            .field("name", &self.inner.name)
            .finish()
    }
}

impl<T: Clone> Family<T> {
    fn new(name: &str, help: &str, make: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Family {
            inner: Arc::new(FamilyInner {
                name: name.to_string(),
                help: help.to_string(),
                make: Box::new(make),
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Metric name of this family.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Returns the metric for `labels`, creating it on first use. The
    /// returned handle shares state with the family, so it can be moved
    /// into a hot path and updated without further lookups.
    pub fn get_or_create(&self, labels: &[(&str, &str)]) -> T {
        let key = normalize(labels);
        let mut map = lock(&self.inner.metrics);
        map.entry(key)
            .or_insert_with(|| (self.inner.make)())
            .clone()
    }

    /// Attaches an existing metric handle under `labels`, replacing any
    /// previous metric there. This lets a component keep private
    /// instruments (isolated per instance) and expose them through a
    /// registry only when asked.
    pub fn register(&self, labels: &[(&str, &str)], metric: T) {
        lock(&self.inner.metrics).insert(normalize(labels), metric);
    }

    /// Point-in-time copy of all (labels, metric) pairs, sorted by label
    /// set.
    pub fn collect(&self) -> Vec<(Labels, T)> {
        lock(&self.inner.metrics)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[derive(Clone)]
enum AnyFamily {
    Counter(Family<Counter>),
    Gauge(Family<Gauge>),
    Histogram(Family<Histogram>),
}

/// One sampled metric value, as captured by [`Registry::sample_all`].
///
/// Counters keep their integer nature, gauges their float one, and
/// histograms carry the full bucket snapshot so consumers can take
/// windowed deltas ([`HistogramSnapshot::delta_since`]) and proper
/// quantiles ([`HistogramSnapshot::quantile`]) instead of re-deriving
/// them from rendered text.
#[derive(Debug, Clone)]
pub enum MetricSample {
    /// A monotone counter's current value.
    Counter(u64),
    /// A gauge's point-in-time value.
    Gauge(f64),
    /// A histogram's full bucket snapshot.
    Histogram(HistogramSnapshot),
}

/// All label sets of one family, sampled at one instant.
#[derive(Debug, Clone)]
pub struct FamilySample {
    /// The metric family name.
    pub name: String,
    /// `(labels, value)` pairs, sorted by label set.
    pub samples: Vec<(Labels, MetricSample)>,
}

impl AnyFamily {
    fn kind(&self) -> &'static str {
        match self {
            AnyFamily::Counter(_) => "counter",
            AnyFamily::Gauge(_) => "gauge",
            AnyFamily::Histogram(_) => "histogram",
        }
    }
}

/// Owns metric families and renders the Prometheus text format.
/// Cloning shares the registry.
#[derive(Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, AnyFamily>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = lock(&self.families).keys().cloned().collect();
        f.debug_struct("Registry")
            .field("families", &names)
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn family_or_insert<T: Clone>(
        &self,
        name: &str,
        entry: impl FnOnce() -> AnyFamily,
        extract: impl Fn(&AnyFamily) -> Option<Family<T>>,
        want: &'static str,
    ) -> Family<T> {
        let mut map = lock(&self.families);
        let fam = map.entry(name.to_string()).or_insert_with(entry);
        extract(fam).unwrap_or_else(|| {
            panic!(
                "metric family {name:?} already registered as a {}, wanted {want}",
                fam.kind()
            )
        })
    }

    /// Registers (or returns the existing) counter family.
    pub fn counter_family(&self, name: &str, help: &str) -> Family<Counter> {
        let fam = Family::new(name, help, Counter::new);
        self.family_or_insert(
            name,
            move || AnyFamily::Counter(fam),
            |f| match f {
                AnyFamily::Counter(f) => Some(f.clone()),
                _ => None,
            },
            "counter",
        )
    }

    /// Registers (or returns the existing) gauge family.
    pub fn gauge_family(&self, name: &str, help: &str) -> Family<Gauge> {
        let fam = Family::new(name, help, Gauge::new);
        self.family_or_insert(
            name,
            move || AnyFamily::Gauge(fam),
            |f| match f {
                AnyFamily::Gauge(f) => Some(f.clone()),
                _ => None,
            },
            "gauge",
        )
    }

    /// Registers (or returns the existing) histogram family with the
    /// default latency bucket layout.
    pub fn histogram_family(&self, name: &str, help: &str) -> Family<Histogram> {
        self.histogram_family_with(name, help, crate::histogram::unit::latency_seconds())
    }

    /// Registers (or returns the existing) histogram family with an
    /// explicit bucket layout. The layout only applies to metrics the
    /// family creates; pre-built handles attached via
    /// [`Family::register`] keep their own.
    pub fn histogram_family_with(
        &self,
        name: &str,
        help: &str,
        spec: BucketSpec,
    ) -> Family<Histogram> {
        let fam = Family::new(name, help, move || Histogram::new(spec));
        self.family_or_insert(
            name,
            move || AnyFamily::Histogram(fam),
            |f| match f {
                AnyFamily::Histogram(f) => Some(f.clone()),
                _ => None,
            },
            "histogram",
        )
    }

    /// Samples every family programmatically, in name order — the
    /// machine-readable sibling of [`render_prometheus`]
    /// (`Self::render_prometheus`). This is what a periodic recorder
    /// (the `ccp-flight` ring TSDB) consumes: typed values instead of
    /// text, with histogram snapshots intact for windowed quantiles.
    pub fn sample_all(&self) -> Vec<FamilySample> {
        let families: Vec<(String, AnyFamily)> = lock(&self.families)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        families
            .into_iter()
            .map(|(name, fam)| {
                let samples = match fam {
                    AnyFamily::Counter(f) => f
                        .collect()
                        .into_iter()
                        .map(|(l, c)| (l, MetricSample::Counter(c.get())))
                        .collect(),
                    AnyFamily::Gauge(f) => f
                        .collect()
                        .into_iter()
                        .map(|(l, g)| (l, MetricSample::Gauge(g.get())))
                        .collect(),
                    AnyFamily::Histogram(f) => f
                        .collect()
                        .into_iter()
                        .map(|(l, h)| (l, MetricSample::Histogram(h.snapshot())))
                        .collect(),
                };
                FamilySample { name, samples }
            })
            .collect()
    }

    /// Renders every family in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, one sample line per label set;
    /// histograms expand to cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`). Families render in name order, label sets
    /// in label order, so output is deterministic and diffable.
    pub fn render_prometheus(&self) -> String {
        let families: Vec<(String, AnyFamily)> = lock(&self.families)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut out = String::new();
        for (name, fam) in families {
            match &fam {
                AnyFamily::Counter(f) => {
                    header(&mut out, &name, &f.inner.help, "counter");
                    for (labels, c) in f.collect() {
                        let _ = writeln!(out, "{name}{} {}", label_str(&labels), c.get());
                    }
                }
                AnyFamily::Gauge(f) => {
                    header(&mut out, &name, &f.inner.help, "gauge");
                    for (labels, g) in f.collect() {
                        let _ = writeln!(out, "{name}{} {}", label_str(&labels), fmt_f64(g.get()));
                    }
                }
                AnyFamily::Histogram(f) => {
                    header(&mut out, &name, &f.inner.help, "histogram");
                    for (labels, h) in f.collect() {
                        render_histogram(&mut out, &name, &labels, &h);
                    }
                }
            }
        }
        out
    }
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {}", help.replace('\n', " "));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_str(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Extra `le` label appended to a (possibly empty) label set.
fn label_str_with_le(labels: &Labels, le: &str) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    body.push(format!("le=\"{le}\""));
    format!("{{{}}}", body.join(","))
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // "3.0" not "3": keeps gauges visibly floats
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &Labels, h: &Histogram) {
    let snap = h.snapshot();
    let mut cumulative = 0u64;
    for (i, &c) in snap.counts().iter().enumerate() {
        cumulative += c;
        let le = match snap.bounds().get(i) {
            Some(b) => format!("{b}"),
            None => "+Inf".to_string(),
        };
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_str_with_le(labels, &le)
        );
    }
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        label_str(labels),
        fmt_f64(snap.sum())
    );
    let _ = writeln!(out, "{name}_count{} {cumulative}", label_str(labels));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::unit;

    #[test]
    fn counter_family_round_trips() {
        let r = Registry::new();
        let jobs = r.counter_family("jobs_total", "Jobs executed");
        jobs.get_or_create(&[("class", "polluting")]).add(3);
        jobs.get_or_create(&[("class", "sensitive")]).inc();
        // Same labels -> same underlying counter.
        jobs.get_or_create(&[("class", "polluting")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("# HELP jobs_total Jobs executed"));
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total{class=\"polluting\"} 4"));
        assert!(text.contains("jobs_total{class=\"sensitive\"} 1"));
    }

    #[test]
    fn family_requests_are_idempotent() {
        let r = Registry::new();
        let a = r.counter_family("x_total", "X");
        let b = r.counter_family("x_total", "X");
        a.get_or_create(&[]).inc();
        assert_eq!(b.get_or_create(&[]).get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter_family("x_total", "X");
        r.gauge_family("x_total", "X");
    }

    #[test]
    fn register_attaches_existing_handles() {
        let r = Registry::new();
        let private = Counter::new();
        private.add(7);
        let fam = r.counter_family("pool_jobs_total", "Jobs per pool");
        fam.register(&[("pool", "olap")], private.clone());
        private.inc(); // live handle: updates show up in the render
        assert!(r
            .render_prometheus()
            .contains("pool_jobs_total{pool=\"olap\"} 8"));
    }

    #[test]
    fn labels_are_sorted_and_escaped() {
        let r = Registry::new();
        let f = r.gauge_family("g", "G");
        f.get_or_create(&[("b", "x\"y\\z"), ("a", "1")]).set(2.5);
        let text = r.render_prometheus();
        assert!(
            text.contains("g{a=\"1\",b=\"x\\\"y\\\\z\"} 2.5"),
            "got: {text}"
        );
    }

    #[test]
    fn unlabeled_metrics_render_bare() {
        let r = Registry::new();
        r.counter_family("total", "T").get_or_create(&[]).add(5);
        assert!(r.render_prometheus().contains("\ntotal 5\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let f = r.histogram_family_with(
            "lat_seconds",
            "Latency",
            crate::BucketSpec {
                min_exp: 0,
                max_exp: 2,
                subdivisions: 1,
            },
        );
        let h = f.get_or_create(&[("op", "scan")]);
        h.observe(1.5); // bucket le=2
        h.observe(3.0); // bucket le=4
        h.observe(9.0); // +Inf
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{op=\"scan\",le=\"2\"} 1"));
        assert!(text.contains("lat_seconds_bucket{op=\"scan\",le=\"4\"} 2"));
        assert!(text.contains("lat_seconds_bucket{op=\"scan\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_sum{op=\"scan\"} 13.5"));
        assert!(text.contains("lat_seconds_count{op=\"scan\"} 3"));
    }

    #[test]
    fn default_histogram_layout_is_latency() {
        let r = Registry::new();
        let f = r.histogram_family("h_seconds", "H");
        let h = f.get_or_create(&[]);
        assert_eq!(
            h.snapshot().bounds().len(),
            Histogram::new(unit::latency_seconds())
                .snapshot()
                .bounds()
                .len()
        );
    }

    #[test]
    fn sample_all_returns_typed_values() {
        let r = Registry::new();
        r.counter_family("jobs_total", "J")
            .get_or_create(&[("class", "polluting")])
            .add(7);
        r.gauge_family("depth", "D").get_or_create(&[]).set(3.5);
        let h = r.histogram_family("lat_seconds", "L").get_or_create(&[]);
        h.observe(0.01);
        h.observe(0.02);
        let samples = r.sample_all();
        let names: Vec<&str> = samples.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["depth", "jobs_total", "lat_seconds"]);
        match &samples[1].samples[0] {
            (labels, MetricSample::Counter(7)) => {
                assert_eq!(labels[0], ("class".to_string(), "polluting".to_string()));
            }
            other => panic!("unexpected counter sample: {other:?}"),
        }
        match &samples[0].samples[0].1 {
            MetricSample::Gauge(v) => assert_eq!(*v, 3.5),
            other => panic!("unexpected gauge sample: {other:?}"),
        }
        match &samples[2].samples[0].1 {
            MetricSample::Histogram(snap) => assert_eq!(snap.count(), 2),
            other => panic!("unexpected histogram sample: {other:?}"),
        }
    }

    #[test]
    fn families_render_in_name_order() {
        let r = Registry::new();
        r.counter_family("z_total", "Z").get_or_create(&[]).inc();
        r.counter_family("a_total", "A").get_or_create(&[]).inc();
        let text = r.render_prometheus();
        let a = text.find("# TYPE a_total").unwrap();
        let z = text.find("# TYPE z_total").unwrap();
        assert!(a < z);
    }
}
