//! Criterion microbenchmarks for the execution engine: job dispatch
//! overhead (with and without mask switching) and the partition policy's
//! mask derivation. Dispatch latency matters because the paper's
//! integration point is per-job: a slow path here would tax short OLTP
//! statements.

use ccp_cachesim::HierarchyConfig;
use ccp_engine::alloc::NoopAllocator;
use ccp_engine::job::{CacheUsageClass, Job};
use ccp_engine::partition::PartitionPolicy;
use ccp_engine::JobExecutor;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn policy() -> PartitionPolicy {
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes)
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/dispatch");
    g.throughput(Throughput::Elements(256));
    g.bench_function("same_class_jobs", |b| {
        let ex = JobExecutor::new(4, policy(), Arc::new(NoopAllocator));
        b.iter(|| {
            let jobs: Vec<Job> = (0..256)
                .map(|i| Job::new(format!("j{i}"), CacheUsageClass::Polluting, || {}))
                .collect();
            ex.run_jobs(jobs);
        });
    });
    g.bench_function("alternating_class_jobs", |b| {
        let ex = JobExecutor::new(4, policy(), Arc::new(NoopAllocator));
        b.iter(|| {
            let jobs: Vec<Job> = (0..256)
                .map(|i| {
                    let cuid = if i % 2 == 0 {
                        CacheUsageClass::Polluting
                    } else {
                        CacheUsageClass::Sensitive
                    };
                    Job::new(format!("j{i}"), cuid, || {})
                })
                .collect();
            ex.run_jobs(jobs);
        });
    });
    g.finish();
}

fn bench_policy(c: &mut Criterion) {
    let p = policy();
    let mut g = c.benchmark_group("engine/policy");
    g.throughput(Throughput::Elements(3));
    g.bench_function("mask_for_all_classes", |b| {
        b.iter(|| {
            let a = p.mask_for(CacheUsageClass::Polluting);
            let s = p.mask_for(CacheUsageClass::Sensitive);
            let m = p.mask_for(CacheUsageClass::Mixed {
                hot_bytes: 12_500_000,
            });
            (a.bits(), s.bits(), m.bits())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_policy);
criterion_main!(benches);
