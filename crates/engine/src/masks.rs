//! The live mask table: the executor's view of the *current* CUID→mask
//! mapping.
//!
//! The paper's mapping is static — [`PartitionPolicy`] computes the same
//! mask for a class forever. Adaptive control (the `ccp-control` crate)
//! re-derives masks online and publishes them here; workers read the
//! table once per job at bind time, so a repartition is observed on the
//! **next bind**, never mid-query. The table always starts out equal to
//! the static policy mapping, which keeps every static-mode code path
//! byte-for-byte identical to the pre-adaptive behavior.
//!
//! Concurrency model: one writer (the control loop) and many readers
//! (workers). Each class's bits are an independent `AtomicU32`; a plan is
//! *not* applied atomically across classes, which is safe because a bind
//! consults exactly one class entry and every intermediate state is a set
//! of individually-valid masks.

use crate::job::CacheUsageClass;
use crate::partition::PartitionPolicy;
use ccp_cachesim::WayMask;
use std::sync::atomic::{AtomicU32, Ordering};

/// Published per-class way masks, updated in place by the controller and
/// consulted by workers on every bind decision.
#[derive(Debug)]
pub struct LiveMasks {
    polluting: AtomicU32,
    mixed: AtomicU32,
    sensitive: AtomicU32,
}

impl LiveMasks {
    /// A table seeded with the policy's static mapping (polluting mask,
    /// the mixed-in-sensitive-regime mask, and the full sensitive mask).
    pub fn from_policy(policy: &PartitionPolicy) -> Self {
        let mixed_static = policy.mask_for(CacheUsageClass::Mixed {
            hot_bytes: policy.llc.size_bytes,
        });
        LiveMasks {
            polluting: AtomicU32::new(policy.mask_for(CacheUsageClass::Polluting).bits()),
            mixed: AtomicU32::new(mixed_static.bits()),
            sensitive: AtomicU32::new(policy.mask_for(CacheUsageClass::Sensitive).bits()),
        }
    }

    /// The current mask for `cuid`. Mixed classes are resolved the same
    /// way the static policy resolves them — a working set that is not
    /// LLC-comparable pollutes and gets the polluting entry — but against
    /// the *live* per-class bits.
    ///
    /// Defensive: if a published entry ever fails mask validation the
    /// static policy mapping is used instead, so a torn or buggy publish
    /// can never produce an illegal CBM at bind time.
    pub fn mask_for(&self, cuid: CacheUsageClass, policy: &PartitionPolicy) -> WayMask {
        let bits = match cuid {
            // ORDERING: (all loads below) each class entry is independent
            // and self-contained; a stale read only delays a rebind by
            // one job, matching the documented next-bind semantics.
            CacheUsageClass::Polluting => self.polluting.load(Ordering::Relaxed),
            CacheUsageClass::Sensitive => self.sensitive.load(Ordering::Relaxed),
            CacheUsageClass::Mixed { hot_bytes } => {
                if policy.is_llc_comparable(hot_bytes) {
                    self.mixed.load(Ordering::Relaxed)
                } else {
                    // ORDERING: same independent-entry argument as above.
                    self.polluting.load(Ordering::Relaxed)
                }
            }
        };
        WayMask::new(bits).unwrap_or_else(|_| policy.mask_for(cuid))
    }

    /// Publishes a full plan. Per-class stores are independent; readers
    /// may observe a mix of old and new entries, each individually valid.
    pub fn set_masks(&self, polluting: WayMask, mixed: WayMask, sensitive: WayMask) {
        // ORDERING: see `mask_for` — independent advisory entries.
        self.polluting.store(polluting.bits(), Ordering::Relaxed);
        self.mixed.store(mixed.bits(), Ordering::Relaxed);
        self.sensitive.store(sensitive.bits(), Ordering::Relaxed);
    }

    /// Reverts the table to the policy's static mapping.
    pub fn reset_to(&self, policy: &PartitionPolicy) {
        let mixed_static = policy.mask_for(CacheUsageClass::Mixed {
            hot_bytes: policy.llc.size_bytes,
        });
        self.set_masks(
            policy.mask_for(CacheUsageClass::Polluting),
            mixed_static,
            policy.mask_for(CacheUsageClass::Sensitive),
        );
    }

    /// Raw bits of the polluting entry.
    pub fn polluting_bits(&self) -> u32 {
        // ORDERING: point-in-time read for reporting; no ordering implied.
        self.polluting.load(Ordering::Relaxed)
    }

    /// Raw bits of the mixed (sensitive-regime) entry.
    pub fn mixed_bits(&self) -> u32 {
        // ORDERING: point-in-time read for reporting; no ordering implied.
        self.mixed.load(Ordering::Relaxed)
    }

    /// Raw bits of the sensitive entry.
    pub fn sensitive_bits(&self) -> u32 {
        // ORDERING: point-in-time read for reporting; no ordering implied.
        self.sensitive.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::HierarchyConfig;

    fn policy() -> PartitionPolicy {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes)
    }

    #[test]
    fn defaults_match_static_policy() {
        let p = policy();
        let live = LiveMasks::from_policy(&p);
        for cuid in [
            CacheUsageClass::Polluting,
            CacheUsageClass::Sensitive,
            CacheUsageClass::Mixed { hot_bytes: 125_000 },
            CacheUsageClass::Mixed {
                hot_bytes: 12_500_000,
            },
        ] {
            assert_eq!(live.mask_for(cuid, &p), p.mask_for(cuid));
        }
    }

    #[test]
    fn published_plan_is_observed_and_reset_reverts() {
        let p = policy();
        let live = LiveMasks::from_policy(&p);
        let pol = WayMask::new(0x3).unwrap();
        let mix = WayMask::range(18, 2).unwrap();
        let sen = WayMask::range(16, 4).unwrap();
        live.set_masks(pol, mix, sen);
        assert_eq!(
            live.mask_for(CacheUsageClass::Sensitive, &p).bits(),
            0xf0000
        );
        assert_eq!(
            live.mask_for(
                CacheUsageClass::Mixed {
                    hot_bytes: 12_500_000
                },
                &p
            )
            .bits(),
            0xc0000
        );
        // Non-LLC-comparable mixed working sets still pollute.
        assert_eq!(
            live.mask_for(CacheUsageClass::Mixed { hot_bytes: 125_000 }, &p)
                .bits(),
            0x3
        );
        live.reset_to(&p);
        assert_eq!(
            live.mask_for(CacheUsageClass::Sensitive, &p),
            p.mask_for(CacheUsageClass::Sensitive)
        );
    }

    #[test]
    fn invalid_published_bits_fall_back_to_policy() {
        let p = policy();
        let live = LiveMasks::from_policy(&p);
        // Bypass the typed setter to simulate a corrupt publish.
        live.sensitive.store(0, Ordering::Relaxed);
        assert_eq!(
            live.mask_for(CacheUsageClass::Sensitive, &p),
            p.mask_for(CacheUsageClass::Sensitive)
        );
    }
}
