//! Jobs and cache usage identifiers.
//!
//! A job is the engine's unit of scheduling: one operator, or one slice of
//! a parallelized operator. The **cache usage identifier** (CUID) is the
//! paper's taxonomy of operators by cache behaviour (Section V-C); the
//! executor turns it into a CAT way mask before the job runs.

use serde::{Deserialize, Serialize};

/// The paper's three cache-usage classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CacheUsageClass {
    /// Class (*i*): not cache-sensitive, pollutes the cache by streaming —
    /// e.g. the column scan. Restricted to a small LLC slice.
    Polluting,
    /// Class (*ii*): cache-sensitive, profits from the entire cache — e.g.
    /// grouped aggregation. **The default**, so unknown operators are never
    /// penalized (the paper's no-regression guarantee).
    #[default]
    Sensitive,
    /// Class (*iii*): either polluting or sensitive depending on data —
    /// e.g. the FK join, decided by its bit-vector size at runtime.
    Mixed {
        /// Bytes of the operator's frequently re-used structure (the join's
        /// bit vector); the partition policy compares this against cache
        /// geometry to pick a mask.
        hot_bytes: u64,
    },
}

/// A unit of work for the executor: a closure tagged with its CUID.
pub struct Job {
    /// Human-readable label for diagnostics.
    pub name: String,
    /// Cache usage identifier.
    pub cuid: CacheUsageClass,
    /// The work itself.
    pub run: Box<dyn FnOnce() + Send + 'static>,
}

impl Job {
    /// Creates a job with an explicit CUID.
    pub fn new(
        name: impl Into<String>,
        cuid: CacheUsageClass,
        run: impl FnOnce() + Send + 'static,
    ) -> Self {
        Job {
            name: name.into(),
            cuid,
            run: Box::new(run),
        }
    }

    /// Creates a job with the default (sensitive) CUID — what operators
    /// without annotations get, guaranteeing they keep the whole cache.
    pub fn unannotated(name: impl Into<String>, run: impl FnOnce() + Send + 'static) -> Self {
        Job::new(name, CacheUsageClass::default(), run)
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("cuid", &self.cuid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cuid_is_sensitive() {
        assert_eq!(CacheUsageClass::default(), CacheUsageClass::Sensitive);
        let j = Job::unannotated("q", || {});
        assert_eq!(j.cuid, CacheUsageClass::Sensitive);
    }

    #[test]
    fn job_runs_its_closure() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let j = Job::new("set-flag", CacheUsageClass::Polluting, move || {
            f2.store(true, Ordering::SeqCst);
        });
        (j.run)();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn mixed_carries_hot_bytes() {
        let c = CacheUsageClass::Mixed {
            hot_bytes: 12_500_000,
        };
        match c {
            CacheUsageClass::Mixed { hot_bytes } => assert_eq!(hot_bytes, 12_500_000),
            _ => unreachable!(),
        }
    }
}
