//! Jobs and cache usage identifiers.
//!
//! A job is the engine's unit of scheduling: one operator, or one slice of
//! a parallelized operator. The **cache usage identifier** (CUID) is the
//! paper's taxonomy of operators by cache behaviour (Section V-C); the
//! executor turns it into a CAT way mask before the job runs.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The paper's three cache-usage classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CacheUsageClass {
    /// Class (*i*): not cache-sensitive, pollutes the cache by streaming —
    /// e.g. the column scan. Restricted to a small LLC slice.
    Polluting,
    /// Class (*ii*): cache-sensitive, profits from the entire cache — e.g.
    /// grouped aggregation. **The default**, so unknown operators are never
    /// penalized (the paper's no-regression guarantee).
    #[default]
    Sensitive,
    /// Class (*iii*): either polluting or sensitive depending on data —
    /// e.g. the FK join, decided by its bit-vector size at runtime.
    Mixed {
        /// Bytes of the operator's frequently re-used structure (the join's
        /// bit vector); the partition policy compares this against cache
        /// geometry to pick a mask.
        hot_bytes: u64,
    },
}

/// Per-query execution context propagated from the thread that plans a
/// query onto every job the query submits.
///
/// The serving layer needs to answer "how much of query #N's latency was
/// resctrl mask-binding?" — but binds happen on executor workers, several
/// jobs deep. A `QueryCtx` travels with each [`Job`] (captured from the
/// submitting thread's [`with_query_ctx`] scope), and workers accumulate
/// their bind time into it; the query's trace spans carry the same `id`.
#[derive(Debug)]
pub struct QueryCtx {
    /// Correlation id (the server's query ticket); tags trace spans.
    pub id: u64,
    bind_ns: AtomicU64,
}

impl QueryCtx {
    /// Creates a context for query `id`.
    pub fn new(id: u64) -> Arc<QueryCtx> {
        Arc::new(QueryCtx {
            id,
            bind_ns: AtomicU64::new(0),
        })
    }

    /// Adds `ns` nanoseconds of mask-bind work attributed to this query.
    pub fn add_bind_ns(&self, ns: u64) {
        // ORDERING: monotone statistics counter; readers only want an
        // eventually-consistent total, never cross-field consistency.
        self.bind_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total mask-bind nanoseconds accumulated so far.
    pub fn bind_ns(&self) -> u64 {
        // ORDERING: relaxed snapshot of a monotone counter.
        self.bind_ns.load(Ordering::Relaxed)
    }
}

thread_local! {
    static CURRENT_QUERY: RefCell<Option<Arc<QueryCtx>>> = const { RefCell::new(None) };
}

/// Runs `f` with `ctx` installed as the thread's current query context:
/// every [`Job`] created inside (directly or via `parallel_sum`) carries
/// it. The previous context is restored on exit, panics included.
pub fn with_query_ctx<R>(ctx: Arc<QueryCtx>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<QueryCtx>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_QUERY.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CURRENT_QUERY.with(|c| c.borrow_mut().replace(ctx)));
    f()
}

/// The thread's current query context, if inside a [`with_query_ctx`]
/// scope.
pub fn current_query_ctx() -> Option<Arc<QueryCtx>> {
    CURRENT_QUERY.with(|c| c.borrow().clone())
}

/// A unit of work for the executor: a closure tagged with its CUID.
pub struct Job {
    /// Human-readable label for diagnostics.
    pub name: String,
    /// Cache usage identifier.
    pub cuid: CacheUsageClass,
    /// The work itself.
    pub run: Box<dyn FnOnce() + Send + 'static>,
    /// Query this job belongs to, captured from the submitting thread's
    /// [`with_query_ctx`] scope (`None` outside one).
    pub ctx: Option<Arc<QueryCtx>>,
}

impl Job {
    /// Creates a job with an explicit CUID. The current thread's query
    /// context, if any, is attached automatically.
    pub fn new(
        name: impl Into<String>,
        cuid: CacheUsageClass,
        run: impl FnOnce() + Send + 'static,
    ) -> Self {
        Job {
            name: name.into(),
            cuid,
            run: Box::new(run),
            ctx: current_query_ctx(),
        }
    }

    /// Creates a job with the default (sensitive) CUID — what operators
    /// without annotations get, guaranteeing they keep the whole cache.
    pub fn unannotated(name: impl Into<String>, run: impl FnOnce() + Send + 'static) -> Self {
        Job::new(name, CacheUsageClass::default(), run)
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("cuid", &self.cuid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cuid_is_sensitive() {
        assert_eq!(CacheUsageClass::default(), CacheUsageClass::Sensitive);
        let j = Job::unannotated("q", || {});
        assert_eq!(j.cuid, CacheUsageClass::Sensitive);
    }

    #[test]
    fn job_runs_its_closure() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let j = Job::new("set-flag", CacheUsageClass::Polluting, move || {
            f2.store(true, Ordering::SeqCst);
        });
        (j.run)();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn jobs_capture_and_scope_query_context() {
        assert!(current_query_ctx().is_none());
        let outside = Job::unannotated("outside", || {});
        assert!(outside.ctx.is_none());
        let ctx = QueryCtx::new(42);
        let job = with_query_ctx(ctx.clone(), || {
            // Nested scopes shadow and restore.
            let inner_ctx = QueryCtx::new(43);
            let inner = with_query_ctx(inner_ctx, || Job::unannotated("inner", || {}));
            assert_eq!(inner.ctx.as_ref().unwrap().id, 43);
            Job::unannotated("outer", || {})
        });
        assert_eq!(job.ctx.as_ref().unwrap().id, 42);
        assert!(current_query_ctx().is_none());
        ctx.add_bind_ns(120);
        ctx.add_bind_ns(80);
        assert_eq!(ctx.bind_ns(), 200);
    }

    #[test]
    fn mixed_carries_hot_bytes() {
        let c = CacheUsageClass::Mixed {
            hot_bytes: 12_500_000,
        };
        match c {
            CacheUsageClass::Mixed { hot_bytes } => assert_eq!(hot_bytes, 12_500_000),
            _ => unreachable!(),
        }
    }
}
