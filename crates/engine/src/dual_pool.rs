//! Dual thread-pool engine front end (paper Section V-C).
//!
//! SAP HANA handles short-running OLTP statements in a **dedicated thread
//! pool** that always keeps the full cache — so the per-job mask binding
//! (with its potential kernel round-trip) only ever happens on the OLAP
//! side, and OLTP latency never pays for partitioning:
//!
//! > "If at all, only short-running OLTP queries might see a small
//! > performance penalty due to the interaction with the kernel. However,
//! > SAP HANA handles such queries in a dedicated thread pool anyway. That
//! > thread pool always has access to the entire cache."
//!
//! [`DualPoolExecutor`] packages that arrangement: an OLAP pool with
//! partitioning enabled and an OLTP pool that pins every worker to the
//! full mask once at startup and never re-binds.

use crate::alloc::CacheAllocator;
use crate::executor::JobExecutor;
use crate::job::Job;
use crate::partition::PartitionPolicy;
use std::sync::Arc;

/// Two-pool engine front end: partitioned OLAP workers, full-cache OLTP
/// workers.
pub struct DualPoolExecutor {
    olap: JobExecutor,
    oltp: JobExecutor,
}

impl DualPoolExecutor {
    /// Builds both pools against the same allocator.
    ///
    /// # Panics
    /// Panics when either worker count is zero.
    pub fn new(
        olap_workers: usize,
        oltp_workers: usize,
        policy: PartitionPolicy,
        allocator: Arc<dyn CacheAllocator>,
    ) -> Self {
        let olap = JobExecutor::with_pool_name(olap_workers, policy, allocator.clone(), "olap");
        let oltp = JobExecutor::with_pool_name(oltp_workers, policy, allocator, "oltp");
        // The OLTP pool never partitions: with partitioning disabled, every
        // job binds the full mask, and the per-worker fast path makes that
        // a one-time cost per worker thread.
        oltp.set_partitioning(false);
        DualPoolExecutor { olap, oltp }
    }

    /// The OLAP pool (CUID-partitioned).
    pub fn olap(&self) -> &JobExecutor {
        &self.olap
    }

    /// The OLTP pool (always full cache).
    pub fn oltp(&self) -> &JobExecutor {
        &self.oltp
    }

    /// Submits an analytical job: its CUID decides its mask.
    pub fn submit_olap(&self, job: Job) {
        self.olap.submit(job);
    }

    /// Submits a transactional job: runs with the full cache, regardless
    /// of its CUID.
    pub fn submit_oltp(&self, job: Job) {
        self.oltp.submit(job);
    }

    /// The OLAP pool's live mask table — the handle adaptive control
    /// publishes repartitions through. The OLTP pool has no table to
    /// speak of: it binds the full mask regardless.
    pub fn live_masks(&self) -> Arc<crate::masks::LiveMasks> {
        self.olap.live_masks()
    }

    /// Enables/disables partitioning on the OLAP side only (the paper's
    /// evaluation toggle); the OLTP pool is unaffected by design.
    pub fn set_partitioning(&self, on: bool) {
        self.olap.set_partitioning(on);
    }

    /// Waits until both pools are idle.
    pub fn wait_idle(&self) {
        self.olap.wait_idle();
        self.oltp.wait_idle();
    }

    /// Total mask switches across both pools — the OLTP pool's share stays
    /// at one per worker (its startup bind), which is the §V-C guarantee.
    pub fn mask_switches(&self) -> (u64, u64) {
        (self.olap.mask_switches(), self.oltp.mask_switches())
    }

    /// Attaches both pools' live instruments to `registry`, labeled
    /// `pool="olap"` / `pool="oltp"` — one scrape then shows the §V-C
    /// asymmetry directly (OLTP mask switches stay at one per worker
    /// while OLAP switches track the CUID mix).
    pub fn register_metrics(&self, registry: &ccp_obs::Registry) {
        self.olap.metrics().register_into(registry, "olap");
        self.oltp.metrics().register_into(registry, "oltp");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::RecordingAllocator;
    use crate::job::CacheUsageClass;
    use ccp_cachesim::HierarchyConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn dual(olap: usize, oltp: usize) -> (Arc<RecordingAllocator>, DualPoolExecutor) {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let rec = Arc::new(RecordingAllocator::new());
        let ex = DualPoolExecutor::new(
            olap,
            oltp,
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            rec.clone(),
        );
        (rec, ex)
    }

    #[test]
    fn oltp_jobs_always_get_the_full_cache() {
        let (rec, ex) = dual(1, 1);
        // Even a job annotated as polluting runs unconfined on the OLTP
        // side (the CUID is advisory; the pool guarantees full cache).
        for i in 0..5 {
            ex.submit_oltp(Job::new(format!("t{i}"), CacheUsageClass::Polluting, || {}));
        }
        ex.wait_idle();
        assert!(rec.calls().iter().all(|(_, m)| m.bits() == 0xfffff));
    }

    #[test]
    fn oltp_pool_binds_once_per_worker() {
        let (_, ex) = dual(1, 2);
        for i in 0..20 {
            ex.submit_oltp(Job::unannotated(format!("t{i}"), || {}));
        }
        ex.wait_idle();
        let (_, oltp_switches) = ex.mask_switches();
        assert!(
            oltp_switches <= 2,
            "OLTP pool must bind at most once per worker"
        );
    }

    #[test]
    fn olap_jobs_are_partitioned_oltp_untouched_by_toggle() {
        let (rec, ex) = dual(1, 1);
        ex.submit_olap(Job::new("scan", CacheUsageClass::Polluting, || {}));
        ex.wait_idle();
        assert_eq!(rec.calls().last().map(|(_, m)| m.bits()), Some(0x3));

        ex.set_partitioning(false);
        ex.submit_olap(Job::new("scan2", CacheUsageClass::Polluting, || {}));
        ex.submit_oltp(Job::unannotated("t", || {}));
        ex.wait_idle();
        // After the toggle the OLAP scan binds the full mask too.
        assert!(rec
            .calls()
            .iter()
            .rev()
            .take(2)
            .all(|(_, m)| m.bits() == 0xfffff));
    }

    #[test]
    fn pools_run_concurrently() {
        let (_, ex) = dual(2, 2);
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..8 {
            let d = done.clone();
            let job = Job::unannotated(format!("j{i}"), move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
            if i % 2 == 0 {
                ex.submit_olap(job);
            } else {
                ex.submit_oltp(job);
            }
        }
        ex.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 8);
        assert_eq!(ex.olap().jobs_executed(), 4);
        assert_eq!(ex.oltp().jobs_executed(), 4);
    }

    #[test]
    fn register_metrics_exposes_both_pools() {
        let (_, ex) = dual(1, 1);
        ex.submit_olap(Job::new("scan", CacheUsageClass::Polluting, || {}));
        ex.submit_oltp(Job::unannotated("txn", || {}));
        ex.wait_idle();
        let registry = ccp_obs::Registry::new();
        ex.register_metrics(&registry);
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_executor_jobs_total{class=\"polluting\",pool=\"olap\"} 1"));
        // Job::unannotated defaults to the sensitive class.
        assert!(text.contains("ccp_executor_jobs_total{class=\"sensitive\",pool=\"oltp\"} 1"));
        assert!(text.contains("ccp_executor_mask_switches_total{pool=\"oltp\"} 1"));
    }
}
