//! Cache-aware co-run scheduling — the extension the paper's conclusion
//! sketches:
//!
//! > "it might be advisable to co-run operators with high cache pollution
//! > characteristics (cache usage identifiers (i) and (iii), according to
//! > our taxonomy), but let cache-sensitive queries (identifiers (ii) and
//! > (iii)) rather run alone."
//!
//! The scheduler packs a queue of queries into *waves* of at most
//! `slots` concurrent queries such that **at most one cache-sensitive
//! query runs per wave** — polluters (which partitioning confines to a
//! small LLC slice anyway) fill the remaining slots. Within a wave the
//! ordinary [`crate::partition::PartitionPolicy`] masks apply.

use crate::job::CacheUsageClass;
use crate::metrics::SchedulerMetrics;
use crate::partition::PartitionPolicy;

/// Whether a query behaves as cache-sensitive under `policy` — class (ii),
/// or class (iii) in its cache-sensitive regime.
pub fn is_cache_sensitive(policy: &PartitionPolicy, cuid: CacheUsageClass) -> bool {
    match cuid {
        CacheUsageClass::Sensitive => true,
        CacheUsageClass::Polluting => false,
        CacheUsageClass::Mixed { hot_bytes } => policy.is_llc_comparable(hot_bytes),
    }
}

/// Admission decision for one candidate against the currently running set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Start the query now.
    RunNow,
    /// Hold it until the current wave drains.
    Defer,
}

/// A greedy cache-aware wave scheduler.
#[derive(Debug, Clone, Copy)]
pub struct CacheAwareScheduler {
    policy: PartitionPolicy,
    /// Maximum queries per wave.
    pub slots: usize,
}

impl CacheAwareScheduler {
    /// Creates a scheduler packing up to `slots` queries per wave.
    ///
    /// # Panics
    /// Panics when `slots` is zero.
    pub fn new(policy: PartitionPolicy, slots: usize) -> Self {
        assert!(slots > 0, "a wave needs at least one slot");
        CacheAwareScheduler { policy, slots }
    }

    /// Decides whether `candidate` may join the queries in `running`.
    ///
    /// Rules: never exceed `slots`; never co-run two cache-sensitive
    /// queries (they would fight over the LLC capacity partitioning
    /// reserves for them).
    pub fn admit(&self, running: &[CacheUsageClass], candidate: CacheUsageClass) -> Admission {
        if running.len() >= self.slots {
            return Admission::Defer;
        }
        let sensitive_running = running.iter().any(|&c| is_cache_sensitive(&self.policy, c));
        if sensitive_running && is_cache_sensitive(&self.policy, candidate) {
            return Admission::Defer;
        }
        Admission::RunNow
    }

    /// Packs a queue of CUIDs into waves (greedy, stable): each wave holds
    /// at most one cache-sensitive query plus polluters up to `slots`.
    /// Returns indices into `queue`.
    pub fn plan_waves(&self, queue: &[CacheUsageClass]) -> Vec<Vec<usize>> {
        let mut waves: Vec<(Vec<usize>, Vec<CacheUsageClass>)> = Vec::new();
        for (i, &cuid) in queue.iter().enumerate() {
            let mut placed = false;
            for (ids, cuids) in &mut waves {
                if self.admit(cuids, cuid) == Admission::RunNow {
                    ids.push(i);
                    cuids.push(cuid);
                    placed = true;
                    break;
                }
            }
            if !placed {
                waves.push((vec![i], vec![cuid]));
            }
        }
        waves.into_iter().map(|(ids, _)| ids).collect()
    }

    /// [`admit`](Self::admit), recording the decision in `metrics`
    /// (admissions vs. deferrals).
    pub fn admit_observed(
        &self,
        running: &[CacheUsageClass],
        candidate: CacheUsageClass,
        metrics: &SchedulerMetrics,
    ) -> Admission {
        let decision = self.admit(running, candidate);
        metrics.record_admission(decision);
        decision
    }

    /// [`plan_waves`](Self::plan_waves), recording wave count and
    /// per-wave occupancy in `metrics`.
    pub fn plan_waves_observed(
        &self,
        queue: &[CacheUsageClass],
        metrics: &SchedulerMetrics,
    ) -> Vec<Vec<usize>> {
        let waves = self.plan_waves(queue);
        metrics.record_plan(&waves);
        waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::HierarchyConfig;

    fn sched(slots: usize) -> CacheAwareScheduler {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        CacheAwareScheduler::new(
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            slots,
        )
    }

    const AGG: CacheUsageClass = CacheUsageClass::Sensitive;
    const SCAN: CacheUsageClass = CacheUsageClass::Polluting;
    /// A join in its cache-sensitive regime (12.5 MB bit vector).
    const JOIN_BIG: CacheUsageClass = CacheUsageClass::Mixed {
        hot_bytes: 12_500_000,
    };
    /// A join acting as a polluter (125 KB bit vector).
    const JOIN_SMALL: CacheUsageClass = CacheUsageClass::Mixed { hot_bytes: 125_000 };

    #[test]
    fn sensitivity_classification_follows_policy() {
        let s = sched(2);
        assert!(is_cache_sensitive(&s.policy, AGG));
        assert!(!is_cache_sensitive(&s.policy, SCAN));
        assert!(is_cache_sensitive(&s.policy, JOIN_BIG));
        assert!(!is_cache_sensitive(&s.policy, JOIN_SMALL));
    }

    #[test]
    fn two_sensitive_queries_never_corun() {
        let s = sched(4);
        assert_eq!(s.admit(&[AGG], AGG), Admission::Defer);
        assert_eq!(s.admit(&[AGG], JOIN_BIG), Admission::Defer);
        assert_eq!(s.admit(&[JOIN_BIG], AGG), Admission::Defer);
    }

    #[test]
    fn polluters_fill_remaining_slots() {
        let s = sched(3);
        assert_eq!(s.admit(&[AGG], SCAN), Admission::RunNow);
        assert_eq!(s.admit(&[AGG, SCAN], JOIN_SMALL), Admission::RunNow);
        assert_eq!(s.admit(&[AGG, SCAN, JOIN_SMALL], SCAN), Admission::Defer); // full
    }

    #[test]
    fn polluters_corun_freely() {
        let s = sched(4);
        assert_eq!(s.admit(&[SCAN, SCAN, JOIN_SMALL], SCAN), Admission::RunNow);
    }

    #[test]
    fn plan_spreads_sensitive_queries_across_waves() {
        let s = sched(2);
        // Queue: agg, agg, scan, scan — FIFO pairing would co-run the two
        // aggregations; the planner pairs each with a scan instead.
        let waves = s.plan_waves(&[AGG, AGG, SCAN, SCAN]);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0], vec![0, 2]);
        assert_eq!(waves[1], vec![1, 3]);
    }

    #[test]
    fn plan_handles_all_sensitive_queue() {
        let s = sched(2);
        // Only sensitive queries: each runs alone, as the paper suggests.
        let waves = s.plan_waves(&[AGG, JOIN_BIG, AGG]);
        assert_eq!(waves.len(), 3);
        for w in waves {
            assert_eq!(w.len(), 1);
        }
    }

    #[test]
    fn plan_packs_all_polluters_densely() {
        let s = sched(3);
        let waves = s.plan_waves(&[SCAN; 7]);
        assert_eq!(waves.len(), 3); // 3 + 3 + 1
        assert_eq!(waves[0].len(), 3);
        assert_eq!(waves[2].len(), 1);
    }

    #[test]
    fn every_query_scheduled_exactly_once() {
        let s = sched(2);
        let queue = [AGG, SCAN, JOIN_BIG, JOIN_SMALL, SCAN, AGG, SCAN];
        let waves = s.plan_waves(&queue);
        let mut seen: Vec<usize> = waves.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..queue.len()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = sched(0);
    }

    #[test]
    fn empty_queue_plans_no_waves() {
        let s = sched(4);
        assert!(s.plan_waves(&[]).is_empty());
    }

    #[test]
    fn single_slot_serializes_everything() {
        let s = sched(1);
        let queue = [SCAN, AGG, SCAN, JOIN_SMALL];
        let waves = s.plan_waves(&queue);
        assert_eq!(waves.len(), queue.len());
        assert!(waves.iter().all(|w| w.len() == 1));
        // Stable: original queue order preserved.
        let flat: Vec<usize> = waves.into_iter().flatten().collect();
        assert_eq!(flat, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mixed_cuids_straddle_the_llc_comparable_threshold() {
        let s = sched(2);
        // JOIN_BIG is sensitive (12.5 MB dominates the shared LLC slice),
        // JOIN_SMALL is not — so two big joins must not co-run while two
        // small ones pack into one wave.
        let big = s.plan_waves(&[JOIN_BIG, JOIN_BIG]);
        assert_eq!(big.len(), 2);
        let small = s.plan_waves(&[JOIN_SMALL, JOIN_SMALL]);
        assert_eq!(small, vec![vec![0, 1]]);
        // And a big join pairs with a small one (one sensitive per wave).
        let pair = s.plan_waves(&[JOIN_BIG, JOIN_SMALL]);
        assert_eq!(pair, vec![vec![0, 1]]);
    }

    #[test]
    fn observed_variants_record_into_metrics() {
        use crate::metrics::SchedulerMetrics;
        let s = sched(2);
        let m = SchedulerMetrics::new();
        assert_eq!(s.admit_observed(&[AGG], AGG, &m), Admission::Defer);
        assert_eq!(s.admit_observed(&[AGG], SCAN, &m), Admission::RunNow);
        let waves = s.plan_waves_observed(&[AGG, SCAN, SCAN], &m);
        assert_eq!(waves.len(), 2);
        assert_eq!(m.deferrals(), 1);
        assert_eq!(m.waves_planned(), 2);
        // Occupancies 2 and 1: the histogram saw both waves.
        assert_eq!(m.wave_occupancy().count(), 2);
        assert!((m.wave_occupancy().sum() - 3.0).abs() < 1e-12);
    }
}
