//! Cache-allocator backends.
//!
//! The executor talks to cache hardware through the [`CacheAllocator`]
//! trait: "bind thread `tid` to way mask `mask`". Three backends:
//!
//! * [`ResctrlAllocator`] — the production path on CAT hardware: one
//!   resctrl group per distinct mask, threads moved between groups.
//! * [`NoopAllocator`] — partitioning disabled (the paper's baseline).
//! * [`RecordingAllocator`] — test double recording every call.

use ccp_cachesim::WayMask;
use ccp_resctrl::{
    CacheController, GroupHandle, ResctrlError, ResctrlHealth, RetryPolicy, SupervisedController,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Failpoint name for the executor's bind path (see `ccp-fault`): when
/// armed, a worker's allocator bind fails before reaching the backend.
pub const FAULT_BIND: &str = "engine.bind";

/// Consecutive exhausted resctrl operations before the supervised
/// allocator's circuit breaker trips into degraded mode.
pub const DEFAULT_TRIP_AFTER: u32 = 3;

/// Errors surfaced by allocator backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The resctrl layer failed.
    Resctrl(String),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Resctrl(e) => write!(f, "cache allocation failed: {e}"),
        }
    }
}

impl std::error::Error for AllocError {}

impl From<ResctrlError> for AllocError {
    fn from(e: ResctrlError) -> Self {
        AllocError::Resctrl(e.to_string())
    }
}

/// Binds threads to LLC way masks.
pub trait CacheAllocator: Send + Sync {
    /// Ensures thread `tid` runs under `mask` from now on.
    ///
    /// # Errors
    /// Backend-specific failures; the executor treats them as fatal for the
    /// job but not the engine.
    fn bind(&self, tid: u64, mask: WayMask) -> Result<(), AllocError>;

    /// Eagerly materializes the backend state behind `mask` — group
    /// creation plus schemata writes — without binding any thread.
    ///
    /// This is the control loop's repartition path: a new plan's masks
    /// are prepared up front so a failing schemata rewrite surfaces as a
    /// controller revert instead of as per-job bind failures. Backends
    /// without kernel state accept any mask.
    ///
    /// # Errors
    /// Backend-specific failures; the caller is expected to fall back to
    /// the previous (static) mapping.
    fn prepare(&self, mask: WayMask) -> Result<(), AllocError> {
        let _ = mask;
        Ok(())
    }

    /// Human-readable backend name for diagnostics.
    fn backend_name(&self) -> &'static str;

    /// The backend's shared health handle, when it has failure modes.
    /// `None` for backends that cannot fail (noop, recording).
    fn health(&self) -> Option<Arc<ResctrlHealth>> {
        None
    }

    /// Degraded-mode recovery probe: performs one real backend
    /// operation and reports whether the backend is healthy (clearing
    /// its breaker on success). Backends without failure modes are
    /// trivially healthy.
    fn reprobe(&self) -> bool {
        true
    }
}

/// Partitioning disabled: every bind succeeds and does nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopAllocator;

impl CacheAllocator for NoopAllocator {
    fn bind(&self, _tid: u64, _mask: WayMask) -> Result<(), AllocError> {
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "noop"
    }
}

/// Test double recording `(tid, mask)` pairs in call order.
#[derive(Debug, Default)]
pub struct RecordingAllocator {
    calls: Mutex<Vec<(u64, WayMask)>>,
}

impl RecordingAllocator {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded binds.
    pub fn calls(&self) -> Vec<(u64, WayMask)> {
        self.calls.lock().clone()
    }
}

impl CacheAllocator for RecordingAllocator {
    fn bind(&self, tid: u64, mask: WayMask) -> Result<(), AllocError> {
        self.calls.lock().push((tid, mask));
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "recording"
    }
}

/// Production backend: drives a [`CacheController`] (resctrl).
///
/// Lazily creates one control group per distinct mask, named
/// `ccp-<mask-hex>`, and moves threads between groups. The controller's own
/// old-vs-new caching (paper Section V-C) makes repeated identical binds
/// free.
pub struct ResctrlAllocator {
    inner: Mutex<ResctrlInner>,
    /// L3 cache domains to program (usually one per socket).
    domains: Vec<u32>,
}

struct ResctrlInner {
    ctl: SupervisedController,
    groups: HashMap<u32, GroupHandle>,
}

impl ResctrlInner {
    /// Group for `mask`, created and programmed on first use.
    fn ensure_group(&mut self, domains: &[u32], mask: WayMask) -> Result<GroupHandle, AllocError> {
        if let Some(g) = self.groups.get(&mask.bits()) {
            return Ok(g.clone());
        }
        let name = format!("ccp-{:x}", mask.bits());
        let g = match self.ctl.existing_group(&name) {
            Ok(g) => g,
            Err(_) => self.ctl.create_group(&name)?,
        };
        for &d in domains {
            self.ctl.set_l3_mask(&g, d, mask)?;
        }
        self.groups.insert(mask.bits(), g.clone());
        Ok(g)
    }
}

impl ResctrlAllocator {
    /// Wraps an opened controller, programming the given L3 `domains`,
    /// under the default supervision (3-attempt retry with backoff,
    /// breaker tripping after [`DEFAULT_TRIP_AFTER`] exhausted ops).
    pub fn new(ctl: CacheController, domains: Vec<u32>) -> Self {
        Self::supervised(
            ctl,
            domains,
            RetryPolicy::default(),
            Arc::new(ResctrlHealth::new(DEFAULT_TRIP_AFTER)),
        )
    }

    /// Wraps an opened controller with an explicit retry policy and a
    /// caller-shared health handle (so the server's supervision loop
    /// observes breaker trips).
    pub fn supervised(
        ctl: CacheController,
        domains: Vec<u32>,
        policy: RetryPolicy,
        health: Arc<ResctrlHealth>,
    ) -> Self {
        ResctrlAllocator {
            inner: Mutex::new(ResctrlInner {
                ctl: SupervisedController::new(ctl, policy, health),
                groups: HashMap::new(),
            }),
            domains,
        }
    }

    /// Opens the host's resctrl mount and wraps it (single-socket: domain 0).
    ///
    /// # Errors
    /// Propagates [`ResctrlError`] when resctrl is unavailable.
    pub fn open_host() -> Result<Self, ResctrlError> {
        Ok(Self::new(CacheController::open()?, vec![0]))
    }

    /// Number of kernel writes skipped by the fast path so far.
    pub fn skipped_writes(&self) -> u64 {
        self.inner.lock().ctl.skipped_writes()
    }
}

impl CacheAllocator for ResctrlAllocator {
    fn bind(&self, tid: u64, mask: WayMask) -> Result<(), AllocError> {
        let mut inner = self.inner.lock();
        let group = inner.ensure_group(&self.domains, mask)?;
        inner.ctl.assign_task(&group, tid)?;
        Ok(())
    }

    fn prepare(&self, mask: WayMask) -> Result<(), AllocError> {
        let mut inner = self.inner.lock();
        let group = inner.ensure_group(&self.domains, mask)?;
        // Re-assert the schemata even for a cached group so a drifted or
        // faulted kernel state surfaces here, on the control path, rather
        // than at the next worker bind. The controller's own old-vs-new
        // write cache keeps the repeat case cheap.
        for &d in &self.domains {
            inner.ctl.set_l3_mask(&group, d, mask)?;
        }
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "resctrl"
    }

    fn health(&self) -> Option<Arc<ResctrlHealth>> {
        Some(self.inner.lock().ctl.health())
    }

    fn reprobe(&self) -> bool {
        self.inner.lock().ctl.probe()
    }
}

/// Best-effort current-thread kernel tid.
///
/// Reads `/proc/thread-self/stat` on Linux; falls back to a hash of the
/// Rust `ThreadId` elsewhere (sufficient for the non-resctrl backends,
/// which only need a stable per-thread key).
pub fn current_tid() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") {
            if let Some(tid) = stat.split_whitespace().next().and_then(|s| s.parse().ok()) {
                return tid;
            }
        }
    }
    // Stable fallback: hash the opaque ThreadId.
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_resctrl::fs::FakeFs;

    fn fake_allocator() -> (FakeFs, ResctrlAllocator) {
        let fs = FakeFs::broadwell();
        let ctl = CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
        (fs, ResctrlAllocator::new(ctl, vec![0]))
    }

    #[test]
    fn noop_always_succeeds() {
        let a = NoopAllocator;
        assert!(a.bind(1, WayMask::new(0x3).unwrap()).is_ok());
        assert_eq!(a.backend_name(), "noop");
    }

    #[test]
    fn recording_captures_order() {
        let a = RecordingAllocator::new();
        a.bind(1, WayMask::new(0x3).unwrap()).unwrap();
        a.bind(2, WayMask::new(0xfff).unwrap()).unwrap();
        let calls = a.calls();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0], (1, WayMask::new(0x3).unwrap()));
        assert_eq!(calls[1], (2, WayMask::new(0xfff).unwrap()));
    }

    #[test]
    fn resctrl_allocator_creates_group_per_mask() {
        let (fs, a) = fake_allocator();
        a.bind(100, WayMask::new(0x3).unwrap()).unwrap();
        a.bind(200, WayMask::new(0x3).unwrap()).unwrap();
        a.bind(300, WayMask::new(0xfffff).unwrap()).unwrap();
        assert_eq!(fs.group_count(), 2); // one per distinct mask
        assert_eq!(
            fs.tasks_of(std::path::Path::new("/sys/fs/resctrl/ccp-3")),
            vec![100, 200]
        );
        assert_eq!(
            fs.tasks_of(std::path::Path::new("/sys/fs/resctrl/ccp-fffff")),
            vec![300]
        );
    }

    #[test]
    fn rebinding_same_mask_is_skipped() {
        let (_, a) = fake_allocator();
        let m = WayMask::new(0x3).unwrap();
        a.bind(1, m).unwrap();
        let before = a.skipped_writes();
        for _ in 0..10 {
            a.bind(1, m).unwrap();
        }
        assert_eq!(a.skipped_writes() - before, 10);
    }

    #[test]
    fn schemata_content_matches_mask() {
        let (fs, a) = fake_allocator();
        a.bind(1, WayMask::new(0xfff).unwrap()).unwrap();
        use ccp_resctrl::fs::ResctrlFs;
        let s = fs
            .read(std::path::Path::new("/sys/fs/resctrl/ccp-fff/schemata"))
            .unwrap();
        assert_eq!(s, "L3:0=fff\n");
    }

    #[test]
    fn prepare_creates_group_without_binding_tasks() {
        let (fs, a) = fake_allocator();
        a.prepare(WayMask::new(0xf0000).unwrap()).unwrap();
        assert_eq!(fs.group_count(), 1);
        use ccp_resctrl::fs::ResctrlFs;
        let s = fs
            .read(std::path::Path::new("/sys/fs/resctrl/ccp-f0000/schemata"))
            .unwrap();
        assert_eq!(s, "L3:0=f0000\n");
        assert!(fs
            .tasks_of(std::path::Path::new("/sys/fs/resctrl/ccp-f0000"))
            .is_empty());
        // A later bind to the same mask reuses the prepared group.
        a.bind(7, WayMask::new(0xf0000).unwrap()).unwrap();
        assert_eq!(fs.group_count(), 1);
    }

    #[test]
    fn current_tid_is_stable_within_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn current_tid_differs_across_threads() {
        let main = current_tid();
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(main, other);
    }
}
