//! Engine metric bundles built on [`ccp_obs`].
//!
//! Each [`JobExecutor`](crate::executor::JobExecutor) owns a private
//! [`ExecutorMetrics`] — instances are isolated by default (tests and
//! embedded pools don't share counters through a global registry). A
//! component that wants exposition calls
//! [`ExecutorMetrics::register_into`] to attach its live handles to a
//! [`Registry`] under a `pool` label; the registry then renders them in
//! Prometheus text format alongside every other family.
//!
//! Per-class fan-out uses the paper's CUID taxonomy as the `class`
//! label: `polluting` (i), `sensitive` (ii), `mixed` (iii).

use crate::job::CacheUsageClass;
use crate::scheduler::Admission;
use ccp_obs::{unit, Counter, Histogram, Registry};

/// Stable label value for a CUID class (`polluting` / `sensitive` /
/// `mixed`).
pub fn class_label(cuid: CacheUsageClass) -> &'static str {
    CLASS_LABELS[class_index(cuid)]
}

const CLASS_LABELS: [&str; 3] = ["polluting", "sensitive", "mixed"];

fn class_index(cuid: CacheUsageClass) -> usize {
    match cuid {
        CacheUsageClass::Polluting => 0,
        CacheUsageClass::Sensitive => 1,
        CacheUsageClass::Mixed { .. } => 2,
    }
}

/// Per-executor instruments: job counts and latency distributions per
/// CUID class, plus the mask-switch accounting that quantifies the
/// paper's Section V-C fast path. Cloning shares the underlying state.
#[derive(Debug, Clone)]
pub struct ExecutorMetrics {
    jobs: [Counter; 3],
    panicked: Counter,
    mask_switches: Counter,
    bind_failures: Counter,
    queue_wait: [Histogram; 3],
    job_latency: [Histogram; 3],
}

impl Default for ExecutorMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutorMetrics {
    /// Creates a fresh (zeroed, unregistered) instrument bundle.
    pub fn new() -> Self {
        let lat = || Histogram::new(unit::latency_seconds());
        ExecutorMetrics {
            jobs: std::array::from_fn(|_| Counter::new()),
            panicked: Counter::new(),
            mask_switches: Counter::new(),
            bind_failures: Counter::new(),
            queue_wait: std::array::from_fn(|_| lat()),
            job_latency: std::array::from_fn(|_| lat()),
        }
    }

    /// Records one completed job: its class, how long it sat in the
    /// queue, how long it ran, and whether its closure panicked.
    pub fn record_job(
        &self,
        cuid: CacheUsageClass,
        queue_wait_secs: f64,
        run_secs: f64,
        panicked: bool,
    ) {
        let i = class_index(cuid);
        self.jobs[i].inc();
        self.queue_wait[i].observe(queue_wait_secs);
        self.job_latency[i].observe(run_secs);
        if panicked {
            self.panicked.inc();
        }
    }

    /// Records an allocator bind that was not skipped by the per-worker
    /// fast path.
    pub fn record_mask_switch(&self) {
        self.mask_switches.inc();
    }

    /// Records a failed allocator bind (the job still ran,
    /// unpartitioned).
    pub fn record_bind_failure(&self) {
        self.bind_failures.inc();
    }

    /// Jobs executed across all classes.
    pub fn jobs_executed(&self) -> u64 {
        self.jobs.iter().map(Counter::get).sum()
    }

    /// Jobs executed in one class.
    pub fn jobs_in_class(&self, cuid: CacheUsageClass) -> u64 {
        self.jobs[class_index(cuid)].get()
    }

    /// Jobs whose closure panicked.
    pub fn jobs_panicked(&self) -> u64 {
        self.panicked.get()
    }

    /// Mask switches performed.
    pub fn mask_switches(&self) -> u64 {
        self.mask_switches.get()
    }

    /// Allocator bind failures.
    pub fn bind_failures(&self) -> u64 {
        self.bind_failures.get()
    }

    /// Queue-wait latency histogram for one class (shared handle).
    pub fn queue_wait(&self, cuid: CacheUsageClass) -> Histogram {
        self.queue_wait[class_index(cuid)].clone()
    }

    /// Job run-latency histogram for one class (shared handle).
    pub fn job_latency(&self, cuid: CacheUsageClass) -> Histogram {
        self.job_latency[class_index(cuid)].clone()
    }

    /// Attaches these live handles to `registry` under
    /// `pool="<pool>"`. Families are created idempotently, so several
    /// pools can expose through one registry.
    pub fn register_into(&self, registry: &Registry, pool: &str) {
        let jobs = registry.counter_family(
            "ccp_executor_jobs_total",
            "Jobs executed, by pool and CUID class",
        );
        let wait = registry.histogram_family_with(
            "ccp_executor_queue_wait_seconds",
            "Time jobs spent queued before a worker picked them up",
            unit::latency_seconds(),
        );
        let lat = registry.histogram_family_with(
            "ccp_executor_job_latency_seconds",
            "Job closure run time",
            unit::latency_seconds(),
        );
        for (i, class) in CLASS_LABELS.iter().enumerate() {
            let labels = [("pool", pool), ("class", *class)];
            jobs.register(&labels, self.jobs[i].clone());
            wait.register(&labels, self.queue_wait[i].clone());
            lat.register(&labels, self.job_latency[i].clone());
        }
        registry
            .counter_family(
                "ccp_executor_jobs_panicked_total",
                "Jobs whose closure panicked (caught; the worker survived)",
            )
            .register(&[("pool", pool)], self.panicked.clone());
        registry
            .counter_family(
                "ccp_executor_mask_switches_total",
                "Allocator binds not skipped by the per-worker mask fast path",
            )
            .register(&[("pool", pool)], self.mask_switches.clone());
        registry
            .counter_family(
                "ccp_executor_bind_failures_total",
                "Failed allocator binds (jobs still ran, unpartitioned)",
            )
            .register(&[("pool", pool)], self.bind_failures.clone());
    }
}

/// Instruments for the cache-aware wave scheduler: how full waves are
/// and how often admission control defers a candidate.
#[derive(Debug, Clone)]
pub struct SchedulerMetrics {
    waves_planned: Counter,
    wave_occupancy: Histogram,
    admitted: Counter,
    deferred: Counter,
}

impl Default for SchedulerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulerMetrics {
    /// Creates a fresh (zeroed, unregistered) instrument bundle.
    pub fn new() -> Self {
        SchedulerMetrics {
            waves_planned: Counter::new(),
            wave_occupancy: Histogram::new(unit::small_counts()),
            admitted: Counter::new(),
            deferred: Counter::new(),
        }
    }

    /// Records the outcome of one [`plan_waves`] run.
    ///
    /// [`plan_waves`]: crate::scheduler::CacheAwareScheduler::plan_waves
    pub fn record_plan(&self, waves: &[Vec<usize>]) {
        self.waves_planned.add(waves.len() as u64);
        for w in waves {
            self.wave_occupancy.observe(w.len() as f64);
        }
    }

    /// Records one admission decision.
    pub fn record_admission(&self, decision: Admission) {
        match decision {
            Admission::RunNow => self.admitted.inc(),
            Admission::Defer => self.deferred.inc(),
        }
    }

    /// Waves planned so far.
    pub fn waves_planned(&self) -> u64 {
        self.waves_planned.get()
    }

    /// Admission decisions that deferred the candidate.
    pub fn deferrals(&self) -> u64 {
        self.deferred.get()
    }

    /// Wave-occupancy histogram (queries per planned wave).
    pub fn wave_occupancy(&self) -> Histogram {
        self.wave_occupancy.clone()
    }

    /// Attaches these live handles to `registry`.
    pub fn register_into(&self, registry: &Registry) {
        registry
            .counter_family(
                "ccp_scheduler_waves_planned_total",
                "Waves produced by plan_waves",
            )
            .register(&[], self.waves_planned.clone());
        registry
            .histogram_family_with(
                "ccp_scheduler_wave_occupancy",
                "Queries packed per planned wave",
                unit::small_counts(),
            )
            .register(&[], self.wave_occupancy.clone());
        let adm = registry.counter_family(
            "ccp_scheduler_admissions_total",
            "Admission decisions, by outcome",
        );
        adm.register(&[("decision", "run_now")], self.admitted.clone());
        adm.register(&[("decision", "defer")], self.deferred.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels_cover_the_taxonomy() {
        assert_eq!(class_label(CacheUsageClass::Polluting), "polluting");
        assert_eq!(class_label(CacheUsageClass::Sensitive), "sensitive");
        assert_eq!(
            class_label(CacheUsageClass::Mixed { hot_bytes: 1 }),
            "mixed"
        );
    }

    #[test]
    fn record_job_updates_class_counters_and_histograms() {
        let m = ExecutorMetrics::new();
        m.record_job(CacheUsageClass::Polluting, 0.001, 0.01, false);
        m.record_job(CacheUsageClass::Polluting, 0.002, 0.02, true);
        m.record_job(CacheUsageClass::Sensitive, 0.001, 0.01, false);
        assert_eq!(m.jobs_executed(), 3);
        assert_eq!(m.jobs_in_class(CacheUsageClass::Polluting), 2);
        assert_eq!(m.jobs_panicked(), 1);
        assert_eq!(m.queue_wait(CacheUsageClass::Polluting).count(), 2);
        assert_eq!(m.job_latency(CacheUsageClass::Sensitive).count(), 1);
    }

    #[test]
    fn register_into_exposes_live_handles() {
        let m = ExecutorMetrics::new();
        let r = Registry::new();
        m.register_into(&r, "olap");
        m.record_job(CacheUsageClass::Sensitive, 0.0, 0.5, false);
        m.record_mask_switch();
        let text = r.render_prometheus();
        assert!(
            text.contains("ccp_executor_jobs_total{class=\"sensitive\",pool=\"olap\"} 1"),
            "got: {text}"
        );
        assert!(text.contains("ccp_executor_mask_switches_total{pool=\"olap\"} 1"));
        assert!(text.contains(
            "ccp_executor_job_latency_seconds_count{class=\"sensitive\",pool=\"olap\"} 1"
        ));
    }

    #[test]
    fn two_pools_share_one_registry() {
        let a = ExecutorMetrics::new();
        let b = ExecutorMetrics::new();
        let r = Registry::new();
        a.register_into(&r, "olap");
        b.register_into(&r, "oltp");
        a.record_job(CacheUsageClass::Polluting, 0.0, 0.0, false);
        let text = r.render_prometheus();
        assert!(text.contains("ccp_executor_jobs_total{class=\"polluting\",pool=\"olap\"} 1"));
        assert!(text.contains("ccp_executor_jobs_total{class=\"polluting\",pool=\"oltp\"} 0"));
    }

    #[test]
    fn scheduler_metrics_track_plans_and_admissions() {
        let m = SchedulerMetrics::new();
        m.record_plan(&[vec![0, 1], vec![2]]);
        m.record_admission(Admission::RunNow);
        m.record_admission(Admission::Defer);
        m.record_admission(Admission::Defer);
        assert_eq!(m.waves_planned(), 2);
        assert_eq!(m.deferrals(), 2);
        assert_eq!(m.wave_occupancy().count(), 2);
        let r = Registry::new();
        m.register_into(&r);
        let text = r.render_prometheus();
        assert!(text.contains("ccp_scheduler_waves_planned_total 2"));
        assert!(text.contains("ccp_scheduler_admissions_total{decision=\"defer\"} 2"));
    }
}
