//! Deterministic Zipf sampling for skewed access patterns.
//!
//! The paper generates all data uniformly (Section III-B); real workloads
//! skew. A Zipf-distributed group column concentrates hash-table accesses
//! on a hot set much smaller than `groups × entry` — which moves an
//! "oversized" aggregation back into the cache-sensitive regime. The
//! `abl_skew` bench quantifies this with the skewed twin.
//!
//! Sampling uses Hörmann & Derflinger's rejection-inversion method (the
//! algorithm behind `rand_distr::Zipf`): O(1) expected time for any domain
//! size and exponent, no precomputed tables — important because simulated
//! dictionaries have millions of entries.

use super::SimRng;

/// Rejection-inversion Zipf sampler over `1..=n` with exponent `s > 0`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
}

/// `H(x) = ∫ x^-s dx`, the integral of the unnormalized density.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (s - 1.0).abs() < 1e-9 {
        log_x
    } else {
        ((1.0 - s) * log_x).exp_m1() / (1.0 - s)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        y.exp()
    } else {
        let t = (y * (1.0 - s)).max(-1.0 + 1e-15);
        ((1.0 / (1.0 - s)) * t.ln_1p()).exp()
    }
}

/// The unnormalized density `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

impl ZipfSampler {
    /// Creates a sampler over `1..=n` with exponent `s`.
    ///
    /// # Panics
    /// Panics when `n` is zero or `s` is not positive and finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            s > 0.0 && s.is_finite(),
            "Zipf exponent must be positive, got {s}"
        );
        ZipfSampler {
            n,
            s,
            h_x1: h_integral(1.5, s) - 1.0,
            h_n: h_integral(n as f64 + 0.5, s),
        }
    }

    /// Draws one value in `1..=n`; rank 1 is the most frequent.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            // Uniform f64 in [0, 1) from the top 53 bits.
            let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let u = self.h_n + u01 * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept if u lies under the density bar at k.
            if u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(n: u64, s: f64, draws: usize) -> Vec<u64> {
        let z = ZipfSampler::new(n, s);
        let mut rng = SimRng::new(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            let v = z.sample(&mut rng);
            assert!((1..=n).contains(&v));
            counts[(v - 1) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_domain_and_are_deterministic() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn frequencies_follow_the_power_law() {
        // s = 1: count(rank 1) / count(rank 10) ≈ 10.
        let counts = histogram(1000, 1.0, 200_000);
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(
            (5.0..20.0).contains(&ratio),
            "rank1/rank10 ratio {ratio}, expected ~10"
        );
        // Monotone non-increasing on average over the head.
        assert!(counts[0] > counts[4] && counts[4] > counts[49]);
    }

    #[test]
    fn low_exponent_is_nearly_uniform() {
        let counts = histogram(100, 0.05, 100_000);
        let (min, max) = counts
            .iter()
            .fold((u64::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(
            (max as f64) < 3.0 * min as f64,
            "s→0 should be near-uniform, got min {min} max {max}"
        );
    }

    #[test]
    fn high_exponent_concentrates_on_the_head() {
        let counts = histogram(10_000, 1.5, 50_000);
        let head: u64 = counts[..10].iter().sum();
        assert!(
            head as f64 > 0.7 * 50_000.0,
            "s=1.5: top-10 ranks should dominate, got {head}"
        );
    }

    #[test]
    fn huge_domains_sample_in_constant_time() {
        // 100M-entry domain (a 400 MiB dictionary): no tables, no stalls.
        let z = ZipfSampler::new(100_000_000, 0.99);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=100_000_000).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
