//! Simulated foreign-key join (paper Query 3).
//!
//! Two cyclic phases (Section III-A):
//!
//! * **Build**: stream the primary-key column and set one bit per key in
//!   the bit vector (random writes — the keys are stored unordered).
//! * **Probe**: stream the foreign-key column and test one bit per key
//!   (random reads into the bit vector), counting matches.
//!
//! The bit vector is kept at paper scale (`pk_count / 8` bytes); row counts
//! are scaled, preserving the paper's build:probe ratio (`pk_count : 10⁹`).
//! Figure 6's shape comes entirely from the bit-vector size: L2-resident
//! (10⁶ keys) and beyond-LLC (10⁹) are insensitive, LLC-comparable (10⁸) is
//! sensitive.

use super::{SimOperator, SimRng};
use crate::job::CacheUsageClass;
use ccp_cachesim::{AccessKind, AddrSpace, MemoryHierarchy, Region, StreamId};

/// Rows per scheduling batch.
const BATCH_ROWS: u64 = 32;

/// The paper's foreign-key row count, which anchors the build:probe ratio.
const PAPER_FK_ROWS: u64 = 1_000_000_000;

/// Aggregate per-probe CPU cost in centi-cycles, as a function of the
/// bit-vector size.
///
/// The base term (0.3 cy) is the vectorized decode + bit test + count
/// across 44 threads. The additional terms model TLB behaviour of randomly
/// probing the bit vector: a structure beyond a few MB spills the STLB and
/// every probe pays a (partially overlapped) page walk, and beyond ~32 MB
/// even the page-table levels stop caching well. This config-independent
/// cost floor is what keeps the beyond-LLC (10⁹-key) join flat in
/// Figure 6, exactly as the paper measures, while an L2-resident bit
/// vector probes at streaming speed and pollutes like a scan (Figure 10a).
fn probe_cost_centi(bitvec_bytes: u64) -> u64 {
    if bitvec_bytes > 32 << 20 {
        180
    } else if bitvec_bytes > 8 << 20 {
        90
    } else {
        30
    }
}

/// Simulated Query 3.
#[derive(Debug)]
pub struct FkJoinSim {
    pk_codes: Region,
    fk_codes: Region,
    bitvec: Region,
    pk_count: u64,
    /// Scaled rows per build phase.
    build_rows: u64,
    /// Scaled rows per probe phase.
    probe_rows: u64,
    /// Bits per packed key code.
    key_bits: u64,
    cpu_centi_per_row: u64,
    /// Position within the current phase.
    phase_row: u64,
    in_build: bool,
    next_byte: u64,
    rng: SimRng,
}

impl FkJoinSim {
    /// Creates the join for `pk_count` primary keys probed by
    /// `probe_rows` (scaled) foreign keys per pass.
    ///
    /// # Panics
    /// Panics when either count is zero.
    pub fn new(space: &mut AddrSpace, pk_count: u64, probe_rows: u64) -> Self {
        assert!(pk_count > 0 && probe_rows > 0, "counts must be positive");
        let key_bits = 64 - (pk_count - 1).max(1).leading_zeros() as u64;
        // Preserve the paper's build:probe work ratio (u128: the operands
        // can each exceed 2^30).
        let build_rows = ((u128::from(probe_rows) * u128::from(pk_count)
            / u128::from(PAPER_FK_ROWS)) as u64)
            .max(1);
        FkJoinSim {
            pk_codes: space.alloc((build_rows * key_bits).div_ceil(8).max(8)),
            fk_codes: space.alloc((probe_rows * key_bits).div_ceil(8).max(8)),
            bitvec: space.alloc(pk_count.div_ceil(8)),
            pk_count,
            build_rows,
            probe_rows,
            key_bits,
            cpu_centi_per_row: probe_cost_centi(pk_count.div_ceil(8)),
            phase_row: 0,
            in_build: true,
            next_byte: 0,
            rng: SimRng::new(0x10).clone(),
        }
    }

    /// Bit-vector footprint in bytes — the join's hot structure.
    pub fn bitvec_bytes(&self) -> u64 {
        self.bitvec.len
    }

    /// Rows per full build+probe cycle (the work one execution of the
    /// join contributes — used by composite-query quotas).
    pub fn cycle_rows(&self) -> u64 {
        self.build_rows + self.probe_rows
    }
}

impl SimOperator for FkJoinSim {
    fn name(&self) -> String {
        format!(
            "fk_join({} pks, bitvec {} KB)",
            self.pk_count,
            self.bitvec.len >> 10
        )
    }

    fn cuid(&self) -> CacheUsageClass {
        CacheUsageClass::Mixed {
            hot_bytes: self.bitvec.len,
        }
    }

    fn parallelism(&self) -> u32 {
        // 44 worker threads with several independent, vectorizable probes
        // in flight each: the probe stream pushes close to channel
        // bandwidth when it misses.
        96
    }

    fn batch(&mut self, mem: &mut MemoryHierarchy, stream: StreamId) -> u64 {
        let (codes, phase_rows, kind) = if self.in_build {
            (self.pk_codes, self.build_rows, AccessKind::Write)
        } else {
            (self.fk_codes, self.probe_rows, AccessKind::Read)
        };
        let todo = BATCH_ROWS.min(phase_rows - self.phase_row);
        // Stream the key column sequentially.
        let end_byte = ((self.phase_row + todo) * self.key_bits)
            .div_ceil(8)
            .min(codes.len);
        // First *untouched* line: a batch boundary inside a line means that
        // line was already accessed by the previous batch.
        let mut line_byte =
            self.next_byte.div_ceil(ccp_cachesim::LINE_BYTES) * ccp_cachesim::LINE_BYTES;
        while line_byte < end_byte {
            mem.access(stream, codes.addr(line_byte), AccessKind::Read);
            line_byte += ccp_cachesim::LINE_BYTES;
        }
        self.next_byte = end_byte;
        // One random bit-vector access per key.
        for _ in 0..todo {
            let key = self.rng.below(self.pk_count);
            mem.access(stream, self.bitvec.addr(key / 8), kind);
        }
        mem.advance(stream, todo * self.cpu_centi_per_row);
        mem.retire(stream, todo * 6);
        self.phase_row += todo;
        if self.phase_row >= phase_rows {
            self.phase_row = 0;
            self.next_byte = 0;
            self.in_build = !self.in_build;
        }
        todo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::{HierarchyConfig, WayMask};

    fn run(ways: u32, pk_count: u64, rows: u64) -> u64 {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let mut mem = MemoryHierarchy::new(cfg, 1);
        mem.set_mask(0, WayMask::from_ways(ways).unwrap());
        let mut space = AddrSpace::new();
        let mut join = FkJoinSim::new(&mut space, pk_count, 1 << 40);
        mem.set_parallelism(0, join.parallelism());
        let mut done = 0;
        while done < rows / 2 {
            done += join.batch(&mut mem, 0);
        }
        mem.reset_clocks();
        mem.reset_stats();
        let mut done = 0;
        while done < rows {
            done += join.batch(&mut mem, 0);
        }
        mem.clock(0)
    }

    #[test]
    fn bitvec_sizes_match_paper() {
        let mut space = AddrSpace::new();
        assert_eq!(
            FkJoinSim::new(&mut space, 1_000_000, 1000).bitvec_bytes(),
            125_000
        );
        assert_eq!(
            FkJoinSim::new(&mut space, 100_000_000, 1000).bitvec_bytes(),
            12_500_000
        );
    }

    #[test]
    fn cuid_carries_bitvec_size() {
        let mut space = AddrSpace::new();
        let j = FkJoinSim::new(&mut space, 100_000_000, 1000);
        assert_eq!(
            j.cuid(),
            CacheUsageClass::Mixed {
                hot_bytes: 12_500_000
            }
        );
    }

    #[test]
    fn small_bitvec_join_is_insensitive() {
        // 10^6 keys -> 125 KB bit vector, L2-resident: Figure 6 shows
        // at most a few percent degradation.
        let rows = 300_000;
        let ratio = run(2, 1_000_000, rows) as f64 / run(20, 1_000_000, rows) as f64;
        assert!(
            ratio < 1.18,
            "L2-resident join must barely degrade: {ratio}"
        );
    }

    #[test]
    fn llc_sized_bitvec_join_is_sensitive() {
        // 10^8 keys -> 12.5 MB bit vector: shrinking to 2 ways (5.5 MiB)
        // must hurt clearly (paper: up to -33%).
        let rows = 300_000;
        let ratio = run(2, 100_000_000, rows) as f64 / run(20, 100_000_000, rows) as f64;
        assert!(
            ratio > 1.2,
            "LLC-sized join must be cache-sensitive: {ratio}"
        );
    }

    #[test]
    fn oversized_bitvec_join_is_insensitive_again() {
        // 10^9 keys -> 125 MB: misses dominate regardless of allocation.
        let rows = 200_000;
        let sized = run(2, 100_000_000, rows) as f64 / run(20, 100_000_000, rows) as f64;
        let over = run(2, 1_000_000_000, rows) as f64 / run(20, 1_000_000_000, rows) as f64;
        assert!(
            over < sized,
            "beyond-LLC join should flatten: {over} vs {sized}"
        );
    }

    #[test]
    fn phases_alternate() {
        let cfg = HierarchyConfig::tiny_for_tests();
        let mut mem = MemoryHierarchy::new(cfg, 1);
        let mut space = AddrSpace::new();
        // Tiny join: build 1 row (ratio floor), probe 100 rows.
        let mut join = FkJoinSim::new(&mut space, 1000, 100);
        assert!(join.in_build);
        join.batch(&mut mem, 0); // build phase completes (1 row < batch)
        assert!(!join.in_build);
        let mut probed = 0;
        while !join.in_build {
            probed += join.batch(&mut mem, 0);
        }
        assert_eq!(probed, 100, "probe phase must process exactly its rows");
        assert!(join.in_build);
    }
}
