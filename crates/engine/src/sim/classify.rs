//! Online cache-usage classification.
//!
//! The paper derives its CUIDs from an *offline* micro-benchmark analysis
//! and notes (Section VII) that "the application of existing
//! characterization methods for describing the cache usage pattern of a
//! database operator could be investigated", citing miss-ratio-based
//! online models. This module implements that investigation: probe an
//! operator twice — once with the full LLC and once confined to the
//! polluter slice — and classify it from the throughput ratio and its
//! re-use behaviour:
//!
//! * insensitive to confinement + no re-use ⇒ **Polluting** (class *i*),
//! * sensitive to confinement ⇒ **Sensitive** (class *ii*),
//! * insensitive but re-using a structure the policy would call
//!   LLC-comparable ⇒ **Mixed** (class *iii*) — the measured footprint is
//!   reported as `hot_bytes`.

use super::{run_concurrent, SimOperator, SimWorkload};
use crate::job::CacheUsageClass;
use crate::partition::PartitionPolicy;
use ccp_cachesim::{AddrSpace, HierarchyConfig, WayMask};

/// Everything the probe measured, plus the resulting classification.
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    /// Throughput with the full LLC (work per kilo-cycle).
    pub full_throughput: f64,
    /// Throughput confined to the polluter mask.
    pub confined_throughput: f64,
    /// `confined / full` — 1.0 means cache-insensitive.
    pub sensitivity_ratio: f64,
    /// Re-use-based LLC hit ratio with the full cache.
    pub reuse_hit_ratio: f64,
    /// Re-used LLC bytes with the full cache — the operator's observed
    /// *hot* footprint (streaming residue excluded).
    pub hot_bytes: u64,
    /// The verdict.
    pub cuid: CacheUsageClass,
}

/// Throughput-loss threshold below which an operator counts as
/// cache-insensitive (the paper tolerates a few percent for its scans).
const INSENSITIVE_RATIO: f64 = 0.93;

/// Re-use hit ratio below which an insensitive operator is a pure
/// streamer/polluter.
const NO_REUSE: f64 = 0.25;

/// Probes `build`'s operator and classifies it. `warm`/`measure` are
/// virtual-cycle windows, as in the experiment driver.
pub fn classify_operator(
    cfg: &HierarchyConfig,
    policy: &PartitionPolicy,
    build: &dyn Fn(&mut AddrSpace) -> Box<dyn SimOperator>,
    warm: u64,
    measure: u64,
) -> ClassificationReport {
    let run = |mask: Option<WayMask>| {
        let mut space = AddrSpace::new();
        let out = run_concurrent(
            cfg,
            vec![SimWorkload {
                name: "probe".into(),
                op: build(&mut space),
                mask,
            }],
            warm,
            measure,
        );
        let s = out.streams.into_iter().next().expect("one workload");
        (s.throughput, s.stats)
    };
    let (full_throughput, full_stats) = run(None);
    let (confined_throughput, _) = run(Some(policy.polluter_mask()));

    let sensitivity_ratio = if full_throughput > 0.0 {
        confined_throughput / full_throughput
    } else {
        0.0
    };
    // Hot footprint and re-use from a dedicated probe run: lines that were
    // hit again after their fill (prefetch coverage excluded) — streaming
    // residue does not count.
    let (hot_bytes, reuse_ratio) = hot_footprint_probe(cfg, build, warm + measure);
    let reuse_hit_ratio = reuse_ratio.max(full_stats.llc_effective_hit_ratio());

    let cuid = if sensitivity_ratio < INSENSITIVE_RATIO {
        CacheUsageClass::Sensitive
    } else if reuse_hit_ratio < NO_REUSE {
        CacheUsageClass::Polluting
    } else {
        // Insensitive but re-using: the structure fits the polluter slice
        // today, but may not on other data — report it as Mixed with the
        // measured footprint so the policy can re-decide per execution.
        CacheUsageClass::Mixed { hot_bytes }
    };

    ClassificationReport {
        full_throughput,
        confined_throughput,
        sensitivity_ratio,
        reuse_hit_ratio,
        hot_bytes,
        cuid,
    }
}

/// Runs the operator alone for `cycles` and reads its re-used LLC bytes
/// plus the fraction of demand accesses that were genuine re-uses (L2 and
/// LLC combined).
fn hot_footprint_probe(
    cfg: &HierarchyConfig,
    build: &dyn Fn(&mut AddrSpace) -> Box<dyn SimOperator>,
    cycles: u64,
) -> (u64, f64) {
    let mut space = AddrSpace::new();
    let mut op = build(&mut space);
    let mut mem = ccp_cachesim::MemoryHierarchy::new(*cfg, 1);
    mem.set_parallelism(0, op.parallelism());
    while mem.clock(0) < cycles {
        op.batch(&mut mem, 0);
    }
    let s = mem.stats(0);
    let genuine_hits = (s.l2.hits + s.llc.hits).saturating_sub(s.prefetch_covered);
    let denom = (s.l2.accesses() + s.prefetches_issued).max(1);
    (mem.llc_reused_bytes(0), genuine_hits as f64 / denom as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{AggregationSim, ColumnScanSim, FkJoinSim};

    fn setup() -> (HierarchyConfig, PartitionPolicy) {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        (cfg, policy)
    }

    const WARM: u64 = 1_500_000;
    const MEASURE: u64 = 3_000_000;

    #[test]
    fn scan_classifies_as_polluting() {
        let (cfg, policy) = setup();
        let report = classify_operator(
            &cfg,
            &policy,
            &|s| Box::new(ColumnScanSim::paper_q1(s, 1 << 33)),
            WARM,
            MEASURE,
        );
        assert_eq!(report.cuid, CacheUsageClass::Polluting, "{report:?}");
        assert!(report.sensitivity_ratio > 0.95);
        assert!(report.reuse_hit_ratio < 0.1);
    }

    #[test]
    fn llc_sized_aggregation_classifies_as_sensitive() {
        let (cfg, policy) = setup();
        let report = classify_operator(
            &cfg,
            &policy,
            &|s| Box::new(AggregationSim::paper_q2(s, 1 << 40, 40 << 20, 100_000)),
            WARM,
            MEASURE,
        );
        assert_eq!(report.cuid, CacheUsageClass::Sensitive, "{report:?}");
        assert!(report.sensitivity_ratio < 0.93);
    }

    #[test]
    fn small_bitvec_join_classifies_as_mixed_with_its_footprint() {
        let (cfg, policy) = setup();
        // 10^6 keys: the 125 KB bit vector is re-used heavily but fits the
        // polluter slice -> Mixed, footprint ≈ the bit vector.
        let report = classify_operator(
            &cfg,
            &policy,
            &|s| Box::new(FkJoinSim::new(s, 1_000_000, 1 << 40)),
            WARM,
            MEASURE,
        );
        match report.cuid {
            CacheUsageClass::Mixed { hot_bytes } => {
                assert!(
                    hot_bytes < 1 << 20,
                    "measured hot footprint should be near the 125 KB bit vector, got {hot_bytes}"
                );
            }
            other => panic!("expected Mixed, got {other:?} ({report:?})"),
        }
        assert!(report.reuse_hit_ratio > 0.5, "{report:?}");
    }

    #[test]
    fn classification_agrees_with_paper_policy_masks() {
        // End-to-end: the measured CUIDs produce the paper's masks.
        let (cfg, policy) = setup();
        let scan = classify_operator(
            &cfg,
            &policy,
            &|s| Box::new(ColumnScanSim::paper_q1(s, 1 << 33)),
            WARM,
            MEASURE,
        );
        assert_eq!(policy.mask_for(scan.cuid).bits(), 0x3);
        let agg = classify_operator(
            &cfg,
            &policy,
            &|s| Box::new(AggregationSim::paper_q2(s, 1 << 40, 40 << 20, 100_000)),
            WARM,
            MEASURE,
        );
        assert_eq!(policy.mask_for(agg.cuid).bits(), 0xfffff);
    }
}
