//! Simulated grouped aggregation (paper Query 2).
//!
//! Access pattern per input row (Section III-A/IV-B):
//!
//! 1. sequential read of the packed `V` and `G` code vectors,
//! 2. one random access into `V`'s dictionary (decompression for the
//!    aggregate),
//! 3. one random access into the hash-table footprint (thread-local
//!    pre-aggregation; [`super::HT_BYTES_PER_GROUP`] bytes per group across
//!    all 44 threads).
//!
//! The operator is cache-sensitive exactly when dictionary + hash table are
//! comparable to the (allocated) LLC — Figures 5a–c.

use super::{zipf::ZipfSampler, SimOperator, SimRng, HT_BYTES_PER_GROUP};
use crate::job::CacheUsageClass;
use ccp_cachesim::{AccessKind, AddrSpace, MemoryHierarchy, Region, StreamId};

/// Rows processed per scheduling batch.
const BATCH_ROWS: u64 = 32;

/// Simulated Query 2.
#[derive(Debug)]
pub struct AggregationSim {
    codes: Region,
    dict: Region,
    ht: Region,
    /// Combined V+G packed width in bits.
    code_bits: u64,
    /// Aggregate CPU per row (hash + compare + fold across 44 threads),
    /// centi-cycles.
    cpu_centi_per_row: u64,
    row: u64,
    rows: u64,
    next_byte: u64,
    rng: SimRng,
    /// Number of groups (hash-table entries).
    groups: u64,
    /// Optional Zipf skew on the grouping column: hot groups concentrate
    /// hash-table accesses on a working set much smaller than the table.
    group_skew: Option<ZipfSampler>,
}

impl AggregationSim {
    /// Creates the aggregation over `rows` input rows with `distinct_v`
    /// distinct aggregated values (dictionary of `8 × distinct_v` bytes)
    /// and `groups` groups (hash-table footprint of
    /// `HT_BYTES_PER_GROUP × groups` bytes).
    ///
    /// # Panics
    /// Panics when any cardinality is zero.
    pub fn new(space: &mut AddrSpace, rows: u64, distinct_v: u64, groups: u64) -> Self {
        assert!(
            rows > 0 && distinct_v > 0 && groups > 0,
            "cardinalities must be positive"
        );
        let bits_v = 64 - (distinct_v - 1).max(1).leading_zeros() as u64;
        let bits_g = 64 - (groups - 1).max(1).leading_zeros() as u64;
        let code_bits = bits_v + bits_g;
        AggregationSim {
            codes: space.alloc((rows * code_bits).div_ceil(8)),
            dict: space.alloc(distinct_v * 8),
            ht: space.alloc(groups * HT_BYTES_PER_GROUP),
            code_bits,
            cpu_centi_per_row: 40,
            row: 0,
            rows,
            next_byte: 0,
            rng: SimRng::new(0xa66),
            groups,
            group_skew: None,
        }
    }

    /// Makes the grouping column Zipf-distributed with exponent `s`
    /// (rank 1 = hottest group). The paper's data is uniform; this is the
    /// knob behind the `abl_skew` ablation.
    ///
    /// # Panics
    /// Panics when `s` is not positive and finite.
    pub fn with_group_skew(mut self, s: f64) -> Self {
        self.group_skew = Some(ZipfSampler::new(self.groups, s));
        self
    }

    /// A paper Figure 5 configuration: dictionary of `dict_bytes` and
    /// `groups` groups (rows scaled by the caller).
    pub fn paper_q2(space: &mut AddrSpace, rows: u64, dict_bytes: u64, groups: u64) -> Self {
        Self::new(space, rows, (dict_bytes / 8).max(1), groups)
    }

    /// Dictionary footprint in bytes.
    pub fn dict_bytes(&self) -> u64 {
        self.dict.len
    }

    /// Hash-table footprint in bytes.
    pub fn ht_bytes(&self) -> u64 {
        self.ht.len
    }
}

impl SimOperator for AggregationSim {
    fn name(&self) -> String {
        format!(
            "aggregation({} rows, dict {} MiB, ht {} KiB)",
            self.rows,
            self.dict.len >> 20,
            self.ht.len >> 10
        )
    }

    fn cuid(&self) -> CacheUsageClass {
        CacheUsageClass::Sensitive
    }

    fn parallelism(&self) -> u32 {
        // 44 threads of pointer-chasing updates: high MLP but less than a
        // prefetched stream.
        24
    }

    fn batch(&mut self, mem: &mut MemoryHierarchy, stream: StreamId) -> u64 {
        let todo = BATCH_ROWS.min(self.rows - self.row);
        // 1. Stream the packed codes (sequential, prefetched).
        let end_byte = ((self.row + todo) * self.code_bits)
            .div_ceil(8)
            .min(self.codes.len);
        // First *untouched* line: a batch boundary inside a line means that
        // line was already accessed by the previous batch.
        let mut line_byte =
            self.next_byte.div_ceil(ccp_cachesim::LINE_BYTES) * ccp_cachesim::LINE_BYTES;
        while line_byte < end_byte {
            mem.access(stream, self.codes.addr(line_byte), AccessKind::Read);
            line_byte += ccp_cachesim::LINE_BYTES;
        }
        self.next_byte = end_byte;
        // 2+3. Per row: dictionary decode + hash-table update.
        for _ in 0..todo {
            let d = self.rng.below(self.dict.len);
            mem.access(stream, self.dict.addr(d), AccessKind::Read);
            let h = match &self.group_skew {
                // Skewed: pick the group by Zipf rank, then a byte within
                // its hash-table entry.
                Some(z) => {
                    let g = z.sample(&mut self.rng) - 1;
                    (g * HT_BYTES_PER_GROUP + self.rng.below(HT_BYTES_PER_GROUP))
                        .min(self.ht.len - 1)
                }
                None => self.rng.below(self.ht.len),
            };
            mem.access(stream, self.ht.addr(h), AccessKind::Write);
        }
        mem.advance(stream, todo * self.cpu_centi_per_row);
        mem.retire(stream, todo * 20);
        self.row += todo;
        if self.row >= self.rows {
            self.row = 0;
            self.next_byte = 0;
        }
        todo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::{HierarchyConfig, WayMask};

    /// Runs `rows` rows under `ways` LLC ways; returns cycles taken.
    fn run(ways: u32, dict_bytes: u64, groups: u64, rows: u64) -> u64 {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let mut mem = MemoryHierarchy::new(cfg, 1);
        mem.set_mask(0, WayMask::from_ways(ways).unwrap());
        let mut space = AddrSpace::new();
        let mut agg = AggregationSim::paper_q2(&mut space, 1 << 40, dict_bytes, groups);
        mem.set_parallelism(0, agg.parallelism());
        // Warm up long enough to reach steady state in a 55 MiB LLC (~1M
        // lines must be filled and re-touched), then measure.
        let mut done = 0;
        while done < 1_500_000 {
            done += agg.batch(&mut mem, 0);
        }
        mem.reset_clocks();
        mem.reset_stats();
        let mut done = 0;
        while done < rows {
            done += agg.batch(&mut mem, 0);
        }
        mem.clock(0)
    }

    #[test]
    fn footprints_match_paper() {
        let mut space = AddrSpace::new();
        let agg = AggregationSim::paper_q2(&mut space, 1000, 40 << 20, 100_000);
        assert_eq!(agg.dict_bytes(), (40 << 20) / 8 * 8);
        assert_eq!(agg.ht_bytes(), 55_000_000);
    }

    #[test]
    fn small_working_set_is_insensitive() {
        // 4 MiB dictionary + 100 groups: fits comfortably even in 2 ways
        // (5.5 MiB)... but not quite — use 10^2 groups and compare 20 vs 4
        // ways (11 MiB), where the paper also sees no degradation yet.
        let rows = 400_000;
        let t_full = run(20, 4 << 20, 100, rows);
        let t_4way = run(4, 4 << 20, 100, rows);
        let ratio = t_4way as f64 / t_full as f64;
        assert!(
            ratio < 1.15,
            "small aggregation should not degrade at 11 MiB: {ratio}"
        );
    }

    #[test]
    fn llc_sized_hashtable_is_highly_sensitive() {
        // 10^5 groups = 55 MB hash table: shrinking the cache to 2 ways
        // must hurt badly (paper: -67%).
        let rows = 400_000;
        let t_full = run(20, 4 << 20, 100_000, rows);
        let t_small = run(2, 4 << 20, 100_000, rows);
        let ratio = t_small as f64 / t_full as f64;
        assert!(
            ratio > 1.5,
            "LLC-sized hash table must be cache-sensitive: {ratio}"
        );
    }

    #[test]
    fn oversized_hashtable_is_less_sensitive() {
        // 10^6 groups = 550 MB: misses dominate even with the full cache,
        // so the *relative* slowdown from shrinking is smaller than in the
        // LLC-sized case.
        let rows = 300_000;
        let sized = run(2, 4 << 20, 100_000, rows) as f64 / run(20, 4 << 20, 100_000, rows) as f64;
        let over =
            run(2, 4 << 20, 1_000_000, rows) as f64 / run(20, 4 << 20, 1_000_000, rows) as f64;
        assert!(
            over < sized,
            "oversized HT should be relatively less sensitive: over {over} vs sized {sized}"
        );
    }

    #[test]
    fn group_skew_raises_the_hit_ratio_of_an_oversized_table() {
        // 1e6 groups (550 MB table, hopeless for the LLC) — but with heavy
        // skew the hot head fits, so the full-cache hit ratio recovers.
        let run = |skew: Option<f64>| {
            let cfg = HierarchyConfig::broadwell_e5_2699_v4();
            let mut mem = MemoryHierarchy::new(cfg, 1);
            let mut space = AddrSpace::new();
            let mut agg = AggregationSim::paper_q2(&mut space, 1 << 40, 4 << 20, 1_000_000);
            if let Some(s) = skew {
                agg = agg.with_group_skew(s);
            }
            mem.set_parallelism(0, agg.parallelism());
            let mut done = 0;
            while done < 1_000_000 {
                done += agg.batch(&mut mem, 0);
            }
            mem.reset_clocks();
            mem.reset_stats();
            let mut done = 0;
            while done < 300_000 {
                done += agg.batch(&mut mem, 0);
            }
            mem.stats(0).llc.hit_ratio()
        };
        let uniform = run(None);
        let skewed = run(Some(1.1));
        assert!(
            skewed > uniform + 0.15,
            "skew must concentrate the working set: uniform {uniform:.3} vs skewed {skewed:.3}"
        );
    }

    #[test]
    fn work_units_are_rows() {
        let mut space = AddrSpace::new();
        let agg = AggregationSim::new(&mut space, 10, 10, 10);
        assert_eq!(agg.work_unit(), "rows");
        assert_eq!(agg.cuid(), CacheUsageClass::Sensitive);
    }
}
