//! Simulated OLTP point query (the S/4HANA ACDOCA workload, Section VI-E).
//!
//! Access pattern per query execution:
//!
//! 1. probe the inverted indexes of the five primary-key columns
//!    (directory access + postings access each),
//! 2. project `k` columns: for each, one random access into the column's
//!    dictionary (value materialization) and one into the column data.
//!
//! The projected dictionaries are the query's cache working set: the more
//! columns are projected (and the bigger their dictionaries), the more
//! cache-sensitive the query — the paper's Figure 12 and the 2→13-column
//! sweep of Section VI-E.

use super::{SimOperator, SimRng};
use crate::job::CacheUsageClass;
use ccp_cachesim::{AccessKind, AddrSpace, MemoryHierarchy, Region, StreamId};

/// Queries per scheduling batch (point queries are short).
const BATCH_QUERIES: u64 = 1;

/// One projected column's simulated storage.
#[derive(Debug)]
struct ProjectedColumn {
    dict: Region,
    data: Region,
}

/// Simulated S/4HANA-style point select.
#[derive(Debug)]
pub struct OltpSim {
    /// Inverted-index directories of the key columns.
    indexes: Vec<Region>,
    projected: Vec<ProjectedColumn>,
    cpu_centi_per_query: u64,
    rng: SimRng,
}

impl OltpSim {
    /// Creates the workload: `index_bytes` per key-column index directory
    /// and one projected column per entry of `dict_sizes` (dictionary
    /// bytes). `data_bytes` is the packed column-data size (ACDOCA has
    /// 151 M rows, so data accesses practically always miss).
    ///
    /// # Panics
    /// Panics when no column is projected.
    pub fn new(
        space: &mut AddrSpace,
        index_bytes: &[u64],
        dict_sizes: &[u64],
        data_bytes: u64,
    ) -> Self {
        assert!(
            !dict_sizes.is_empty(),
            "a projection needs at least one column"
        );
        OltpSim {
            indexes: index_bytes
                .iter()
                .map(|&b| space.alloc(b.max(64)))
                .collect(),
            projected: dict_sizes
                .iter()
                .map(|&d| ProjectedColumn {
                    dict: space.alloc(d.max(64)),
                    data: space.alloc(data_bytes.max(64)),
                })
                .collect(),
            cpu_centi_per_query: 12_000,
            rng: SimRng::new(0x01_7b),
        }
    }

    /// The paper's Figure 12 configuration: five key-column indexes and the
    /// `k` largest ACDOCA dictionaries. `k = 13` is Figure 12a, `k = 6`
    /// (smaller dictionaries) is Figure 12b.
    pub fn paper_acdoca(space: &mut AddrSpace, dict_sizes: &[u64]) -> Self {
        // Five PK-column index directories; ACDOCA's keys (client, ledger,
        // company code, fiscal year, document number) have wildly varying
        // cardinality — the document number dominates.
        let indexes = [512 << 10, 64 << 10, 256 << 10, 128 << 10, 6 << 20];
        // 151M rows, ~2-4 byte codes per column.
        Self::new(space, &indexes, dict_sizes, 400 << 20)
    }

    /// Total bytes of dictionaries + index directories — the working set
    /// that decides this query's cache sensitivity.
    pub fn working_set_bytes(&self) -> u64 {
        self.indexes.iter().map(|r| r.len).sum::<u64>()
            + self.projected.iter().map(|c| c.dict.len).sum::<u64>()
    }
}

impl SimOperator for OltpSim {
    fn name(&self) -> String {
        format!(
            "oltp_point_select({} cols, ws {} MiB)",
            self.projected.len(),
            self.working_set_bytes() >> 20
        )
    }

    fn cuid(&self) -> CacheUsageClass {
        // OLTP queries run in a dedicated pool with the full cache
        // (Section V-C).
        CacheUsageClass::Sensitive
    }

    fn parallelism(&self) -> u32 {
        // A handful of concurrent OLTP sessions, little intra-query
        // parallelism.
        6
    }

    fn batch(&mut self, mem: &mut MemoryHierarchy, stream: StreamId) -> u64 {
        for _ in 0..BATCH_QUERIES {
            // Index probes on the five key columns.
            for i in 0..self.indexes.len() {
                let r = self.indexes[i];
                let dir = self.rng.below(r.len);
                mem.access(stream, r.addr(dir), AccessKind::Read);
                let postings = self.rng.below(r.len);
                mem.access(stream, r.addr(postings), AccessKind::Read);
            }
            // Projection: dictionary + data access per column.
            for i in 0..self.projected.len() {
                let d = self.rng.below(self.projected[i].dict.len);
                mem.access(stream, self.projected[i].dict.addr(d), AccessKind::Read);
                let row = self.rng.below(self.projected[i].data.len);
                mem.access(stream, self.projected[i].data.addr(row), AccessKind::Read);
            }
        }
        mem.advance(stream, BATCH_QUERIES * self.cpu_centi_per_query);
        mem.retire(stream, BATCH_QUERIES * 1200);
        BATCH_QUERIES
    }

    fn work_unit(&self) -> &'static str {
        "queries"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::HierarchyConfig;

    #[test]
    fn working_set_scales_with_projection() {
        let mut space = AddrSpace::new();
        let narrow = OltpSim::paper_acdoca(&mut space, &[4 << 20, 2 << 20]);
        let wide = OltpSim::paper_acdoca(
            &mut space,
            &[8 << 20, 6 << 20, 5 << 20, 4 << 20, 4 << 20, 3 << 20],
        );
        assert!(wide.working_set_bytes() > narrow.working_set_bytes());
    }

    #[test]
    fn batch_counts_queries() {
        let mut space = AddrSpace::new();
        let mut q = OltpSim::new(&mut space, &[1024], &[1024], 1 << 20);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
        assert_eq!(q.batch(&mut mem, 0), BATCH_QUERIES);
        assert_eq!(q.work_unit(), "queries");
        assert_eq!(q.cuid(), CacheUsageClass::Sensitive);
    }

    #[test]
    fn accesses_per_query_match_model() {
        let mut space = AddrSpace::new();
        let mut q = OltpSim::new(&mut space, &[1024, 1024], &[1024, 1024, 1024], 1 << 20);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
        q.batch(&mut mem, 0);
        // 2 indexes * 2 + 3 columns * 2 = 10 accesses per query.
        let s = mem.stats(0);
        assert_eq!(s.l2.accesses(), BATCH_QUERIES * 10);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_projection() {
        let mut space = AddrSpace::new();
        let _ = OltpSim::new(&mut space, &[1024], &[], 1024);
    }
}
