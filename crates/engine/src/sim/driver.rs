//! Virtual-time concurrent workload driver.
//!
//! Reproduces the paper's measurement protocol (Section VI-A): "execute all
//! queries repeatedly for 90 seconds, report each query's throughput
//! normalized to its isolated throughput". Here the 90 wall-clock seconds
//! become a window of *virtual cycles*; concurrency is deterministic — the
//! driver always steps the stream with the smallest virtual clock, so
//! streams interleave on the shared LLC and DRAM channel exactly the same
//! way in every run.

use super::SimOperator;
use ccp_cachesim::{HierarchyConfig, MemoryHierarchy, StreamStats, WayMask};

/// One concurrent query: an operator plus its CAT mask (`None` = full
/// cache, the unpartitioned baseline).
pub struct SimWorkload {
    /// Display name.
    pub name: String,
    /// The operator twin.
    pub op: Box<dyn SimOperator>,
    /// LLC way mask; `None` grants the full cache.
    pub mask: Option<WayMask>,
}

impl SimWorkload {
    /// Wraps an operator with the full-cache mask.
    pub fn unpartitioned(name: impl Into<String>, op: Box<dyn SimOperator>) -> Self {
        SimWorkload {
            name: name.into(),
            op,
            mask: None,
        }
    }

    /// Wraps an operator with an explicit mask.
    pub fn masked(name: impl Into<String>, op: Box<dyn SimOperator>, mask: WayMask) -> Self {
        SimWorkload {
            name: name.into(),
            op,
            mask: Some(mask),
        }
    }
}

/// Per-stream measurement results.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Workload name.
    pub name: String,
    /// Work units completed in the measurement window.
    pub work: u64,
    /// What `work` counts.
    pub work_unit: &'static str,
    /// Virtual cycles elapsed for this stream.
    pub cycles: u64,
    /// Work per kilo-cycle (the throughput the paper normalizes).
    pub throughput: f64,
    /// The stream's cache statistics over the window.
    pub stats: StreamStats,
}

/// Whole-run results.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// One outcome per workload, in submission order.
    pub streams: Vec<StreamOutcome>,
    /// System-wide counters (the paper's PCM view): merged stream stats.
    pub combined: StreamStats,
    /// Bytes that crossed the DRAM channel in the measurement window.
    pub dram_bytes: u64,
    /// Cumulative DRAM queuing delay (cycles) — a congestion indicator.
    pub total_queue_cycles: u64,
}

impl RunOutcome {
    /// System-wide LLC hit ratio.
    pub fn llc_hit_ratio(&self) -> f64 {
        self.combined.llc.hit_ratio()
    }

    /// System-wide LLC misses per instruction.
    pub fn llc_mpi(&self) -> f64 {
        self.combined.llc_mpi()
    }
}

/// Default warm-up window: enough virtual cycles for every working set to
/// reach steady state in a 55 MiB LLC (≈ 5 ms of virtual time at 2.2 GHz).
pub const DEFAULT_WARM_CYCLES: u64 = 12_000_000;

/// Default measurement window.
pub const DEFAULT_MEASURE_CYCLES: u64 = 24_000_000;

/// Runs `workloads` concurrently on one simulated socket.
///
/// Phases: warm-up (`warm_cycles` of virtual time per stream, statistics
/// discarded, caches stay warm), then measurement until every stream's
/// clock passes `measure_cycles`.
///
/// # Panics
/// Panics when `workloads` is empty or a mask does not fit the LLC.
pub fn run_concurrent(
    cfg: &HierarchyConfig,
    mut workloads: Vec<SimWorkload>,
    warm_cycles: u64,
    measure_cycles: u64,
) -> RunOutcome {
    assert!(!workloads.is_empty(), "need at least one workload");
    let n = workloads.len();
    let mut mem = MemoryHierarchy::new(*cfg, n);
    for (s, w) in workloads.iter().enumerate() {
        let mask = w
            .mask
            .unwrap_or_else(|| WayMask::full(cfg.llc.ways).expect("validated LLC way count"));
        mem.set_mask(s, mask);
        mem.set_parallelism(s, w.op.parallelism());
    }

    // Warm-up phase: fill caches, discard statistics.
    step_until(&mut mem, &mut workloads, warm_cycles, &mut vec![0u64; n]);
    mem.reset_clocks();
    mem.reset_stats();

    // Measurement phase.
    let mut work = vec![0u64; n];
    step_until(&mut mem, &mut workloads, measure_cycles, &mut work);

    let streams = workloads
        .iter()
        .enumerate()
        .map(|(s, w)| {
            let cycles = mem.clock(s);
            StreamOutcome {
                name: w.name.clone(),
                work: work[s],
                work_unit: w.op.work_unit(),
                cycles,
                throughput: if cycles == 0 {
                    0.0
                } else {
                    work[s] as f64 * 1000.0 / cycles as f64
                },
                stats: *mem.stats(s),
            }
        })
        .collect();
    RunOutcome {
        streams,
        combined: mem.combined_stats(),
        dram_bytes: mem.dram().bytes_transferred(),
        total_queue_cycles: mem.dram().total_queue_cycles(),
    }
}

/// Steps the least-advanced stream until every stream's clock is at least
/// `until` cycles, accumulating work.
fn step_until(
    mem: &mut MemoryHierarchy,
    workloads: &mut [SimWorkload],
    until: u64,
    work: &mut [u64],
) {
    loop {
        // Pick the stream with the smallest clock that is still below the
        // target — deterministic tie-break by index.
        let mut next: Option<(usize, u64)> = None;
        for s in 0..workloads.len() {
            let c = mem.clock_centi(s);
            if c < until * 100 && next.map(|(_, best)| c < best).unwrap_or(true) {
                next = Some((s, c));
            }
        }
        let Some((s, _)) = next else { break };
        work[s] += workloads[s].op.batch(mem, s);
    }
}

/// Measures one operator running alone with the full cache — the
/// normalization denominator for every figure.
pub fn run_isolated(
    cfg: &HierarchyConfig,
    name: impl Into<String>,
    op: Box<dyn SimOperator>,
    warm_cycles: u64,
    measure_cycles: u64,
) -> StreamOutcome {
    let outcome = run_concurrent(
        cfg,
        vec![SimWorkload::unpartitioned(name, op)],
        warm_cycles,
        measure_cycles,
    );
    outcome
        .streams
        .into_iter()
        .next()
        .expect("one workload submitted")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{AggregationSim, ColumnScanSim};
    use ccp_cachesim::AddrSpace;

    fn cfg() -> HierarchyConfig {
        HierarchyConfig::broadwell_e5_2699_v4()
    }

    const WARM: u64 = 2_000_000;
    const MEASURE: u64 = 4_000_000;

    fn scan(space: &mut AddrSpace) -> Box<ColumnScanSim> {
        Box::new(ColumnScanSim::paper_q1(space, 1 << 33))
    }

    fn agg(space: &mut AddrSpace, groups: u64) -> Box<AggregationSim> {
        Box::new(AggregationSim::paper_q2(space, 1 << 40, 4 << 20, groups))
    }

    #[test]
    fn isolated_run_reports_throughput() {
        let mut space = AddrSpace::new();
        let out = run_isolated(&cfg(), "q1", scan(&mut space), WARM, MEASURE);
        assert!(out.work > 0);
        assert!(out.throughput > 0.0);
        assert!(out.cycles >= MEASURE);
        assert_eq!(out.work_unit, "rows");
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            let mut space = AddrSpace::new();
            let w = vec![
                SimWorkload::unpartitioned("q1", scan(&mut space)),
                SimWorkload::unpartitioned("q2", agg(&mut space, 100_000)),
            ];
            let out = run_concurrent(&cfg(), w, WARM, MEASURE);
            (out.streams[0].work, out.streams[1].work, out.dram_bytes)
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn streams_progress_together() {
        let mut space = AddrSpace::new();
        let w = vec![
            SimWorkload::unpartitioned("q1", scan(&mut space)),
            SimWorkload::unpartitioned("q2", agg(&mut space, 100_000)),
        ];
        let out = run_concurrent(&cfg(), w, WARM, MEASURE);
        // Both streams reached the measurement target.
        for s in &out.streams {
            assert!(s.cycles >= MEASURE, "{} stalled at {}", s.name, s.cycles);
            assert!(s.work > 0);
        }
    }

    #[test]
    fn concurrency_slows_the_sensitive_query() {
        // The teaser (Figure 1): aggregation concurrent with a scan is
        // slower than aggregation alone.
        let mut space = AddrSpace::new();
        let alone = run_isolated(&cfg(), "q2", agg(&mut space, 100_000), WARM, MEASURE);
        let mut space = AddrSpace::new();
        let w = vec![
            SimWorkload::unpartitioned("q2", agg(&mut space, 100_000)),
            SimWorkload::unpartitioned("q1", scan(&mut space)),
        ];
        let both = run_concurrent(&cfg(), w, WARM, MEASURE);
        let normalized = both.streams[0].throughput / alone.throughput;
        assert!(
            normalized < 0.92,
            "concurrent scan must hurt the aggregation, got {normalized}"
        );
    }

    #[test]
    fn partitioning_recovers_aggregation_throughput() {
        // The paper's headline effect: confining the scan to 0x3 improves
        // the aggregation vs. the unpartitioned concurrent run.
        let mut space = AddrSpace::new();
        let w = vec![
            SimWorkload::unpartitioned("q2", agg(&mut space, 100_000)),
            SimWorkload::unpartitioned("q1", scan(&mut space)),
        ];
        let base = run_concurrent(&cfg(), w, WARM, MEASURE);

        let mut space = AddrSpace::new();
        let w = vec![
            SimWorkload::unpartitioned("q2", agg(&mut space, 100_000)),
            SimWorkload::masked("q1", scan(&mut space), WayMask::new(0x3).unwrap()),
        ];
        let part = run_concurrent(&cfg(), w, WARM, MEASURE);

        let gain = part.streams[0].throughput / base.streams[0].throughput;
        assert!(
            gain > 1.05,
            "partitioning must help the aggregation, gain {gain}"
        );
        // And the scan must not collapse (paper: it even improves).
        let scan_ratio = part.streams[1].throughput / base.streams[1].throughput;
        assert!(
            scan_ratio > 0.9,
            "the confined scan must not regress, ratio {scan_ratio}"
        );
    }

    #[test]
    fn combined_stats_cover_all_streams() {
        let mut space = AddrSpace::new();
        let w = vec![
            SimWorkload::unpartitioned("q1", scan(&mut space)),
            SimWorkload::unpartitioned("q2", agg(&mut space, 1000)),
        ];
        let out = run_concurrent(&cfg(), w, WARM, MEASURE);
        let sum: u64 = out.streams.iter().map(|s| s.stats.llc.misses).sum();
        assert_eq!(out.combined.llc.misses, sum);
        assert!(out.dram_bytes > 0);
        assert!(out.llc_hit_ratio() >= 0.0 && out.llc_hit_ratio() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_run_rejected() {
        let _ = run_concurrent(&cfg(), vec![], 1, 1);
    }
}
