//! Simulated column scan (paper Query 1).
//!
//! Access pattern (Section III-A/IV-A): a pure sequential read of the
//! bit-packed column, one pass, no re-use, no dictionary access. The
//! hardware prefetcher hides the DRAM latency, so the scan runs at memory
//! bandwidth and is insensitive to its LLC allocation — but every line it
//! pulls evicts somebody else's line, which is the pollution the paper
//! confines with mask `0x3`.

use super::{SimOperator, SimRng};
use crate::job::CacheUsageClass;
use ccp_cachesim::{AccessKind, AddrSpace, MemoryHierarchy, Region, StreamId};

/// Rows processed per scheduling batch.
const BATCH_ROWS: u64 = 256;

/// Simulated Query 1.
#[derive(Debug)]
pub struct ColumnScanSim {
    column: Region,
    /// Code width in bits (paper: 20 bits for 10⁶ distinct values).
    bits: u64,
    /// Aggregate CPU cost per row in centi-cycles. The 22-core SIMD scan
    /// retires ~25 rows per aggregate cycle, so ~4 centi-cycles/row.
    cpu_centi_per_row: u64,
    /// Cursor in rows.
    row: u64,
    rows: u64,
    /// Last column line already accessed (for sequential line stepping).
    next_byte: u64,
    _rng: SimRng,
}

impl ColumnScanSim {
    /// Creates the scan over a column of `rows` rows packed at `bits` per
    /// code, allocating its region from `space`.
    ///
    /// The region must comfortably exceed the LLC so that wrap-around never
    /// turns the stream cache-resident; the paper's column is 2.5 GB.
    ///
    /// # Panics
    /// Panics when rows or bits are zero.
    pub fn new(space: &mut AddrSpace, rows: u64, bits: u64) -> Self {
        assert!(rows > 0 && bits > 0, "scan needs rows and a code width");
        let bytes = (rows * bits).div_ceil(8);
        ColumnScanSim {
            column: space.alloc(bytes),
            bits,
            cpu_centi_per_row: 4,
            row: 0,
            rows,
            next_byte: 0,
            _rng: SimRng::new(0x5ca9),
        }
    }

    /// The paper's exact Query 1 configuration, scaled in row count only:
    /// 20-bit codes (10⁶ distinct values).
    pub fn paper_q1(space: &mut AddrSpace, rows: u64) -> Self {
        Self::new(space, rows, 20)
    }

    /// Bytes the full column occupies.
    pub fn column_bytes(&self) -> u64 {
        self.column.len
    }
}

impl SimOperator for ColumnScanSim {
    fn name(&self) -> String {
        format!("column_scan({} rows @{}bit)", self.rows, self.bits)
    }

    fn cuid(&self) -> CacheUsageClass {
        CacheUsageClass::Polluting
    }

    fn parallelism(&self) -> u32 {
        // 44 hardware threads, each with deep prefetch streams: hundreds of
        // lines in flight. 96 puts the latency-limited rate above the
        // channel rate (176 cy / 96 < 2.2 cy per line), so the scan is
        // genuinely bandwidth-bound, as measured in the paper.
        96
    }

    fn batch(&mut self, mem: &mut MemoryHierarchy, stream: StreamId) -> u64 {
        let todo = BATCH_ROWS.min(self.rows - self.row);
        let end_bit = (self.row + todo) * self.bits;
        let end_byte = end_bit.div_ceil(8).min(self.column.len);
        // Touch each new cache line the batch's rows occupy, in order.
        // First *untouched* line: a batch boundary inside a line means that
        // line was already accessed by the previous batch.
        let mut line_byte =
            self.next_byte.div_ceil(ccp_cachesim::LINE_BYTES) * ccp_cachesim::LINE_BYTES;
        while line_byte < end_byte {
            mem.access(stream, self.column.addr(line_byte), AccessKind::Read);
            line_byte += ccp_cachesim::LINE_BYTES;
        }
        self.next_byte = end_byte;
        mem.advance(stream, todo * self.cpu_centi_per_row);
        mem.retire(stream, todo * 2);
        self.row += todo;
        if self.row >= self.rows {
            // Wrap: the paper re-executes the query back to back.
            self.row = 0;
            self.next_byte = 0;
        }
        todo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::{HierarchyConfig, WayMask};

    fn run_rows(mask_ways: u32, rows: u64) -> (u64, ccp_cachesim::StreamStats) {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let mut mem = MemoryHierarchy::new(cfg, 1);
        mem.set_mask(0, WayMask::from_ways(mask_ways).unwrap());
        let mut space = AddrSpace::new();
        let mut scan = ColumnScanSim::paper_q1(&mut space, 100_000_000);
        mem.set_parallelism(0, scan.parallelism());
        let mut done = 0;
        while done < rows {
            done += scan.batch(&mut mem, 0);
        }
        (mem.clock(0), *mem.stats(0))
    }

    #[test]
    fn scan_touches_each_line_once() {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let mut mem = MemoryHierarchy::new(cfg, 1);
        let mut space = AddrSpace::new();
        let mut scan = ColumnScanSim::new(&mut space, 1 << 16, 20);
        let mut rows = 0;
        while rows < (1 << 16) {
            rows += scan.batch(&mut mem, 0);
        }
        // 65536 rows * 20 bits / 8 = 163,840 bytes = 2,560 lines; with
        // prefetch every line still crosses DRAM exactly once, plus at most
        // `prefetch_depth` lines of over-prefetch past the end.
        let depth = u64::from(mem.config().prefetch_depth);
        let lines = mem.dram().lines_transferred();
        assert!(
            (2560..=2560 + depth).contains(&lines),
            "unexpected DRAM traffic: {lines}"
        );
    }

    #[test]
    fn scan_throughput_insensitive_to_mask() {
        // The heart of Figure 4: cycles at 2 ways within a few percent of
        // cycles at 20 ways.
        let (t_full, _) = run_rows(20, 2_000_000);
        let (t_small, _) = run_rows(2, 2_000_000);
        let ratio = t_small as f64 / t_full as f64;
        assert!(
            (0.97..=1.06).contains(&ratio),
            "scan must be LLC-size-insensitive, cycle ratio {ratio}"
        );
    }

    #[test]
    fn scan_llc_hit_ratio_is_low() {
        // Paper: LLC hit ratio below 0.08 for Query 1. Demand accesses that
        // hit only do so on prefetched lines.
        let (_, stats) = run_rows(20, 2_000_000);
        // Practically all demanded lines came from DRAM (demand or
        // prefetch), never re-used.
        let per_line_hits = stats.llc.hits.saturating_sub(stats.prefetch_covered);
        let ratio = per_line_hits as f64 / stats.llc.accesses().max(1) as f64;
        assert!(ratio < 0.08, "unexpected LLC re-use in a scan: {ratio}");
    }

    #[test]
    fn scan_is_bandwidth_bound() {
        // Throughput ≈ DRAM bandwidth: 2M rows * 2.5 B = 5 MB; at 64 GB/s
        // and 2.2 GHz that is ≈ 172k cycles minimum. Allow 2x slack.
        let (cycles, _) = run_rows(20, 2_000_000);
        // 2M rows * 2.5 B / 64 B = 78,125 lines at 2.2 cycles each.
        let min_cycles = 171_000;
        assert!(cycles >= min_cycles, "faster than DRAM allows: {cycles}");
        assert!(
            cycles < min_cycles * 2,
            "scan far below bandwidth: {cycles}"
        );
    }

    #[test]
    fn wraparound_restarts_column() {
        let cfg = HierarchyConfig::tiny_for_tests();
        let mut mem = MemoryHierarchy::new(cfg, 1);
        let mut space = AddrSpace::new();
        let mut scan = ColumnScanSim::new(&mut space, 1000, 20);
        let mut total = 0;
        for _ in 0..10 {
            total += scan.batch(&mut mem, 0);
        }
        assert!(total >= 1000, "scan must wrap and keep producing work");
    }
}
