//! Composite simulated queries: a cyclic sequence of operator phases.
//!
//! Real queries are not single operators — a TPC-H query scans, joins and
//! aggregates in sequence. [`CompositeSim`] chains operator twins: each
//! phase runs for its row quota, then execution moves to the next phase;
//! after the last phase the query restarts (the paper's repeat-for-90 s
//! protocol). Work is counted in rows across all phases, which cancels out
//! in the normalized-throughput metric the paper reports.

use super::SimOperator;
use crate::job::CacheUsageClass;
use ccp_cachesim::{MemoryHierarchy, StreamId};

/// One phase: an operator twin plus the number of rows it contributes to
/// each execution of the composite query.
pub struct Phase {
    /// The operator executed in this phase.
    pub op: Box<dyn SimOperator>,
    /// Rows processed before moving to the next phase.
    pub quota: u64,
}

/// A query composed of sequential operator phases.
pub struct CompositeSim {
    name: String,
    phases: Vec<Phase>,
    current: usize,
    done_in_phase: u64,
    cuid: CacheUsageClass,
}

impl CompositeSim {
    /// Builds a composite query. The CUID defaults to
    /// [`CacheUsageClass::Sensitive`] — composite analytical queries keep
    /// the full cache in the paper's evaluation (only the deliberately
    /// polluting micro-queries are confined).
    ///
    /// # Panics
    /// Panics when `phases` is empty or any quota is zero.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(
            !phases.is_empty(),
            "a composite query needs at least one phase"
        );
        assert!(
            phases.iter().all(|p| p.quota > 0),
            "phase quotas must be positive"
        );
        CompositeSim {
            name: name.into(),
            phases,
            current: 0,
            done_in_phase: 0,
            cuid: CacheUsageClass::Sensitive,
        }
    }

    /// Overrides the composite's CUID.
    pub fn with_cuid(mut self, cuid: CacheUsageClass) -> Self {
        self.cuid = cuid;
        self
    }

    /// Total rows per full execution of the query.
    pub fn rows_per_execution(&self) -> u64 {
        self.phases.iter().map(|p| p.quota).sum()
    }

    /// Number of phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

impl SimOperator for CompositeSim {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn cuid(&self) -> CacheUsageClass {
        self.cuid
    }

    fn parallelism(&self) -> u32 {
        // Per-phase parallelism is applied in `batch`; this is only the
        // initial value before the first batch runs.
        self.phases[self.current].op.parallelism()
    }

    fn batch(&mut self, mem: &mut MemoryHierarchy, stream: StreamId) -> u64 {
        let phase = &mut self.phases[self.current];
        // Each phase has its own memory-level parallelism (a scan phase
        // overlaps far more than a hash probe phase).
        mem.set_parallelism(stream, phase.op.parallelism());
        let n = phase.op.batch(mem, stream);
        self.done_in_phase += n;
        if self.done_in_phase >= phase.quota {
            self.done_in_phase = 0;
            self.current = (self.current + 1) % self.phases.len();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{AggregationSim, ColumnScanSim};
    use ccp_cachesim::{AddrSpace, HierarchyConfig};

    fn composite(space: &mut AddrSpace) -> CompositeSim {
        CompositeSim::new(
            "q",
            vec![
                Phase {
                    op: Box::new(ColumnScanSim::new(space, 1 << 20, 20)),
                    quota: 1000,
                },
                Phase {
                    op: Box::new(AggregationSim::new(space, 1 << 20, 1000, 100)),
                    quota: 500,
                },
            ],
        )
    }

    #[test]
    fn phases_advance_in_order() {
        let mut space = AddrSpace::new();
        let mut q = composite(&mut space);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
        assert_eq!(q.rows_per_execution(), 1500);
        assert_eq!(q.phase_count(), 2);
        // Run through at least one full execution.
        let mut total = 0;
        while total < 1500 {
            total += q.batch(&mut mem, 0);
        }
        // After 1500+ rows we must be back at (or past) the scan phase.
        assert!(q.current == 0 || total > 1500);
    }

    #[test]
    fn parallelism_follows_the_active_phase() {
        let mut space = AddrSpace::new();
        let mut q = composite(&mut space);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
        // First batch: scan phase parallelism (96).
        q.batch(&mut mem, 0);
        // Run until the aggregation phase is active and check the stream's
        // effective parallelism switched by observing batch costs.
        let mut total = 0;
        while q.current == 0 {
            total += q.batch(&mut mem, 0);
        }
        let before = mem.clock_centi(0);
        q.batch(&mut mem, 0);
        assert!(
            mem.clock_centi(0) > before,
            "aggregation phase must cost cycles"
        );
        assert!(total >= 1000 - 256);
    }

    #[test]
    fn default_cuid_is_sensitive_and_overridable() {
        let mut space = AddrSpace::new();
        let q = composite(&mut space);
        assert_eq!(q.cuid(), CacheUsageClass::Sensitive);
        let q = composite(&mut space).with_cuid(CacheUsageClass::Polluting);
        assert_eq!(q.cuid(), CacheUsageClass::Polluting);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_composite_rejected() {
        let _ = CompositeSim::new("q", vec![]);
    }
}
