//! Simulated operator twins.
//!
//! Each native operator has a *twin* here that replays the operator's
//! memory-access pattern — derived from the paper's Sections II–IV — against
//! the `ccp-cachesim` hierarchy. Twins process work in small batches under a
//! virtual-time scheduler ([`driver`]), which is how the harness reproduces
//! the paper's isolated LLC sweeps (Figures 4–6) and concurrent workloads
//! (Figures 1, 9–12) without CAT hardware.
//!
//! ## Scaling
//!
//! Data-structure *sizes* (dictionaries, hash tables, bit vectors, index
//! directories) are kept at paper scale, because their ratio to the 55 MiB
//! LLC is what produces every effect in the paper. Row *counts* are scaled
//! down: steady-state hit ratios converge once the caches are warm, so the
//! normalized-throughput curves keep their shape while each experiment run
//! stays in the millions (not billions) of simulated accesses. The warm-up
//! phase of the driver guarantees measurements happen at steady state.
//!
//! ## Cost constants
//!
//! A simulated stream stands for one whole multi-threaded query (the paper
//! executes each query on all 22 cores / 44 threads). Per-row CPU costs are
//! therefore *aggregate* costs (cycles divided by the effective thread
//! count), and each operator declares a memory-level parallelism that
//! divides observed latencies. The constants are documented at each
//! operator and validated by the shape tests in `tests/`.

pub mod aggregate;
pub mod classify;
pub mod composite;
pub mod driver;
pub mod join;
pub mod oltp;
pub mod scan;
pub mod zipf;

pub use aggregate::AggregationSim;
pub use classify::{classify_operator, ClassificationReport};
pub use composite::{CompositeSim, Phase};
pub use driver::{run_concurrent, run_isolated, RunOutcome, SimWorkload, StreamOutcome};
pub use join::FkJoinSim;
pub use oltp::OltpSim;
pub use scan::ColumnScanSim;
pub use zipf::ZipfSampler;

use crate::job::CacheUsageClass;
use ccp_cachesim::{MemoryHierarchy, StreamId};

/// Hash-table bytes per group, aggregated across the paper's 44 worker
/// threads (~12.5 B per thread-local entry × 44): with this constant,
/// 10⁵ groups occupy ≈ 55 MB — "the hash table occupies all of the LLC"
/// (Section IV-B), which anchors every aggregation curve.
pub const HT_BYTES_PER_GROUP: u64 = 550;

/// A database operator expressed as a generator of memory accesses.
pub trait SimOperator: Send {
    /// Operator label for reports.
    fn name(&self) -> String;

    /// The operator's cache usage identifier (drives partition masks).
    fn cuid(&self) -> CacheUsageClass;

    /// Memory-level parallelism of the stream (latency divisor).
    fn parallelism(&self) -> u32;

    /// Processes one batch on `stream`, issuing its accesses against `mem`
    /// and advancing the stream's virtual clock. Returns the work units
    /// (rows or queries) completed. Operators are cyclic: they restart
    /// their input when exhausted, like the paper's repeat-for-90-seconds
    /// driver.
    fn batch(&mut self, mem: &mut MemoryHierarchy, stream: StreamId) -> u64;

    /// The unit `batch` counts ("rows" or "queries").
    fn work_unit(&self) -> &'static str {
        "rows"
    }
}

/// Deterministic 64-bit generator (SplitMix64) used by every simulated
/// operator — no global RNG state, every run replayable.
#[derive(Debug, Clone)]
pub struct SimRng(u64);

impl SimRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SimRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    /// Panics when `n` is zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift bounded generation (Lemire) — unbiased enough for
        // cache modeling and branch-free.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound_and_spreads() {
        let mut r = SimRng::new(42);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            let v = r.below(10);
            assert!(v < 10);
            buckets[v as usize] += 1;
        }
        // Roughly uniform: every bucket within 3x of the mean.
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > 300 && b < 3000, "bucket {i} has {b}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ht_constant_anchors_paper_sizes() {
        // 10^5 groups ≈ the 55 MiB LLC; 10^6 groups far exceed it.
        assert_eq!(100_000 * HT_BYTES_PER_GROUP, 55_000_000);
        const { assert!(1_000_000 * HT_BYTES_PER_GROUP > 8 * 55 * 1024 * 1024) };
        // 10^4 groups per thread (~125 KiB) fit the 256 KiB L2.
        const { assert!(10_000 * HT_BYTES_PER_GROUP / 44 < 256 * 1024) };
    }
}
