//! # ccp-engine
//!
//! The execution engine with integrated cache partitioning — the paper's
//! primary contribution (Section V).
//!
//! ## Architecture
//!
//! Like SAP HANA, the engine executes **jobs** through a pool of *job
//! worker* threads; a job encapsulates (a slice of) one operator. Every job
//! carries a **cache usage identifier** ([`job::CacheUsageClass`], the
//! paper's CUID): *polluting* (class *i*, e.g. column scans), *sensitive*
//! (class *ii*, e.g. hash aggregation — the default, to avoid regressions),
//! or *mixed* (class *iii*, e.g. the FK join, whose class depends on its
//! bit-vector size).
//!
//! Before a worker runs a job, the executor maps the CUID to an LLC way
//! mask through a [`partition::PartitionPolicy`] and applies it via a
//! [`alloc::CacheAllocator`] backend:
//!
//! * [`alloc::ResctrlAllocator`] — binds the worker thread to a resctrl
//!   group (real Intel CAT);
//! * [`alloc::NoopAllocator`] — no partitioning (the paper's baseline);
//! * [`alloc::RecordingAllocator`] — test double that records every call.
//!
//! Mask changes are skipped when the worker already has the right mask —
//! the paper's Section V-C fast path (measured overhead < 100 µs even when
//! the kernel is involved).
//!
//! ## Native vs. simulated operators
//!
//! [`ops`] contains the *native* operators: they really process
//! `ccp-storage` data and are what you would run under resctrl on CAT
//! hardware. [`sim`] contains their *simulated twins*: the same algorithms
//! expressed as memory-access patterns over `ccp-cachesim`, which is what
//! regenerates the paper's figures on machines without CAT. The twins are
//! validated against the native operators' access counts in the test suite.

pub mod alloc;
pub mod dual_pool;
pub mod executor;
pub mod job;
pub mod masks;
pub mod metrics;
pub mod ops;
pub mod partition;
pub mod scheduler;
pub mod sim;

pub use alloc::{AllocError, CacheAllocator, NoopAllocator, RecordingAllocator, ResctrlAllocator};
pub use dual_pool::DualPoolExecutor;
pub use executor::{BatchHandle, JobExecutor};
pub use job::{current_query_ctx, with_query_ctx, CacheUsageClass, Job, QueryCtx};
pub use masks::LiveMasks;
pub use metrics::{class_label, ExecutorMetrics, SchedulerMetrics};
pub use partition::{PartitionPolicy, PAPER_POLLUTER_MASK, PAPER_SHARED_MASK};
pub use scheduler::{Admission, CacheAwareScheduler};
