//! Native grouped aggregation (paper Query 2).
//!
//! Two-phase hash aggregation exactly as Section III-A describes: the input
//! is split among worker jobs; each job decodes the aggregated column
//! through its dictionary (random dictionary accesses!) and pre-aggregates
//! into a thread-local hash table; the local tables are then merged into a
//! global result. Annotated [`CacheUsageClass::Sensitive`]: the paper gives
//! aggregations the whole cache.

use crate::executor::JobExecutor;
use crate::job::{CacheUsageClass, Job};
use ccp_reuse::{Artifact, Begin, ReuseHandle, ReuseStatus};
use ccp_storage::{AggHashTable, Aggregate, DictColumn};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Rows per aggregation job.
const CHUNK_ROWS: usize = 64 * 1024;

/// Runs Query 2: `SELECT agg(v), g FROM t GROUP BY g`.
///
/// Returns the merged global hash table keyed by the *dictionary codes* of
/// the grouping column (decode through `g_col.dict()` for values).
///
/// # Panics
/// Panics when the two columns have different lengths.
pub fn grouped_aggregate(
    ex: &JobExecutor,
    v_col: &Arc<DictColumn<i64>>,
    g_col: &Arc<DictColumn<i64>>,
    agg: Aggregate,
) -> AggHashTable {
    assert_eq!(
        v_col.len(),
        g_col.len(),
        "aggregate inputs must have equal row counts"
    );
    let _span = super::op_span("grouped_aggregate");
    let n = v_col.len();
    let expected_groups = g_col.dict().len();
    let locals: Arc<Mutex<Vec<AggHashTable>>> = Arc::new(Mutex::new(Vec::new()));
    let chunks = n.div_ceil(CHUNK_ROWS).max(1);
    let mut jobs = Vec::with_capacity(chunks);
    for c in 0..chunks {
        let lo = c * CHUNK_ROWS;
        let hi = ((c + 1) * CHUNK_ROWS).min(n);
        if lo >= hi {
            break;
        }
        let v_col = v_col.clone();
        let g_col = g_col.clone();
        let locals = locals.clone();
        // Local tables sized for the chunk's worst case, mirroring HANA's
        // thread-local pre-aggregation.
        let expected = expected_groups.min(hi - lo);
        jobs.push(Job::new(
            format!("agg[{c}]"),
            CacheUsageClass::Sensitive,
            move || {
                let mut local = AggHashTable::new(agg, expected);
                for row in lo..hi {
                    let g_code = g_col.code_at(row);
                    // Decompress the aggregated value through the dictionary —
                    // the random-access pattern the paper highlights.
                    let v = *v_col.dict().decode(v_col.code_at(row));
                    local.update(g_code, v);
                }
                locals.lock().push(local);
            },
        ));
    }
    // Wait on this aggregation's own jobs only — concurrent queries
    // sharing the pool must not extend each other's merge barrier.
    ex.run_batch(jobs);
    // Global merge phase.
    let _merge_span = super::op_span("agg_merge");
    let mut global = AggHashTable::new(agg, expected_groups);
    for local in locals.lock().iter() {
        global.merge(local);
    }
    global
}

/// [`grouped_aggregate`] with optional artifact reuse: when `reuse` is
/// bound and the merged hash table for this key is already resident, the
/// whole two-phase aggregation collapses into a lookup. On a miss the
/// table is built normally and published with its measured build cost
/// (the denominator of the cache's `bytes / rebuild_cost` eviction
/// score). Concurrent identical queries coalesce onto one builder.
pub fn grouped_aggregate_cached(
    ex: &JobExecutor,
    v_col: &Arc<DictColumn<i64>>,
    g_col: &Arc<DictColumn<i64>>,
    agg: Aggregate,
    reuse: Option<&ReuseHandle>,
) -> (Arc<AggHashTable>, ReuseStatus) {
    let Some(handle) = reuse else {
        return (
            Arc::new(grouped_aggregate(ex, v_col, g_col, agg)),
            ReuseStatus::Bypass,
        );
    };
    match handle.begin() {
        Begin::Hit(artifact) => match artifact.agg_table() {
            Some(table) => (table, ReuseStatus::Hit),
            // Artifact/key type mismatch: treat as uncacheable rather
            // than serving the wrong structure.
            None => (
                Arc::new(grouped_aggregate(ex, v_col, g_col, agg)),
                ReuseStatus::Miss,
            ),
        },
        Begin::Build(guard) => {
            let start = Instant::now();
            let table = Arc::new(grouped_aggregate(ex, v_col, g_col, agg));
            guard.publish(Artifact::AggTable(Arc::clone(&table)), start.elapsed());
            (table, ReuseStatus::Miss)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::NoopAllocator;
    use crate::partition::PartitionPolicy;
    use ccp_cachesim::HierarchyConfig;
    use ccp_storage::gen;
    use std::collections::BTreeMap;

    fn executor() -> JobExecutor {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        JobExecutor::new(
            4,
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            Arc::new(NoopAllocator),
        )
    }

    #[test]
    fn max_per_group_matches_reference() {
        let v = gen::uniform_ints(150_000, 10_000, 21);
        let g = gen::uniform_ints(150_000, 100, 22);
        let v_col = Arc::new(DictColumn::build(&v));
        let g_col = Arc::new(DictColumn::build(&g));
        let ex = executor();
        let result = grouped_aggregate(&ex, &v_col, &g_col, Aggregate::Max);

        let mut reference: BTreeMap<i64, i64> = BTreeMap::new();
        for (vi, gi) in v.iter().zip(&g) {
            reference
                .entry(*gi)
                .and_modify(|m| *m = (*m).max(*vi))
                .or_insert(*vi);
        }
        assert_eq!(result.len(), reference.len());
        for (gv, max) in &reference {
            let code = g_col.dict().encode(gv).unwrap();
            assert_eq!(result.get(code), Some(*max), "group {gv}");
        }
    }

    #[test]
    fn count_star_per_group() {
        let v = vec![0i64; 1000];
        let g: Vec<i64> = (0..1000).map(|i| i % 10).collect();
        let v_col = Arc::new(DictColumn::build(&v));
        let g_col = Arc::new(DictColumn::build(&g));
        let ex = executor();
        let result = grouped_aggregate(&ex, &v_col, &g_col, Aggregate::Count);
        for code in 0..10u32 {
            assert_eq!(result.get(code), Some(100));
        }
    }

    #[test]
    fn single_group_sum() {
        let v: Vec<i64> = (1..=100).collect();
        let g = vec![7i64; 100];
        let ex = executor();
        let result = grouped_aggregate(
            &ex,
            &Arc::new(DictColumn::build(&v)),
            &Arc::new(DictColumn::build(&g)),
            Aggregate::Sum,
        );
        assert_eq!(result.len(), 1);
        assert_eq!(result.get(0), Some(5050));
    }

    #[test]
    fn cached_aggregate_hits_on_repeat_and_matches_uncached() {
        let v = gen::uniform_ints(100_000, 5_000, 31);
        let g = gen::uniform_ints(100_000, 64, 32);
        let v_col = Arc::new(DictColumn::build(&v));
        let g_col = Arc::new(DictColumn::build(&g));
        let ex = executor();
        let cache = ccp_reuse::ReuseCache::new(ccp_reuse::ReuseConfig::with_budget(1 << 20));
        let handle = ReuseHandle::new(cache.clone(), cache.key("q2", "agg=sum"));

        let (first, st1) =
            grouped_aggregate_cached(&ex, &v_col, &g_col, Aggregate::Sum, Some(&handle));
        assert_eq!(st1, ReuseStatus::Miss);
        let (second, st2) =
            grouped_aggregate_cached(&ex, &v_col, &g_col, Aggregate::Sum, Some(&handle));
        assert_eq!(st2, ReuseStatus::Hit);
        assert!(Arc::ptr_eq(&first, &second), "hit returns the cached table");

        let reference = grouped_aggregate(&ex, &v_col, &g_col, Aggregate::Sum);
        assert_eq!(second.len(), reference.len());
        for code in 0..reference.len() as u32 {
            assert_eq!(second.get(code), reference.get(code));
        }

        let (_, st3) = grouped_aggregate_cached(&ex, &v_col, &g_col, Aggregate::Sum, None);
        assert_eq!(st3, ReuseStatus::Bypass);
    }

    #[test]
    #[should_panic(expected = "equal row counts")]
    fn mismatched_inputs_rejected() {
        let ex = executor();
        grouped_aggregate(
            &ex,
            &Arc::new(DictColumn::build(&[1i64])),
            &Arc::new(DictColumn::build(&[1i64, 2])),
            Aggregate::Max,
        );
    }
}
