//! Native column scan (paper Query 1).
//!
//! Evaluates `COUNT(*) WHERE X > threshold` entirely on compressed data:
//! the predicate constant is dictionary-encoded once, then the packed code
//! vector is scanned in parallel chunks. The scan is annotated
//! [`CacheUsageClass::Polluting`] — it streams without re-use, the paper's
//! canonical cache polluter.

use crate::executor::JobExecutor;
use crate::job::CacheUsageClass;
use ccp_storage::DictColumn;
use std::ops::Bound;
use std::sync::Arc;

/// Number of rows each scan job processes.
const CHUNK_ROWS: usize = 64 * 1024;

/// Runs Query 1: `SELECT COUNT(*) FROM col WHERE col > threshold`.
///
/// The column is shared read-only across jobs; each job counts its row
/// range on the packed codes.
pub fn column_scan(ex: &JobExecutor, col: &Arc<DictColumn<i64>>, threshold: i64) -> u64 {
    let _span = super::op_span("column_scan");
    let code_range = col
        .dict()
        .code_range(Bound::Excluded(&threshold), Bound::Unbounded);
    let n = col.len();
    let chunks = n.div_ceil(CHUNK_ROWS).max(1);
    let col = col.clone();
    ex.parallel_sum(
        "column_scan",
        CacheUsageClass::Polluting,
        n,
        chunks,
        move |rows| col.codes().count_in_range_rows(code_range.clone(), rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{NoopAllocator, RecordingAllocator};
    use crate::partition::PartitionPolicy;
    use ccp_cachesim::HierarchyConfig;
    use ccp_storage::gen;

    fn executor(alloc: Arc<dyn crate::alloc::CacheAllocator>) -> JobExecutor {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        JobExecutor::new(
            4,
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            alloc,
        )
    }

    #[test]
    fn counts_match_naive_scan() {
        let values = gen::uniform_ints(200_000, 1_000_000, 11);
        let col = Arc::new(DictColumn::build(&values));
        let ex = executor(Arc::new(NoopAllocator));
        for threshold in [0i64, 250_000, 500_000, 999_999, 1_000_000] {
            let expected = values.iter().filter(|&&v| v > threshold).count() as u64;
            assert_eq!(
                column_scan(&ex, &col, threshold),
                expected,
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn scan_jobs_are_polluting_class() {
        let rec = Arc::new(RecordingAllocator::new());
        let ex = executor(rec.clone());
        let col = Arc::new(DictColumn::build(&gen::uniform_ints(1000, 100, 1)));
        column_scan(&ex, &col, 50);
        assert!(!rec.calls().is_empty());
        assert!(rec.calls().iter().all(|(_, m)| m.bits() == 0x3));
    }

    #[test]
    fn empty_and_full_selectivity() {
        let values: Vec<i64> = (1..=1000).collect();
        let col = Arc::new(DictColumn::build(&values));
        let ex = executor(Arc::new(NoopAllocator));
        assert_eq!(column_scan(&ex, &col, 1000), 0);
        assert_eq!(column_scan(&ex, &col, 0), 1000);
    }
}
