//! Native foreign-key join (paper Query 3).
//!
//! The OLAP-optimized join of Section III-A: build a bit vector over the
//! primary-key domain, then probe it once per foreign key, counting
//! matches. The join's CUID is [`CacheUsageClass::Mixed`] with the bit
//! vector's size as the hot-structure hint — the partition policy decides
//! at runtime whether this join is a polluter (tiny or huge bit vector) or
//! cache-sensitive (bit vector comparable to the LLC).

use crate::executor::JobExecutor;
use crate::job::CacheUsageClass;
use ccp_storage::{BitVec, DictColumn};
use std::sync::Arc;

/// Rows per probe job.
const CHUNK_ROWS: usize = 64 * 1024;

/// Runs Query 3: `SELECT COUNT(*) FROM R, S WHERE R.P = S.F`.
///
/// `pk_col` holds the distinct primary keys (values ≥ 1), `fk_col` the
/// foreign keys referencing them. Returns the number of matching S rows.
///
/// # Panics
/// Panics when a primary key is non-positive (the paper's keys are
/// `1..=N`).
pub fn fk_join_count(
    ex: &JobExecutor,
    pk_col: &Arc<DictColumn<i64>>,
    fk_col: &Arc<DictColumn<i64>>,
) -> u64 {
    let _span = super::op_span("fk_join");
    // Build phase: the dictionary of a primary-key column is the sorted key
    // set itself; the largest key bounds the bit-vector length.
    let build_span = super::op_span("join_build");
    let max_key = pk_col.dict().iter().next_back().copied().unwrap_or(0);
    assert!(max_key >= 0, "primary keys must be positive");
    let mut bv = BitVec::zeros(max_key as u64 + 1);
    for i in 0..pk_col.len() {
        let key = *pk_col.value_at(i);
        assert!(key >= 1, "primary keys must be positive, got {key}");
        bv.set(key as u64);
    }
    let bv = Arc::new(bv);
    drop(build_span);
    let cuid = CacheUsageClass::Mixed {
        hot_bytes: bv.size_bytes(),
    };

    // Probe phase: one bit test per foreign key, parallel over chunks.
    let n = fk_col.len();
    let chunks = n.div_ceil(CHUNK_ROWS).max(1);
    let fk_col = fk_col.clone();
    ex.parallel_sum("fk_join_probe", cuid, n, chunks, move |rows| {
        let mut matches = 0u64;
        for row in rows {
            let key = *fk_col.value_at(row);
            if key >= 0 && (key as u64) < bv.len() && bv.get(key as u64) {
                matches += 1;
            }
        }
        matches
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{NoopAllocator, RecordingAllocator};
    use crate::partition::PartitionPolicy;
    use ccp_cachesim::HierarchyConfig;
    use ccp_storage::gen;

    fn executor(alloc: Arc<dyn crate::alloc::CacheAllocator>) -> JobExecutor {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        JobExecutor::new(
            4,
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            alloc,
        )
    }

    #[test]
    fn every_fk_matches_when_domain_covered() {
        // FKs drawn from the full PK domain: every probe matches.
        let pk = Arc::new(DictColumn::build(&gen::primary_keys(10_000, 1)));
        let fk = Arc::new(DictColumn::build(&gen::foreign_keys(50_000, 10_000, 2)));
        let ex = executor(Arc::new(NoopAllocator));
        assert_eq!(fk_join_count(&ex, &pk, &fk), 50_000);
    }

    #[test]
    fn partial_match_counted_exactly() {
        // PKs are the even numbers; FKs cover everything.
        let pks: Vec<i64> = (1..=1000).filter(|k| k % 2 == 0).collect();
        let fks: Vec<i64> = (1..=1000).collect();
        let pk = Arc::new(DictColumn::build(&pks));
        let fk = Arc::new(DictColumn::build(&fks));
        let ex = executor(Arc::new(NoopAllocator));
        assert_eq!(fk_join_count(&ex, &pk, &fk), 500);
    }

    #[test]
    fn join_cuid_depends_on_bitvec_size() {
        // Small PK domain -> small bit vector -> polluter mask 0x3.
        let rec = Arc::new(RecordingAllocator::new());
        let ex = executor(rec.clone());
        let pk = Arc::new(DictColumn::build(&gen::primary_keys(1000, 3)));
        let fk = Arc::new(DictColumn::build(&gen::foreign_keys(5000, 1000, 4)));
        fk_join_count(&ex, &pk, &fk);
        assert!(rec.calls().iter().all(|(_, m)| m.bits() == 0x3));
    }

    #[test]
    fn duplicate_fks_all_counted() {
        let pk = Arc::new(DictColumn::build(&[5i64]));
        let fk = Arc::new(DictColumn::build(&[5i64, 5, 5, 7, 7]));
        let ex = executor(Arc::new(NoopAllocator));
        assert_eq!(fk_join_count(&ex, &pk, &fk), 3);
    }
}
