//! Native foreign-key join (paper Query 3).
//!
//! The OLAP-optimized join of Section III-A: build a bit vector over the
//! primary-key domain, then probe it once per foreign key, counting
//! matches. The join's CUID is [`CacheUsageClass::Mixed`] with the bit
//! vector's size as the hot-structure hint — the partition policy decides
//! at runtime whether this join is a polluter (tiny or huge bit vector) or
//! cache-sensitive (bit vector comparable to the LLC).

use crate::executor::JobExecutor;
use crate::job::CacheUsageClass;
use ccp_reuse::{Artifact, Begin, ReuseHandle, ReuseStatus};
use ccp_storage::{BitVec, DictColumn};
use std::sync::Arc;
use std::time::Instant;

/// Rows per probe job.
const CHUNK_ROWS: usize = 64 * 1024;

/// Build phase of Query 3: the bit vector over the primary-key domain.
/// The dictionary of a primary-key column is the sorted key set itself;
/// the largest key bounds the bit-vector length. This is the artifact
/// the reuse cache memoizes — probing is cheap, building is the
/// per-query random-write pass worth skipping.
///
/// # Panics
/// Panics when a primary key is non-positive (the paper's keys are
/// `1..=N`).
pub fn fk_bit_vector(pk_col: &Arc<DictColumn<i64>>) -> BitVec {
    let _span = super::op_span("join_build");
    let max_key = pk_col.dict().iter().next_back().copied().unwrap_or(0);
    assert!(max_key >= 0, "primary keys must be positive");
    let mut bv = BitVec::zeros(max_key as u64 + 1);
    for i in 0..pk_col.len() {
        let key = *pk_col.value_at(i);
        assert!(key >= 1, "primary keys must be positive, got {key}");
        bv.set(key as u64);
    }
    bv
}

/// Probe phase of Query 3: one bit test per foreign key, parallel over
/// chunks. The CUID is derived from the bit vector's size, exactly as
/// when the vector was freshly built — a reused vector pollutes (or
/// doesn't) the same way.
pub fn fk_probe_count(ex: &JobExecutor, bv: Arc<BitVec>, fk_col: &Arc<DictColumn<i64>>) -> u64 {
    let cuid = CacheUsageClass::Mixed {
        hot_bytes: bv.size_bytes(),
    };
    let n = fk_col.len();
    let chunks = n.div_ceil(CHUNK_ROWS).max(1);
    let fk_col = fk_col.clone();
    ex.parallel_sum("fk_join_probe", cuid, n, chunks, move |rows| {
        let mut matches = 0u64;
        for row in rows {
            let key = *fk_col.value_at(row);
            if key >= 0 && (key as u64) < bv.len() && bv.get(key as u64) {
                matches += 1;
            }
        }
        matches
    })
}

/// Runs Query 3: `SELECT COUNT(*) FROM R, S WHERE R.P = S.F`.
///
/// `pk_col` holds the distinct primary keys (values ≥ 1), `fk_col` the
/// foreign keys referencing them. Returns the number of matching S rows.
///
/// # Panics
/// Panics when a primary key is non-positive (the paper's keys are
/// `1..=N`).
pub fn fk_join_count(
    ex: &JobExecutor,
    pk_col: &Arc<DictColumn<i64>>,
    fk_col: &Arc<DictColumn<i64>>,
) -> u64 {
    let _span = super::op_span("fk_join");
    let bv = Arc::new(fk_bit_vector(pk_col));
    fk_probe_count(ex, bv, fk_col)
}

/// [`fk_join_count`] with optional build-side reuse: a hit skips the
/// bit-vector construction pass and probes the cached vector (the probe
/// itself always runs — its result depends on `fk_col`). A miss builds
/// and publishes the vector with its measured build cost.
pub fn fk_join_count_cached(
    ex: &JobExecutor,
    pk_col: &Arc<DictColumn<i64>>,
    fk_col: &Arc<DictColumn<i64>>,
    reuse: Option<&ReuseHandle>,
) -> (u64, ReuseStatus) {
    let Some(handle) = reuse else {
        return (fk_join_count(ex, pk_col, fk_col), ReuseStatus::Bypass);
    };
    let _span = super::op_span("fk_join");
    match handle.begin() {
        Begin::Hit(artifact) => match artifact.join_bits() {
            Some(bv) => (fk_probe_count(ex, bv, fk_col), ReuseStatus::Hit),
            None => {
                let bv = Arc::new(fk_bit_vector(pk_col));
                (fk_probe_count(ex, bv, fk_col), ReuseStatus::Miss)
            }
        },
        Begin::Build(guard) => {
            let start = Instant::now();
            let bv = Arc::new(fk_bit_vector(pk_col));
            guard.publish(Artifact::JoinBits(Arc::clone(&bv)), start.elapsed());
            (fk_probe_count(ex, bv, fk_col), ReuseStatus::Miss)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{NoopAllocator, RecordingAllocator};
    use crate::partition::PartitionPolicy;
    use ccp_cachesim::HierarchyConfig;
    use ccp_storage::gen;

    fn executor(alloc: Arc<dyn crate::alloc::CacheAllocator>) -> JobExecutor {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        JobExecutor::new(
            4,
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            alloc,
        )
    }

    #[test]
    fn every_fk_matches_when_domain_covered() {
        // FKs drawn from the full PK domain: every probe matches.
        let pk = Arc::new(DictColumn::build(&gen::primary_keys(10_000, 1)));
        let fk = Arc::new(DictColumn::build(&gen::foreign_keys(50_000, 10_000, 2)));
        let ex = executor(Arc::new(NoopAllocator));
        assert_eq!(fk_join_count(&ex, &pk, &fk), 50_000);
    }

    #[test]
    fn partial_match_counted_exactly() {
        // PKs are the even numbers; FKs cover everything.
        let pks: Vec<i64> = (1..=1000).filter(|k| k % 2 == 0).collect();
        let fks: Vec<i64> = (1..=1000).collect();
        let pk = Arc::new(DictColumn::build(&pks));
        let fk = Arc::new(DictColumn::build(&fks));
        let ex = executor(Arc::new(NoopAllocator));
        assert_eq!(fk_join_count(&ex, &pk, &fk), 500);
    }

    #[test]
    fn join_cuid_depends_on_bitvec_size() {
        // Small PK domain -> small bit vector -> polluter mask 0x3.
        let rec = Arc::new(RecordingAllocator::new());
        let ex = executor(rec.clone());
        let pk = Arc::new(DictColumn::build(&gen::primary_keys(1000, 3)));
        let fk = Arc::new(DictColumn::build(&gen::foreign_keys(5000, 1000, 4)));
        fk_join_count(&ex, &pk, &fk);
        assert!(rec.calls().iter().all(|(_, m)| m.bits() == 0x3));
    }

    #[test]
    fn cached_join_reuses_build_side_but_still_probes() {
        let pks: Vec<i64> = (1..=1000).filter(|k| k % 2 == 0).collect();
        let pk = Arc::new(DictColumn::build(&pks));
        let fk_a = Arc::new(DictColumn::build(&(1..=1000).collect::<Vec<i64>>()));
        let fk_b = Arc::new(DictColumn::build(&(1..=500).collect::<Vec<i64>>()));
        let ex = executor(Arc::new(NoopAllocator));
        let cache = ccp_reuse::ReuseCache::new(ccp_reuse::ReuseConfig::with_budget(1 << 20));
        let handle = ReuseHandle::new(cache.clone(), cache.key("q3", ""));

        let (count, st) = fk_join_count_cached(&ex, &pk, &fk_a, Some(&handle));
        assert_eq!((count, st), (500, ReuseStatus::Miss));
        // Same build side, different probe side: hit, fresh probe result.
        let (count, st) = fk_join_count_cached(&ex, &pk, &fk_b, Some(&handle));
        assert_eq!((count, st), (250, ReuseStatus::Hit));
        assert_eq!(cache.stats().hits, 1);

        let (count, st) = fk_join_count_cached(&ex, &pk, &fk_a, None);
        assert_eq!((count, st), (500, ReuseStatus::Bypass));
    }

    #[test]
    fn duplicate_fks_all_counted() {
        let pk = Arc::new(DictColumn::build(&[5i64]));
        let fk = Arc::new(DictColumn::build(&[5i64, 5, 5, 7, 7]));
        let ex = executor(Arc::new(NoopAllocator));
        assert_eq!(fk_join_count(&ex, &pk, &fk), 3);
    }
}
