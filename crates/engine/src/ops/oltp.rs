//! Native OLTP point select (the S/4HANA-style query of Section VI-E).
//!
//! Locates rows through the inverted index of a key column, then projects
//! `k` payload columns by decoding each through its dictionary. The paper
//! runs such queries in a dedicated thread pool that always keeps the full
//! cache, so the operator is [`CacheUsageClass::Sensitive`](crate::job::CacheUsageClass::Sensitive).

use ccp_storage::{Column, InvertedIndex, Table};

/// A prepared point-select statement over one table: equality on the key
/// column, projection of a fixed set of payload columns.
#[derive(Debug)]
pub struct PointSelect<'t> {
    table: &'t Table,
    key_index: InvertedIndex,
    key_column: String,
    projected: Vec<String>,
}

/// One projected row: column name → rendered value.
pub type ProjectedRow = Vec<(String, String)>;

impl<'t> PointSelect<'t> {
    /// Prepares the statement: builds the inverted index on `key_column`
    /// and validates the projection list.
    ///
    /// # Panics
    /// Panics when a referenced column does not exist — statement
    /// preparation is schema-checked.
    pub fn prepare(table: &'t Table, key_column: &str, projected: &[&str]) -> Self {
        let key_col = table
            .column(key_column)
            .unwrap_or_else(|| panic!("no key column {key_column:?}"));
        for p in projected {
            assert!(table.column(p).is_some(), "no projected column {p:?}");
        }
        PointSelect {
            table,
            key_index: key_col.build_index(),
            key_column: key_column.to_string(),
            projected: projected.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The key column name.
    pub fn key_column(&self) -> &str {
        &self.key_column
    }

    /// Executes the query for `key`, returning the projected rows (empty
    /// when the key is absent).
    pub fn execute_int(&self, key: i64) -> Vec<ProjectedRow> {
        let _span = super::op_span("point_select");
        let Column::Int(kc) = self
            .table
            .column(&self.key_column)
            .expect("validated in prepare")
        else {
            panic!(
                "execute_int on non-integer key column {:?}",
                self.key_column
            )
        };
        let Some(code) = kc.dict().encode(&key) else {
            return Vec::new();
        };
        self.key_index
            .lookup(code)
            .iter()
            .map(|&row| self.project(row as usize))
            .collect()
    }

    /// Projects one row: each projected column performs a code fetch plus a
    /// dictionary decode — the dictionary-heavy access pattern that makes
    /// OLTP queries cache-sensitive (Section VI-E/VI-F).
    fn project(&self, row: usize) -> ProjectedRow {
        self.projected
            .iter()
            .map(|name| {
                let rendered = match self.table.column(name).expect("validated in prepare") {
                    Column::Int(c) => c.value_at(row).to_string(),
                    Column::Str(c) => c.value_at(row).clone(),
                };
                (name.clone(), rendered)
            })
            .collect()
    }

    /// Total bytes of the dictionaries this statement touches (index key
    /// column + projected columns) — the OLTP working-set size that decides
    /// its cache sensitivity.
    pub fn working_set_bytes(&self) -> u64 {
        let mut total = self.key_index.size_bytes();
        for name in std::iter::once(&self.key_column).chain(&self.projected) {
            total += self
                .table
                .column(name)
                .expect("validated in prepare")
                .dict_bytes();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_storage::DictColumn;

    fn acdoca_mini() -> Table {
        let mut t = Table::new("ACDOCA-mini");
        let keys: Vec<i64> = (0..1000).map(|i| i % 250).collect(); // 4 rows per key
        let amounts: Vec<i64> = (0..1000).map(|i| i * 10).collect();
        let texts: Vec<String> = (0..1000).map(|i| format!("doc-{:04}", i % 50)).collect();
        t.add_column("BELNR", Column::Int(DictColumn::build(&keys)));
        t.add_column("WRBTR", Column::Int(DictColumn::build(&amounts)));
        t.add_column("SGTXT", Column::Str(DictColumn::build(&texts)));
        t
    }

    #[test]
    fn finds_all_rows_for_key() {
        let t = acdoca_mini();
        let q = PointSelect::prepare(&t, "BELNR", &["WRBTR", "SGTXT"]);
        let rows = q.execute_int(42);
        assert_eq!(rows.len(), 4); // rows 42, 292, 542, 792
                                   // First matching row is row 42: WRBTR = 420.
        assert_eq!(rows[0][0], ("WRBTR".to_string(), "420".to_string()));
        assert_eq!(rows[0][1], ("SGTXT".to_string(), "doc-0042".to_string()));
    }

    #[test]
    fn missing_key_returns_empty() {
        let t = acdoca_mini();
        let q = PointSelect::prepare(&t, "BELNR", &["WRBTR"]);
        assert!(q.execute_int(99_999).is_empty());
    }

    #[test]
    fn working_set_grows_with_projection_width() {
        let t = acdoca_mini();
        let narrow = PointSelect::prepare(&t, "BELNR", &["WRBTR"]);
        let wide = PointSelect::prepare(&t, "BELNR", &["WRBTR", "SGTXT"]);
        assert!(wide.working_set_bytes() > narrow.working_set_bytes());
    }

    #[test]
    #[should_panic(expected = "no projected column")]
    fn unknown_projection_rejected_at_prepare() {
        let t = acdoca_mini();
        let _ = PointSelect::prepare(&t, "BELNR", &["NOPE"]);
    }
}
