//! Native database operators.
//!
//! These actually process `ccp-storage` data through the job executor, so
//! their worker threads carry real CAT masks when the engine runs with the
//! resctrl allocator on CAT hardware. Each operator mirrors one of the
//! paper's three micro-benchmark queries plus the S/4HANA-style OLTP point
//! select:
//!
//! * [`scan::column_scan`] — Query 1, `SELECT COUNT(*) FROM A WHERE A.X > ?`
//! * [`aggregate::grouped_aggregate`] — Query 2,
//!   `SELECT MAX(B.V), B.G FROM B GROUP BY B.G`
//! * [`join::fk_join_count`] — Query 3,
//!   `SELECT COUNT(*) FROM R, S WHERE R.P = S.F`
//! * [`oltp::PointSelect`] — the ACDOCA-style indexed point query

pub mod aggregate;
pub mod join;
pub mod oltp;
pub mod scan;

/// Opens an operator-phase trace span on the calling thread, tagged with
/// the current query id (if inside a
/// [`with_query_ctx`](crate::job::with_query_ctx) scope). Inert — one
/// relaxed atomic load — while tracing is disabled.
pub(crate) fn op_span(name: &str) -> ccp_trace::SpanGuard {
    let id = crate::job::current_query_ctx().map_or(0, |c| c.id);
    ccp_trace::span_id(ccp_trace::TraceCat::Op, name, id)
}
