//! The cache partitioning policy derived from the paper's micro-benchmark
//! analysis (Section V-B).
//!
//! * Polluting operators get 10 % of the LLC — mask `0x3` on the 20-way
//!   Broadwell LLC. The paper found `0x1` (one way) degrades even scans
//!   (way contention), so the minimum is two ways.
//! * Sensitive operators keep the full cache.
//! * Mixed operators (the FK join) are classified at runtime by the size of
//!   their hot structure: if the bit vector is *comparable to the LLC* the
//!   join is cache-sensitive and gets the 60 % mask `0xfff`; if it is small
//!   (L2-resident) or far larger than the LLC, the join acts like a scan
//!   and is confined to `0x3`.

use crate::job::CacheUsageClass;
use ccp_cachesim::{CacheLevelConfig, WayMask};
use serde::{Deserialize, Serialize};

/// The paper's mask for cache-polluting operators: 2/20 ways = 10 %.
pub const PAPER_POLLUTER_MASK: u32 = 0x3;
/// The paper's mask for the cache-sensitive FK join: 12/20 ways = 60 %.
pub const PAPER_SHARED_MASK: u32 = 0xfff;

/// Maps cache usage classes to LLC way masks for a particular cache
/// geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionPolicy {
    /// LLC geometry the masks are computed for.
    pub llc: CacheLevelConfig,
    /// Private L2 size; structures below `l2_slack × l2_bytes` are
    /// considered L2-resident (the operator then pollutes, like a scan).
    pub l2_bytes: u64,
    /// Fraction of the LLC granted to polluting operators (paper: 10 %).
    pub polluter_percent: u32,
    /// Fraction granted to mixed operators in their cache-sensitive regime
    /// (paper: 60 %).
    pub mixed_percent: u32,
    /// A mixed operator whose hot structure exceeds this multiple of the
    /// LLC cannot be cached anyway and is treated as polluting.
    pub oversize_factor: u64,
}

impl PartitionPolicy {
    /// The paper's policy on the paper's machine (Section V-B).
    pub fn paper_default(llc: CacheLevelConfig, l2_bytes: u64) -> Self {
        PartitionPolicy {
            llc,
            l2_bytes,
            polluter_percent: 10,
            mixed_percent: 60,
            oversize_factor: 2,
        }
    }

    /// Mask for the given cache usage class.
    pub fn mask_for(&self, cuid: CacheUsageClass) -> WayMask {
        let full = WayMask::full(self.llc.ways).expect("LLC way count validated by config");
        match cuid {
            CacheUsageClass::Sensitive => full,
            CacheUsageClass::Polluting => self.polluter_mask(),
            CacheUsageClass::Mixed { hot_bytes } => {
                if self.is_llc_comparable(hot_bytes) {
                    WayMask::percent(self.mixed_percent, self.llc.ways).expect("valid percent/ways")
                } else {
                    self.polluter_mask()
                }
            }
        }
    }

    /// The polluter mask (never below 2 ways — the paper observed that one
    /// way causes contention and degrades even scans).
    pub fn polluter_mask(&self) -> WayMask {
        let m = WayMask::percent(self.polluter_percent, self.llc.ways).expect("valid percent");
        if m.way_count() < 2 && self.llc.ways >= 2 {
            WayMask::from_ways(2).expect("2 <= 32")
        } else {
            m
        }
    }

    /// The paper's simple heuristic: a structure is "comparable to the LLC"
    /// when it clearly exceeds the private L2 but is not hopelessly larger
    /// than the LLC.
    pub fn is_llc_comparable(&self, hot_bytes: u64) -> bool {
        hot_bytes > self.l2_bytes * 4 && hot_bytes <= self.llc.size_bytes * self.oversize_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::HierarchyConfig;

    fn paper_policy() -> PartitionPolicy {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes)
    }

    #[test]
    fn paper_masks_reproduced() {
        let p = paper_policy();
        assert_eq!(
            p.mask_for(CacheUsageClass::Polluting).bits(),
            PAPER_POLLUTER_MASK
        );
        assert_eq!(p.mask_for(CacheUsageClass::Sensitive).bits(), 0xfffff);
    }

    #[test]
    fn mixed_small_bitvec_is_confined() {
        let p = paper_policy();
        // 10^6 primary keys -> 125 KB bit vector: L2-resident, join acts
        // like a scan (paper Section V-B / VI-C).
        let m = p.mask_for(CacheUsageClass::Mixed { hot_bytes: 125_000 });
        assert_eq!(m.bits(), PAPER_POLLUTER_MASK);
    }

    #[test]
    fn mixed_llc_sized_bitvec_gets_60_percent() {
        let p = paper_policy();
        // 10^8 primary keys -> 12.5 MB bit vector: comparable to the LLC.
        let m = p.mask_for(CacheUsageClass::Mixed {
            hot_bytes: 12_500_000,
        });
        assert_eq!(m.bits(), PAPER_SHARED_MASK);
    }

    #[test]
    fn mixed_oversized_bitvec_is_confined() {
        let p = paper_policy();
        // 10^9 primary keys -> 125 MB: cannot be cached, treat as polluter.
        let m = p.mask_for(CacheUsageClass::Mixed {
            hot_bytes: 125_000_000,
        });
        assert_eq!(m.bits(), PAPER_POLLUTER_MASK);
    }

    #[test]
    fn polluter_mask_never_single_way() {
        // Even with 1% requested, at least two ways are granted: the paper
        // observed severe degradation with 0x1.
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let p = PartitionPolicy {
            polluter_percent: 1,
            ..PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes)
        };
        assert_eq!(p.polluter_mask().way_count(), 2);
    }

    #[test]
    fn comparable_band_boundaries() {
        let p = paper_policy();
        assert!(!p.is_llc_comparable(256 * 1024)); // L2-sized
        assert!(!p.is_llc_comparable(1024 * 1024)); // 4x L2 boundary
        assert!(p.is_llc_comparable(12_500_000)); // paper's 10^8 case
        assert!(p.is_llc_comparable(55 * 1024 * 1024)); // exactly LLC
        assert!(!p.is_llc_comparable(125_000_000)); // paper's 10^9 case
    }
}
