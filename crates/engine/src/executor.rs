//! The job executor: a pool of worker threads with per-job cache
//! partitioning.
//!
//! Mirrors the integration sketched in the paper's Figure 8: the engine
//! annotates each job with a CUID; when a worker picks a job up, the
//! executor maps the CUID to a way mask through the [`PartitionPolicy`]
//! and — only if it differs from the mask the worker currently has — binds
//! the worker thread via the configured [`CacheAllocator`]. Short-running
//! jobs therefore pay nothing when consecutive jobs share a class, which is
//! the paper's measured-sub-100 µs fast path.

use crate::alloc::{current_tid, CacheAllocator};
use crate::job::Job;
use crate::masks::LiveMasks;
use crate::metrics::ExecutorMetrics;
use crate::partition::PartitionPolicy;
use ccp_cachesim::WayMask;
use ccp_trace::TraceCat;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct BatchInner {
    remaining: Mutex<usize>,
    done: Condvar,
}

/// Completion handle for one group of jobs submitted together via
/// [`JobExecutor::submit_batch`].
///
/// Unlike [`JobExecutor::wait_idle`] — which blocks until the *whole pool*
/// drains and therefore couples independent callers under concurrency — a
/// batch handle completes as soon as its own jobs have finished, no matter
/// what else the pool is running. This is what lets a serving front end
/// admit many simultaneous queries through one executor and still report
/// accurate per-query latencies.
#[derive(Clone)]
pub struct BatchHandle {
    inner: Arc<BatchInner>,
}

impl BatchHandle {
    fn new(count: usize) -> Self {
        BatchHandle {
            inner: Arc::new(BatchInner {
                remaining: Mutex::new(count),
                done: Condvar::new(),
            }),
        }
    }

    /// Completion guard embedded in each job; decrements on drop so the
    /// batch completes even when the job's closure panics (the worker
    /// catches the unwind, the guard runs during it).
    fn guard(&self) -> BatchGuard {
        BatchGuard {
            inner: self.inner.clone(),
        }
    }

    /// Jobs of this batch still running or queued.
    pub fn remaining(&self) -> usize {
        *self.inner.remaining.lock()
    }

    /// Blocks until every job of the batch has finished.
    pub fn wait(&self) {
        let mut remaining = self.inner.remaining.lock();
        while *remaining > 0 {
            self.inner.done.wait(&mut remaining);
        }
    }

    /// Blocks until the batch finishes or `timeout` elapses; returns
    /// whether the batch completed.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut remaining = self.inner.remaining.lock();
        while *remaining > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.done.wait_for(&mut remaining, deadline - now);
        }
        true
    }
}

struct BatchGuard {
    inner: Arc<BatchInner>,
}

impl Drop for BatchGuard {
    fn drop(&mut self) {
        let mut remaining = self.inner.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.inner.done.notify_all();
        }
    }
}

struct Shared {
    policy: PartitionPolicy,
    allocator: Arc<dyn CacheAllocator>,
    live: Arc<LiveMasks>,
    partitioning: AtomicBool,
    metrics: ExecutorMetrics,
    pending: Mutex<usize>,
    all_done: Condvar,
}

/// A pool of job workers with integrated cache partitioning.
pub struct JobExecutor {
    tx: Option<Sender<(Job, Instant)>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl JobExecutor {
    /// Spawns `n_workers` job workers.
    ///
    /// # Panics
    /// Panics when `n_workers` is zero.
    pub fn new(
        n_workers: usize,
        policy: PartitionPolicy,
        allocator: Arc<dyn CacheAllocator>,
    ) -> Self {
        Self::with_pool_name(n_workers, policy, allocator, "job")
    }

    /// Spawns `n_workers` job workers with threads named
    /// `{pool}-worker-{i}`, so profiler output and thread listings are
    /// keyed by pool (`olap-worker-3`, `oltp-worker-0`).
    ///
    /// # Panics
    /// Panics when `n_workers` is zero.
    pub fn with_pool_name(
        n_workers: usize,
        policy: PartitionPolicy,
        allocator: Arc<dyn CacheAllocator>,
        pool: &str,
    ) -> Self {
        assert!(n_workers > 0, "executor needs at least one worker");
        let (tx, rx) = unbounded::<(Job, Instant)>();
        let live = Arc::new(LiveMasks::from_policy(&policy));
        let shared = Arc::new(Shared {
            policy,
            allocator,
            live,
            partitioning: AtomicBool::new(true),
            metrics: ExecutorMetrics::new(),
            pending: Mutex::new(0),
            all_done: Condvar::new(),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("{pool}-worker-{i}"))
                    .spawn(move || {
                        ccp_flight::register_current_thread();
                        let tid = current_tid();
                        let full =
                            WayMask::full(shared.policy.llc.ways).expect("validated LLC way count");
                        let mut current: Option<WayMask> = None;
                        while let Ok((job, submitted)) = rx.recv() {
                            let queue_wait = submitted.elapsed().as_secs_f64();
                            let cuid = job.cuid;
                            let query_id = job.ctx.as_ref().map_or(0, |c| c.id);
                            // ORDERING: advisory runtime toggle; a stale read
                            // only delays a worker's rebind by one job, which
                            // set_partitioning documents as lazy.
                            let want = if shared.partitioning.load(Ordering::Relaxed) {
                                // The live table (seeded from the policy,
                                // rewritten by adaptive control) is read
                                // once per job: repartitions take effect
                                // on the next bind, never mid-query.
                                shared.live.mask_for(cuid, &shared.policy)
                            } else {
                                full
                            };
                            // Fast path: skip the allocator when the worker
                            // already carries the right mask.
                            if current != Some(want) {
                                let bind_started = Instant::now();
                                let bind_span =
                                    ccp_trace::span_id(TraceCat::Bind, "mask_bind", query_id);
                                let bound = if ccp_fault::should_fail(crate::alloc::FAULT_BIND) {
                                    Err(crate::alloc::AllocError::Resctrl(
                                        "injected bind fault (engine.bind)".into(),
                                    ))
                                } else {
                                    shared.allocator.bind(tid, want)
                                };
                                match bound {
                                    Ok(()) => {
                                        shared.metrics.record_mask_switch();
                                        current = Some(want);
                                    }
                                    Err(_) => {
                                        shared.metrics.record_bind_failure();
                                        // Run the job anyway: partitioning is
                                        // an optimization, never a gate.
                                    }
                                }
                                drop(bind_span);
                                if let Some(ctx) = &job.ctx {
                                    ctx.add_bind_ns(bind_started.elapsed().as_nanos() as u64);
                                }
                            }
                            // A panicking job must not kill the worker or
                            // leak the pending count (wait_idle would hang
                            // forever); unwind safety is fine because the
                            // closure is consumed either way.
                            let started = Instant::now();
                            let job_span = ccp_trace::span_id(TraceCat::Op, &job.name, query_id);
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(job.run));
                            drop(job_span);
                            shared.metrics.record_job(
                                cuid,
                                queue_wait,
                                started.elapsed().as_secs_f64(),
                                outcome.is_err(),
                            );
                            let mut pending = shared.pending.lock();
                            *pending -= 1;
                            if *pending == 0 {
                                shared.all_done.notify_all();
                            }
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        JobExecutor {
            tx: Some(tx),
            workers,
            shared,
        }
    }

    /// Enables or disables partitioning at runtime (the paper's evaluation
    /// toggles exactly this). Already-bound workers are rebound lazily on
    /// their next job.
    pub fn set_partitioning(&self, on: bool) {
        // ORDERING: relaxed store of an independent flag; workers observe
        // it on their next job and no other state is published with it.
        self.shared.partitioning.store(on, Ordering::Relaxed);
    }

    /// The live CUID→mask table this pool binds from. Adaptive control
    /// publishes repartitions through this handle; workers pick them up
    /// on their next bind.
    pub fn live_masks(&self) -> Arc<LiveMasks> {
        self.shared.live.clone()
    }

    /// Whether partitioning is currently enabled.
    pub fn partitioning(&self) -> bool {
        // ORDERING: point-in-time read of the toggle; no ordering with
        // other memory is implied or needed.
        self.shared.partitioning.load(Ordering::Relaxed)
    }

    /// Submits a job without waiting for it.
    pub fn submit(&self, job: Job) {
        {
            let mut pending = self.shared.pending.lock();
            *pending += 1;
        }
        self.tx
            .as_ref()
            .expect("executor not shut down")
            .send((job, Instant::now()))
            .expect("workers alive");
    }

    /// Submits all jobs and blocks until every submitted job (including
    /// earlier ones) has finished.
    pub fn run_jobs(&self, jobs: Vec<Job>) {
        for j in jobs {
            self.submit(j);
        }
        self.wait_idle();
    }

    /// Submits `jobs` as one tracked batch and returns a handle that
    /// completes when exactly these jobs have finished — independent of
    /// whatever else the pool is running. The handle is panic-safe: a
    /// panicking job still counts as finished.
    pub fn submit_batch(&self, jobs: Vec<Job>) -> BatchHandle {
        let batch = BatchHandle::new(jobs.len());
        for job in jobs {
            let Job {
                name,
                cuid,
                run,
                ctx,
            } = job;
            let guard = batch.guard();
            let mut wrapped = Job::new(name, cuid, move || {
                let _guard = guard;
                run();
            });
            // Preserve the context the job was *created* under, not
            // whatever scope this wrapping happens to run in.
            wrapped.ctx = ctx;
            self.submit(wrapped);
        }
        batch
    }

    /// Submits `jobs` as a batch and blocks until *these* jobs (and only
    /// these) have finished. Under concurrent submitters this is the right
    /// primitive: [`run_jobs`](Self::run_jobs) waits for the whole pool.
    pub fn run_batch(&self, jobs: Vec<Job>) {
        self.submit_batch(jobs).wait();
    }

    /// Blocks until no submitted job is outstanding.
    pub fn wait_idle(&self) {
        let mut pending = self.shared.pending.lock();
        while *pending > 0 {
            self.shared.all_done.wait(&mut pending);
        }
    }

    /// Data-parallel sum: splits `0..n` into `chunks` ranges, runs `f` on
    /// each as a job of class `cuid`, and returns the sum of the results.
    pub fn parallel_sum<F>(
        &self,
        name: &str,
        cuid: crate::job::CacheUsageClass,
        n: usize,
        chunks: usize,
        f: F,
    ) -> u64
    where
        F: Fn(Range<usize>) -> u64 + Send + Sync + 'static,
    {
        let chunks = chunks.max(1);
        let f = Arc::new(f);
        let acc = Arc::new(AtomicU64::new(0));
        let step = n.div_ceil(chunks);
        let mut jobs = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let lo = c * step;
            let hi = ((c + 1) * step).min(n);
            if lo >= hi {
                break;
            }
            let f = f.clone();
            let acc = acc.clone();
            jobs.push(Job::new(format!("{name}[{c}]"), cuid, move || {
                // ORDERING: relaxed accumulation is fine because run_batch
                // below synchronizes (channel + condvar) before the read.
                acc.fetch_add(f(lo..hi), Ordering::Relaxed);
            }));
        }
        // Wait on the batch, not the pool: concurrent operators sharing
        // this executor must not serialize on each other's jobs.
        self.run_batch(jobs);
        // ORDERING: run_batch's completion handshake already happens-before
        // this load, so relaxed observes every worker's fetch_add.
        acc.load(Ordering::Relaxed)
    }

    /// This pool's instruments (queue-wait and run-latency histograms
    /// per CUID class, mask-switch accounting). The returned handle
    /// shares state with the pool; attach it to a registry with
    /// [`ExecutorMetrics::register_into`] to expose it.
    pub fn metrics(&self) -> ExecutorMetrics {
        self.shared.metrics.clone()
    }

    /// Jobs executed so far.
    pub fn jobs_executed(&self) -> u64 {
        self.shared.metrics.jobs_executed()
    }

    /// Mask switches performed (allocator binds that were not skipped by
    /// the per-worker fast path).
    pub fn mask_switches(&self) -> u64 {
        self.shared.metrics.mask_switches()
    }

    /// Allocator bind failures (jobs still ran, unpartitioned).
    pub fn bind_failures(&self) -> u64 {
        self.shared.metrics.bind_failures()
    }

    /// Jobs whose closure panicked (caught; the worker survived).
    pub fn jobs_panicked(&self) -> u64 {
        self.shared.metrics.jobs_panicked()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for JobExecutor {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{NoopAllocator, RecordingAllocator};
    use crate::job::CacheUsageClass;
    use ccp_cachesim::HierarchyConfig;

    fn policy() -> PartitionPolicy {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes)
    }

    #[test]
    fn executes_all_jobs() {
        let ex = JobExecutor::new(4, policy(), Arc::new(NoopAllocator));
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Job> = (0..100)
            .map(|i| {
                let c = counter.clone();
                Job::unannotated(format!("j{i}"), move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        ex.run_jobs(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(ex.jobs_executed(), 100);
    }

    #[test]
    fn parallel_sum_covers_every_index() {
        let ex = JobExecutor::new(4, policy(), Arc::new(NoopAllocator));
        // Sum 0..1000 across 7 chunks.
        let total = ex.parallel_sum("sum", CacheUsageClass::Polluting, 1000, 7, |r| {
            r.map(|i| i as u64).sum()
        });
        assert_eq!(total, 499_500);
    }

    #[test]
    fn polluting_jobs_get_the_paper_mask() {
        let rec = Arc::new(RecordingAllocator::new());
        let ex = JobExecutor::new(1, policy(), rec.clone());
        ex.run_jobs(vec![Job::new("scan", CacheUsageClass::Polluting, || {})]);
        let calls = rec.calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].1.bits(), 0x3);
    }

    #[test]
    fn fast_path_skips_repeat_masks() {
        let rec = Arc::new(RecordingAllocator::new());
        let ex = JobExecutor::new(1, policy(), rec.clone());
        // 10 consecutive polluting jobs on one worker: a single bind.
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::new(format!("s{i}"), CacheUsageClass::Polluting, || {}))
            .collect();
        ex.run_jobs(jobs);
        assert_eq!(rec.calls().len(), 1);
        assert_eq!(ex.mask_switches(), 1);
    }

    #[test]
    fn alternating_classes_switch_masks() {
        let rec = Arc::new(RecordingAllocator::new());
        let ex = JobExecutor::new(1, policy(), rec.clone());
        let mut jobs = Vec::new();
        for i in 0..4 {
            let cuid = if i % 2 == 0 {
                CacheUsageClass::Polluting
            } else {
                CacheUsageClass::Sensitive
            };
            jobs.push(Job::new(format!("j{i}"), cuid, || {}));
        }
        ex.run_jobs(jobs);
        assert_eq!(rec.calls().len(), 4);
        let masks: Vec<u32> = rec.calls().iter().map(|(_, m)| m.bits()).collect();
        assert_eq!(masks, vec![0x3, 0xfffff, 0x3, 0xfffff]);
    }

    #[test]
    fn disabling_partitioning_binds_full_mask() {
        let rec = Arc::new(RecordingAllocator::new());
        let ex = JobExecutor::new(1, policy(), rec.clone());
        ex.set_partitioning(false);
        assert!(!ex.partitioning());
        ex.run_jobs(vec![Job::new("scan", CacheUsageClass::Polluting, || {})]);
        assert_eq!(rec.calls()[0].1.bits(), 0xfffff);
    }

    #[test]
    fn mixed_class_resolved_through_policy() {
        let rec = Arc::new(RecordingAllocator::new());
        let ex = JobExecutor::new(1, policy(), rec.clone());
        ex.run_jobs(vec![
            Job::new(
                "join-small",
                CacheUsageClass::Mixed { hot_bytes: 125_000 },
                || {},
            ),
            Job::new(
                "join-big",
                CacheUsageClass::Mixed {
                    hot_bytes: 12_500_000,
                },
                || {},
            ),
        ]);
        let masks: Vec<u32> = rec.calls().iter().map(|(_, m)| m.bits()).collect();
        assert_eq!(masks, vec![0x3, 0xfff]);
    }

    #[test]
    fn live_mask_updates_apply_on_the_next_bind() {
        let rec = Arc::new(RecordingAllocator::new());
        let ex = JobExecutor::new(1, policy(), rec.clone());
        ex.run_jobs(vec![Job::new("agg0", CacheUsageClass::Sensitive, || {})]);
        // An adaptive repartition shrinks the sensitive class to the top
        // four ways; the already-idle worker rebinds on its next job.
        let live = ex.live_masks();
        live.set_masks(
            WayMask::new(0x3).unwrap(),
            WayMask::range(16, 4).unwrap(),
            WayMask::range(16, 4).unwrap(),
        );
        ex.run_jobs(vec![Job::new("agg1", CacheUsageClass::Sensitive, || {})]);
        let masks: Vec<u32> = rec.calls().iter().map(|(_, m)| m.bits()).collect();
        assert_eq!(masks, vec![0xfffff, 0xf0000]);
    }

    #[test]
    fn workers_run_concurrently() {
        use std::time::{Duration, Instant};
        let ex = JobExecutor::new(4, policy(), Arc::new(NoopAllocator));
        let start = Instant::now();
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                Job::unannotated(format!("sleep{i}"), || {
                    std::thread::sleep(Duration::from_millis(100));
                })
            })
            .collect();
        ex.run_jobs(jobs);
        // Serial execution would take >= 400 ms.
        assert!(
            start.elapsed() < Duration::from_millis(350),
            "jobs did not run in parallel"
        );
    }

    #[test]
    fn panicking_job_does_not_hang_or_kill_the_worker() {
        let ex = JobExecutor::new(1, policy(), Arc::new(NoopAllocator));
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        ex.run_jobs(vec![
            Job::unannotated("boom", || panic!("deliberate test panic")),
            Job::unannotated("after", move || {
                d.fetch_add(1, Ordering::Relaxed);
            }),
        ]);
        // wait_idle returned (no hang), the next job still ran on the same
        // single worker, and the panic was counted.
        assert_eq!(done.load(Ordering::Relaxed), 1);
        assert_eq!(ex.jobs_panicked(), 1);
        assert_eq!(ex.jobs_executed(), 2);
    }

    #[test]
    fn metrics_expose_latency_distributions_per_class() {
        let ex = JobExecutor::new(2, policy(), Arc::new(NoopAllocator));
        let jobs: Vec<Job> = (0..10)
            .map(|i| {
                Job::new(format!("s{i}"), CacheUsageClass::Polluting, || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
            })
            .collect();
        ex.run_jobs(jobs);
        let m = ex.metrics();
        assert_eq!(m.jobs_in_class(CacheUsageClass::Polluting), 10);
        assert_eq!(m.jobs_in_class(CacheUsageClass::Sensitive), 0);
        let lat = m.job_latency(CacheUsageClass::Polluting);
        assert_eq!(lat.count(), 10);
        assert!(lat.sum() >= 0.010, "10 x 1 ms of sleep, got {}", lat.sum());
        assert_eq!(m.queue_wait(CacheUsageClass::Polluting).count(), 10);
    }

    #[test]
    fn metrics_register_renders_executor_families() {
        let ex = JobExecutor::new(1, policy(), Arc::new(NoopAllocator));
        ex.run_jobs(vec![Job::new("agg", CacheUsageClass::Sensitive, || {})]);
        let registry = ccp_obs::Registry::new();
        ex.metrics().register_into(&registry, "test");
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_executor_jobs_total{class=\"sensitive\",pool=\"test\"} 1"));
        assert!(text.contains(
            "ccp_executor_queue_wait_seconds_count{class=\"sensitive\",pool=\"test\"} 1"
        ));
    }

    #[test]
    fn batch_completes_independently_of_other_submissions() {
        use std::time::Duration;
        let ex = JobExecutor::new(2, policy(), Arc::new(NoopAllocator));
        // A long-running foreign job occupies one worker the whole time.
        let gate = Arc::new(AtomicU64::new(0));
        let g = gate.clone();
        ex.submit(Job::unannotated("slow", move || {
            while g.load(Ordering::Relaxed) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
        // The batch must finish on the free worker without waiting for
        // the foreign job (wait_idle would hang here).
        let batch = ex.submit_batch(vec![
            Job::unannotated("a", || {}),
            Job::unannotated("b", || {}),
        ]);
        assert!(
            batch.wait_timeout(Duration::from_secs(5)),
            "batch blocked on an unrelated job"
        );
        assert_eq!(batch.remaining(), 0);
        gate.store(1, Ordering::Relaxed);
        ex.wait_idle();
    }

    #[test]
    fn batch_wait_survives_panicking_jobs() {
        let ex = JobExecutor::new(1, policy(), Arc::new(NoopAllocator));
        let batch = ex.submit_batch(vec![
            Job::unannotated("boom", || panic!("deliberate test panic")),
            Job::unannotated("ok", || {}),
        ]);
        batch.wait(); // must not hang
        assert_eq!(ex.jobs_panicked(), 1);
    }

    #[test]
    fn batch_wait_timeout_reports_unfinished_work() {
        use std::time::Duration;
        let ex = JobExecutor::new(1, policy(), Arc::new(NoopAllocator));
        let gate = Arc::new(AtomicU64::new(0));
        let g = gate.clone();
        let batch = ex.submit_batch(vec![Job::unannotated("slow", move || {
            while g.load(Ordering::Relaxed) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        })]);
        assert!(!batch.wait_timeout(Duration::from_millis(20)));
        gate.store(1, Ordering::Relaxed);
        assert!(batch.wait_timeout(Duration::from_secs(5)));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let ex = JobExecutor::new(2, policy(), Arc::new(NoopAllocator));
        ex.run_jobs(vec![Job::unannotated("x", || {})]);
        drop(ex); // must not hang or panic
    }
}
