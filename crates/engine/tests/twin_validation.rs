//! Validation of the simulated operator twins against their native
//! counterparts: the twins must issue exactly the memory traffic the real
//! algorithms incur, scaled only in row count.

use ccp_cachesim::{AccessKind, AddrSpace, HierarchyConfig, MemoryHierarchy};
use ccp_engine::sim::{AggregationSim, ColumnScanSim, FkJoinSim, OltpSim, SimOperator};

/// Drives `op` for exactly `rows` work units on a fresh tiny hierarchy and
/// returns (L2 accesses, DRAM lines transferred).
fn drive(op: &mut dyn SimOperator, rows: u64) -> (u64, u64) {
    let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
    let mut done = 0;
    while done < rows {
        done += op.batch(&mut mem, 0);
    }
    (mem.stats(0).l2.accesses(), mem.dram().lines_transferred())
}

#[test]
fn scan_twin_touches_exactly_the_packed_bytes() {
    // A 20-bit packed column of 2^16 rows is 163,840 bytes = 2,560 lines;
    // the scan twin must read each line exactly once per pass.
    let mut space = AddrSpace::new();
    let mut scan = ColumnScanSim::new(&mut space, 1 << 16, 20);
    assert_eq!(scan.column_bytes(), (1u64 << 16) * 20 / 8);
    let (accesses, dram_lines) = drive(&mut scan, 1 << 16);
    assert_eq!(accesses, 2560, "one demand access per line");
    assert_eq!(
        dram_lines, 2560,
        "each line crosses DRAM once (no prefetch in tiny cfg)"
    );
}

#[test]
fn aggregation_twin_issues_two_random_accesses_per_row() {
    // Per row: one dictionary access + one hash-table access, plus the
    // sequential code stream (0..N extra line accesses).
    let mut space = AddrSpace::new();
    let rows = 8_192u64;
    let mut agg = AggregationSim::new(&mut space, 1 << 30, 1 << 20, 1 << 10);
    let (accesses, _) = drive(&mut agg, rows);
    let random = rows * 2;
    // Codes: (20 + 10) bits/row = 30 bits -> 3.75 B/row -> 480 lines, each
    // touched exactly once (batch boundaries never re-touch a line).
    let code_lines = (rows * 30).div_ceil(8).div_ceil(64);
    assert_eq!(accesses, random + code_lines);
}

#[test]
fn join_twin_preserves_the_papers_build_probe_ratio() {
    // 10^8 primary keys : 10^9 probes = 1 : 10. With 10,000 scaled probes
    // the build phase must be 1,000 rows.
    let mut space = AddrSpace::new();
    let join = FkJoinSim::new(&mut space, 100_000_000, 10_000);
    assert_eq!(join.cycle_rows(), 11_000);
    // And the bit vector is the paper's 12.5 MB regardless of scaling.
    assert_eq!(join.bitvec_bytes(), 12_500_000);
}

#[test]
fn join_twin_access_count_matches_model() {
    let mut space = AddrSpace::new();
    // 1,000 keys : tiny build (1 row, ratio floor); probe 2,048 rows.
    let mut join = FkJoinSim::new(&mut space, 1_000, 2_048);
    let cycle = join.cycle_rows();
    let (accesses, _) = drive(&mut join, cycle);
    // Each row: one bit-vector access; plus the key-column streams: probe
    // 2048 rows * 10 bits = 40 lines, build 1 row = 1 line. Every line is
    // touched exactly once.
    let probe_code_lines = (2_048u64 * 10).div_ceil(8).div_ceil(64);
    let build_code_lines = 1;
    assert_eq!(accesses, cycle + probe_code_lines + build_code_lines);
}

#[test]
fn oltp_twin_access_count_matches_projection_width() {
    let mut space = AddrSpace::new();
    // 5 indexes (2 accesses each) + k columns (2 accesses each).
    for k in [2usize, 6, 13] {
        let dicts = vec![1 << 20; k];
        let mut q = OltpSim::new(&mut space, &[1 << 20; 5], &dicts, 1 << 24);
        let queries = 64u64;
        let (accesses, _) = drive(&mut q, queries);
        assert_eq!(accesses, queries * (10 + 2 * k as u64), "k={k}");
    }
}

#[test]
fn twins_report_the_papers_cuid_taxonomy() {
    use ccp_engine::job::CacheUsageClass;
    let mut space = AddrSpace::new();
    assert_eq!(
        ColumnScanSim::new(&mut space, 1000, 20).cuid(),
        CacheUsageClass::Polluting
    );
    assert_eq!(
        AggregationSim::new(&mut space, 1000, 1000, 10).cuid(),
        CacheUsageClass::Sensitive
    );
    match FkJoinSim::new(&mut space, 1_000_000, 1000).cuid() {
        CacheUsageClass::Mixed { hot_bytes } => assert_eq!(hot_bytes, 125_000),
        other => panic!("join must be Mixed, got {other:?}"),
    }
}

#[test]
fn write_accesses_behave_like_reads_for_caching() {
    // The model is write-allocate: a written line is subsequently present.
    let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
    mem.access(0, 0x4000, AccessKind::Write);
    mem.reset_stats();
    mem.access(0, 0x4000, AccessKind::Read);
    assert_eq!(mem.stats(0).l2.hits, 1);
}
