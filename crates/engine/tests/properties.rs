//! Property-based tests for the engine's scheduling and partitioning
//! invariants.

use ccp_cachesim::HierarchyConfig;
use ccp_engine::job::CacheUsageClass;
use ccp_engine::partition::PartitionPolicy;
use ccp_engine::scheduler::{is_cache_sensitive, CacheAwareScheduler};
use proptest::prelude::*;

fn paper_policy() -> PartitionPolicy {
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes)
}

fn arb_cuid() -> impl Strategy<Value = CacheUsageClass> {
    prop_oneof![
        Just(CacheUsageClass::Polluting),
        Just(CacheUsageClass::Sensitive),
        (1u64..1_000_000_000).prop_map(|hot_bytes| CacheUsageClass::Mixed { hot_bytes }),
    ]
}

proptest! {
    /// The policy always yields a legal CAT mask with at least 2 ways
    /// (the paper's 0x1 prohibition), never exceeding the LLC.
    #[test]
    fn policy_masks_always_legal(cuid in arb_cuid()) {
        let p = paper_policy();
        let m = p.mask_for(cuid);
        prop_assert!(m.way_count() >= 2, "never a single way: {m}");
        prop_assert!(m.check_fits(20).is_ok());
        // Contiguity is guaranteed by the WayMask type; spot-check anyway.
        let bits = m.bits();
        let shifted = bits >> bits.trailing_zeros();
        prop_assert_eq!(shifted & shifted.wrapping_add(1), 0);
    }

    /// Sensitive operators always receive at least as much cache as
    /// polluting ones.
    #[test]
    fn sensitive_never_below_polluting(hot in 1u64..1_000_000_000) {
        let p = paper_policy();
        let polluter = p.mask_for(CacheUsageClass::Polluting).way_count();
        let sensitive = p.mask_for(CacheUsageClass::Sensitive).way_count();
        let mixed = p.mask_for(CacheUsageClass::Mixed { hot_bytes: hot }).way_count();
        prop_assert!(sensitive >= mixed);
        prop_assert!(mixed >= polluter);
    }

    /// Wave plans partition the queue: every query exactly once, order
    /// within a wave preserved, and never two cache-sensitive queries in
    /// one wave.
    #[test]
    fn wave_plan_invariants(
        queue in proptest::collection::vec(arb_cuid(), 0..40),
        slots in 1usize..6,
    ) {
        let p = paper_policy();
        let sched = CacheAwareScheduler::new(p, slots);
        let waves = sched.plan_waves(&queue);

        // Partition: each index exactly once.
        let mut seen: Vec<usize> = waves.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..queue.len()).collect::<Vec<_>>());

        for wave in &waves {
            // Capacity respected.
            prop_assert!(wave.len() <= slots);
            // At most one cache-sensitive member.
            let sensitive = wave
                .iter()
                .filter(|&&i| is_cache_sensitive(&p, queue[i]))
                .count();
            prop_assert!(sensitive <= 1, "wave {wave:?} has {sensitive} sensitive queries");
            // Stable order within the wave.
            prop_assert!(wave.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Greedy planning never produces more waves than one-query-per-wave.
    #[test]
    fn plan_is_no_worse_than_serial(queue in proptest::collection::vec(arb_cuid(), 1..40)) {
        let sched = CacheAwareScheduler::new(paper_policy(), 4);
        let waves = sched.plan_waves(&queue);
        prop_assert!(waves.len() <= queue.len());
        prop_assert!(!waves.is_empty());
    }

    /// Classification is a function of the policy's size bands: the mixed
    /// class flips from confined to 60% and back exactly at the
    /// documented boundaries.
    #[test]
    fn mixed_band_is_contiguous(hot in 1u64..2_000_000_000) {
        let p = paper_policy();
        let m = p.mask_for(CacheUsageClass::Mixed { hot_bytes: hot });
        let in_band = p.is_llc_comparable(hot);
        if in_band {
            prop_assert_eq!(m.bits(), 0xfff);
        } else {
            prop_assert_eq!(m.bits(), 0x3);
        }
    }
}
