//! Native concurrent workload driver — the real-hardware analogue of the
//! simulator's virtual-time protocol.
//!
//! The paper's evaluation loop (Section VI-A) is: *execute all queries
//! repeatedly for 90 seconds; report each query's throughput normalized to
//! its isolated throughput*. [`run_mixed`] implements exactly that over
//! arbitrary native query closures (which typically dispatch jobs through a
//! partitioned [`ccp_engine::JobExecutor`]): one driver thread per query
//! re-executes it until the deadline and counts completions.
//!
//! On a CAT machine with the resctrl allocator this measures the real
//! effect of cache partitioning; everywhere else it is still a correct
//! concurrent-throughput harness (and is used by the test suite with
//! millisecond deadlines).

use std::time::{Duration, Instant};

/// One query of a native mixed workload.
pub struct NativeQuery<'a> {
    /// Display name.
    pub name: String,
    /// Executes the query once (e.g. submits jobs and waits).
    pub run_once: Box<dyn Fn() + Send + Sync + 'a>,
}

impl<'a> NativeQuery<'a> {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, run_once: impl Fn() + Send + Sync + 'a) -> Self {
        NativeQuery {
            name: name.into(),
            run_once: Box::new(run_once),
        }
    }
}

/// Completion counts of one mixed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedRunReport {
    /// `(query name, completed executions)` in submission order.
    pub completions: Vec<(String, u64)>,
    /// Wall-clock duration actually spent.
    pub elapsed: Duration,
}

impl MixedRunReport {
    /// Executions per second of query `idx`.
    pub fn throughput(&self, idx: usize) -> f64 {
        self.completions[idx].1 as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Publishes each query's absolute throughput (executions/s) and
    /// completion count from this run into `registry`, labeled by query
    /// name — so a bench or serving process exposes its latest mixed-run
    /// results next to the executor and resctrl families.
    pub fn export_metrics(&self, registry: &ccp_obs::Registry) {
        let tput = registry.gauge_family(
            "ccp_native_query_throughput",
            "Query executions per second in the last mixed run",
        );
        let done = registry.gauge_family(
            "ccp_native_query_completions",
            "Query executions completed in the last mixed run",
        );
        for (i, (name, n)) in self.completions.iter().enumerate() {
            tput.get_or_create(&[("query", name)])
                .set(self.throughput(i));
            done.get_or_create(&[("query", name)]).set(*n as f64);
        }
        registry
            .gauge_family(
                "ccp_native_run_elapsed_seconds",
                "Wall-clock duration of the last mixed run",
            )
            .get_or_create(&[])
            .set(self.elapsed.as_secs_f64());
    }
}

/// Publishes normalized throughput results (as produced by
/// [`run_mixed_normalized`]) into `registry` — the paper's headline
/// metric, per query.
pub fn export_normalized_metrics(registry: &ccp_obs::Registry, results: &[(String, f64)]) {
    let fam = registry.gauge_family(
        "ccp_native_normalized_throughput",
        "Concurrent / isolated throughput per query (1.0 = no interference)",
    );
    for (name, norm) in results {
        fam.get_or_create(&[("query", name)]).set(*norm);
    }
}

/// Runs every query concurrently (one driver thread each), re-executing
/// until `duration` elapses. Queries always finish their current execution,
/// so short deadlines still yield at least one completion per query.
///
/// # Panics
/// Panics when `queries` is empty.
pub fn run_mixed(duration: Duration, queries: &[NativeQuery<'_>]) -> MixedRunReport {
    assert!(!queries.is_empty(), "a mixed run needs at least one query");
    let start = Instant::now();
    let deadline = start + duration;
    let counts: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                scope.spawn(move || {
                    let mut n = 0u64;
                    loop {
                        (q.run_once)();
                        n += 1;
                        if Instant::now() >= deadline {
                            return n;
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    MixedRunReport {
        completions: queries
            .iter()
            .zip(counts)
            .map(|(q, n)| (q.name.clone(), n))
            .collect(),
        elapsed: start.elapsed(),
    }
}

/// Measures one query alone, then all queries together, and reports each
/// query's normalized throughput (concurrent / isolated) — the paper's
/// metric, natively.
///
/// # Panics
/// Panics when `queries` is empty.
pub fn run_mixed_normalized(duration: Duration, queries: &[NativeQuery<'_>]) -> Vec<(String, f64)> {
    let isolated: Vec<f64> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let report = run_mixed(duration, std::slice::from_ref(q));
            let _ = i;
            report.throughput(0)
        })
        .collect();
    let together = run_mixed(duration, queries);
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let norm = if isolated[i] > 0.0 {
                together.throughput(i) / isolated[i]
            } else {
                0.0
            };
            (q.name.clone(), norm)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_query_completes_at_least_once() {
        let calls = AtomicU64::new(0);
        let queries = vec![
            NativeQuery::new("a", || {
                calls.fetch_add(1, Ordering::Relaxed);
            }),
            NativeQuery::new("b", || {
                calls.fetch_add(1, Ordering::Relaxed);
            }),
        ];
        let report = run_mixed(Duration::from_millis(20), &queries);
        assert_eq!(report.completions.len(), 2);
        for (name, n) in &report.completions {
            assert!(*n >= 1, "query {name} never completed");
        }
        assert!(calls.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn deadline_is_respected() {
        let queries = vec![NativeQuery::new("sleepy", || {
            std::thread::sleep(Duration::from_millis(5))
        })];
        let report = run_mixed(Duration::from_millis(30), &queries);
        // Finishes the in-flight execution but does not run forever.
        assert!(report.elapsed < Duration::from_millis(500));
        assert!(report.completions[0].1 >= 1);
    }

    #[test]
    fn throughput_is_counts_over_time() {
        let queries = vec![NativeQuery::new("fast", || {})];
        let report = run_mixed(Duration::from_millis(10), &queries);
        assert!(report.throughput(0) > 0.0);
    }

    #[test]
    fn normalized_reports_one_positive_value_per_query() {
        // Wall-clock ratios are too noisy to assert numerically in CI
        // (this binary runs simulator tests on every core in parallel);
        // assert the structural contract instead: one finite, positive
        // normalized value per query, names preserved, order preserved.
        let queries = vec![
            NativeQuery::new("x", || std::thread::sleep(Duration::from_millis(1))),
            NativeQuery::new("y", || std::thread::sleep(Duration::from_millis(1))),
        ];
        let out = run_mixed_normalized(Duration::from_millis(20), &queries);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "x");
        assert_eq!(out[1].0, "y");
        for (name, norm) in out {
            assert!(
                norm.is_finite() && norm > 0.0,
                "query {name} normalized {norm}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_mixed_run_rejected() {
        let _ = run_mixed(Duration::from_millis(1), &[]);
    }

    #[test]
    fn export_publishes_per_query_gauges() {
        let queries = vec![
            NativeQuery::new("q1_scan", || {}),
            NativeQuery::new("q2_agg", || {}),
        ];
        let report = run_mixed(Duration::from_millis(5), &queries);
        let registry = ccp_obs::Registry::new();
        report.export_metrics(&registry);
        export_normalized_metrics(
            &registry,
            &[("q1_scan".to_string(), 1.0), ("q2_agg".to_string(), 0.86)],
        );
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_native_query_throughput{query=\"q1_scan\"}"));
        assert!(text.contains("ccp_native_query_completions{query=\"q2_agg\"}"));
        assert!(text.contains("ccp_native_run_elapsed_seconds"));
        assert!(text.contains("ccp_native_normalized_throughput{query=\"q2_agg\"} 0.86"));
    }
}
