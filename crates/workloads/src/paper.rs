//! Builders for the paper's exact micro-benchmark queries (Section III-B).
//!
//! All data-structure sizes are at paper scale; row counts are virtual
//! (large enough never to wrap within an experiment window, see
//! `ccp_engine::sim` for the scaling argument).

use ccp_cachesim::AddrSpace;
use ccp_engine::sim::{AggregationSim, ColumnScanSim, FkJoinSim, SimOperator};

/// 4 MiB — the paper's small Query 2 dictionary (10⁶ distinct values).
pub const DICT_4MIB: u64 = 4 << 20;
/// 40 MiB — the paper's medium dictionary (10⁷ distinct values).
pub const DICT_40MIB: u64 = 40 << 20;
/// 400 MiB — the paper's large dictionary (10⁸ distinct values).
pub const DICT_400MIB: u64 = 400 << 20;

/// The group counts swept in Figures 5, 9 and 10: 10² .. 10⁶.
pub const GROUP_SWEEP: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// The primary-key counts swept in Figure 6: 10⁶ .. 10⁹.
pub const PK_SWEEP: [u64; 4] = [1_000_000, 10_000_000, 100_000_000, 1_000_000_000];

/// Virtual row count for the scan column: large enough that a measurement
/// window never wraps (the paper's table has 10⁹ rows ≈ 2.5 GB; we size the
/// region identically in spirit — far beyond the LLC).
const SCAN_ROWS: u64 = 1 << 33;

/// Virtual row count for aggregation/join probe inputs.
const BIG_ROWS: u64 = 1 << 40;

/// Query 1: `SELECT COUNT(*) FROM A WHERE A.X > ?` — the 20-bit-packed
/// column scan.
pub fn q1_scan(space: &mut AddrSpace) -> Box<dyn SimOperator> {
    Box::new(ColumnScanSim::paper_q1(space, SCAN_ROWS))
}

/// Query 2: `SELECT MAX(B.V), B.G FROM B GROUP BY B.G` with a dictionary of
/// `dict_bytes` on `B.V` and `groups` distinct values in `B.G`.
pub fn q2_aggregation(space: &mut AddrSpace, dict_bytes: u64, groups: u64) -> Box<dyn SimOperator> {
    Box::new(AggregationSim::paper_q2(
        space, BIG_ROWS, dict_bytes, groups,
    ))
}

/// Query 3: `SELECT COUNT(*) FROM R, S WHERE R.P = S.F` with `pk_count`
/// primary keys (bit vector of `pk_count / 8` bytes).
pub fn q3_join(space: &mut AddrSpace, pk_count: u64) -> Box<dyn SimOperator> {
    Box::new(FkJoinSim::new(space, pk_count, BIG_ROWS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_engine::job::CacheUsageClass;

    #[test]
    fn q1_is_polluting() {
        let mut space = AddrSpace::new();
        let q = q1_scan(&mut space);
        assert_eq!(q.cuid(), CacheUsageClass::Polluting);
    }

    #[test]
    fn q2_is_sensitive() {
        let mut space = AddrSpace::new();
        let q = q2_aggregation(&mut space, DICT_4MIB, 1000);
        assert_eq!(q.cuid(), CacheUsageClass::Sensitive);
    }

    #[test]
    fn q3_cuid_tracks_pk_count() {
        let mut space = AddrSpace::new();
        for (pks, expected_bytes) in [(1_000_000u64, 125_000u64), (100_000_000, 12_500_000)] {
            let q = q3_join(&mut space, pks);
            assert_eq!(
                q.cuid(),
                CacheUsageClass::Mixed {
                    hot_bytes: expected_bytes
                }
            );
        }
    }

    #[test]
    fn sweeps_match_paper_ranges() {
        assert_eq!(GROUP_SWEEP.len(), 5);
        assert_eq!(PK_SWEEP.len(), 4);
        assert_eq!(GROUP_SWEEP[0], 100);
        assert_eq!(GROUP_SWEEP[4], 1_000_000);
        assert_eq!(PK_SWEEP[3], 1_000_000_000);
    }
}
