//! The paper's measurement protocol, packaged.
//!
//! Three kinds of experiments regenerate every figure:
//!
//! * **LLC sweeps** ([`Experiment::llc_sweep`]) — one query alone while its
//!   cache allocation shrinks from the full LLC down to one way
//!   (Figures 4–6); throughput is normalized to the full-cache run.
//! * **Concurrent runs** ([`Experiment::run_concurrent_normalized`]) — two
//!   (or more) queries co-run for a virtual-time window; each query's
//!   throughput is normalized to its isolated full-cache throughput
//!   (Figures 1, 9–12).
//! * **Isolated baselines** ([`Experiment::run_isolated`]) — the
//!   normalization denominators.

use ccp_cachesim::{AddrSpace, HierarchyConfig, StreamStats, WayMask};
use ccp_engine::partition::PartitionPolicy;
use ccp_engine::sim::{
    driver::{DEFAULT_MEASURE_CYCLES, DEFAULT_WARM_CYCLES},
    run_concurrent, run_isolated, SimOperator, SimWorkload, StreamOutcome,
};

/// A builder producing a fresh operator twin inside the given address
/// space. Experiments need to build each operator several times (isolated
/// baseline + concurrent run), hence a factory instead of a value.
pub type OpBuilder<'a> = Box<dyn Fn(&mut AddrSpace) -> Box<dyn SimOperator> + 'a>;

/// How a query's LLC mask is chosen in a concurrent run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskChoice {
    /// Full cache — the unpartitioned baseline.
    Full,
    /// An explicit mask.
    Mask(WayMask),
    /// Derived from the operator's CUID through the paper's
    /// [`PartitionPolicy`] — what the integrated engine does.
    Policy,
}

/// One query of a concurrent experiment.
pub struct QuerySpec<'a> {
    /// Display name.
    pub name: String,
    /// Factory for the operator twin.
    pub build: OpBuilder<'a>,
    /// Mask selection.
    pub mask: MaskChoice,
}

impl<'a> QuerySpec<'a> {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        mask: MaskChoice,
        build: impl Fn(&mut AddrSpace) -> Box<dyn SimOperator> + 'a,
    ) -> Self {
        QuerySpec {
            name: name.into(),
            build: Box::new(build),
            mask,
        }
    }
}

/// Result of one query in a concurrent experiment.
#[derive(Debug, Clone)]
pub struct NormalizedOutcome {
    /// Query name.
    pub name: String,
    /// Throughput normalized to the isolated full-cache run — the paper's
    /// y-axis everywhere.
    pub normalized: f64,
    /// Raw concurrent throughput (work per kilo-cycle).
    pub concurrent_throughput: f64,
    /// Raw isolated throughput.
    pub isolated_throughput: f64,
    /// Stream statistics over the concurrent measurement window.
    pub stats: StreamStats,
}

/// One point of an LLC sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Allocated LLC bytes at this point.
    pub llc_bytes: u64,
    /// Number of ways granted.
    pub ways: u32,
    /// Throughput normalized to the full-cache run.
    pub normalized: f64,
    /// LLC hit ratio at this point.
    pub llc_hit_ratio: f64,
    /// LLC misses per instruction at this point.
    pub llc_mpi: f64,
}

/// Experiment configuration: machine model plus virtual-time windows.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Simulated memory system (default: the paper's Broadwell).
    pub cfg: HierarchyConfig,
    /// Warm-up virtual cycles (statistics discarded).
    pub warm_cycles: u64,
    /// Measurement virtual cycles.
    pub measure_cycles: u64,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            cfg: HierarchyConfig::broadwell_e5_2699_v4(),
            warm_cycles: DEFAULT_WARM_CYCLES,
            measure_cycles: DEFAULT_MEASURE_CYCLES,
        }
    }
}

impl Experiment {
    /// A faster configuration for CI/tests: shorter windows, same machine.
    pub fn quick() -> Self {
        Experiment {
            warm_cycles: 4_000_000,
            measure_cycles: 8_000_000,
            ..Default::default()
        }
    }

    /// The paper's partition policy for this machine.
    pub fn policy(&self) -> PartitionPolicy {
        PartitionPolicy::paper_default(self.cfg.llc, self.cfg.l2.size_bytes)
    }

    /// Measures one query running alone with the full cache.
    pub fn run_isolated(&self, name: &str, build: &OpBuilder<'_>) -> StreamOutcome {
        let mut space = AddrSpace::new();
        let op = build(&mut space);
        run_isolated(&self.cfg, name, op, self.warm_cycles, self.measure_cycles)
    }

    /// Sweeps a query's LLC allocation over `sizes` (bytes, rounded to
    /// whole ways) — the protocol of Figures 4–6. Throughput at each point
    /// is normalized to the largest allocation in `sizes`.
    ///
    /// # Panics
    /// Panics when `sizes` is empty.
    pub fn llc_sweep(&self, build: &OpBuilder<'_>, sizes: &[u64]) -> Vec<SweepPoint> {
        assert!(!sizes.is_empty(), "sweep needs at least one size");
        let mut points: Vec<(u64, WayMask, StreamOutcome)> = sizes
            .iter()
            .map(|&bytes| {
                let mask = self
                    .cfg
                    .llc_mask_for_bytes(bytes)
                    .expect("sweep sizes validated against LLC geometry");
                let mut space = AddrSpace::new();
                let op = build(&mut space);
                let out = run_concurrent(
                    &self.cfg,
                    vec![SimWorkload::masked("sweep", op, mask)],
                    self.warm_cycles,
                    self.measure_cycles,
                );
                let s = out.streams.into_iter().next().expect("one workload");
                (bytes, mask, s)
            })
            .collect();
        let best = points
            .iter()
            .map(|(_, _, s)| s.throughput)
            .fold(f64::MIN, f64::max)
            .max(f64::MIN_POSITIVE);
        points
            .drain(..)
            .map(|(_bytes, mask, s)| SweepPoint {
                llc_bytes: mask.capacity_bytes(self.cfg.llc.size_bytes, self.cfg.llc.ways),
                ways: mask.way_count(),
                normalized: s.throughput / best,
                llc_hit_ratio: s.stats.llc_effective_hit_ratio(),
                llc_mpi: s.stats.llc_mpi(),
            })
            .collect()
    }

    /// Runs the queries concurrently and reports each one's throughput
    /// normalized to its own isolated full-cache baseline — the paper's
    /// Figure 1/9/10/11/12 protocol.
    pub fn run_concurrent_normalized(&self, specs: &[QuerySpec<'_>]) -> Vec<NormalizedOutcome> {
        let policy = self.policy();
        // Isolated baselines, one at a time.
        let isolated: Vec<StreamOutcome> = specs
            .iter()
            .map(|q| self.run_isolated(&q.name, &q.build))
            .collect();
        // The concurrent run: all operators share one address space (they
        // are distinct regions; sharing the space only keeps them from
        // aliasing).
        let mut space = AddrSpace::new();
        let workloads: Vec<SimWorkload> = specs
            .iter()
            .map(|q| {
                let op = (q.build)(&mut space);
                let mask = match q.mask {
                    MaskChoice::Full => None,
                    MaskChoice::Mask(m) => Some(m),
                    MaskChoice::Policy => Some(policy.mask_for(op.cuid())),
                };
                SimWorkload {
                    name: q.name.clone(),
                    op,
                    mask,
                }
            })
            .collect();
        let out = run_concurrent(&self.cfg, workloads, self.warm_cycles, self.measure_cycles);
        out.streams
            .into_iter()
            .zip(isolated)
            .map(|(conc, iso)| NormalizedOutcome {
                name: conc.name.clone(),
                normalized: if iso.throughput > 0.0 {
                    conc.throughput / iso.throughput
                } else {
                    0.0
                },
                concurrent_throughput: conc.throughput,
                isolated_throughput: iso.throughput,
                stats: conc.stats,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn tiny_experiment() -> Experiment {
        Experiment {
            warm_cycles: 1_000_000,
            measure_cycles: 2_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn isolated_baseline_runs() {
        let e = tiny_experiment();
        let build: OpBuilder = Box::new(paper::q1_scan);
        let out = e.run_isolated("q1", &build);
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn llc_sweep_normalizes_to_best() {
        let e = tiny_experiment();
        let build: OpBuilder = Box::new(|s| paper::q2_aggregation(s, paper::DICT_4MIB, 100_000));
        let sizes = [e.cfg.llc.size_bytes, e.cfg.llc.size_bytes / 10];
        let points = e.llc_sweep(&build, &sizes);
        assert_eq!(points.len(), 2);
        let best = points.iter().map(|p| p.normalized).fold(f64::MIN, f64::max);
        assert!(
            (best - 1.0).abs() < 1e-9,
            "best point must normalize to 1.0"
        );
        // The LLC-sized hash table must be slower with 10% of the cache.
        assert!(points[1].normalized < 0.85, "got {}", points[1].normalized);
        assert_eq!(points[0].ways, 20);
        assert_eq!(points[1].ways, 2);
    }

    #[test]
    fn concurrent_normalized_reports_both_queries() {
        let e = tiny_experiment();
        let specs = vec![
            QuerySpec::new("q2", MaskChoice::Full, |s| {
                paper::q2_aggregation(s, paper::DICT_4MIB, 100_000)
            }),
            QuerySpec::new("q1", MaskChoice::Full, paper::q1_scan),
        ];
        let out = e.run_concurrent_normalized(&specs);
        assert_eq!(out.len(), 2);
        for o in &out {
            assert!(
                o.normalized > 0.0 && o.normalized < 1.05,
                "{}: {}",
                o.name,
                o.normalized
            );
            assert!(o.isolated_throughput > 0.0);
        }
        // The aggregation suffers from the scan.
        assert!(out[0].normalized < 0.9);
    }

    #[test]
    fn policy_mask_choice_confines_the_scan() {
        // Longer windows: the partitioning effect needs steady state in a
        // 55 MiB LLC, which the 1M-cycle warm-up of the other tests does
        // not reach.
        let e = Experiment {
            warm_cycles: 6_000_000,
            measure_cycles: 10_000_000,
            ..Default::default()
        };
        let specs = vec![
            QuerySpec::new("q2", MaskChoice::Policy, |s| {
                paper::q2_aggregation(s, paper::DICT_4MIB, 100_000)
            }),
            QuerySpec::new("q1", MaskChoice::Policy, paper::q1_scan),
        ];
        let part = e.run_concurrent_normalized(&specs);
        let specs_base = vec![
            QuerySpec::new("q2", MaskChoice::Full, |s| {
                paper::q2_aggregation(s, paper::DICT_4MIB, 100_000)
            }),
            QuerySpec::new("q1", MaskChoice::Full, paper::q1_scan),
        ];
        let base = e.run_concurrent_normalized(&specs_base);
        assert!(
            part[0].normalized > base[0].normalized + 0.05,
            "partitioning must lift the aggregation: {} vs {}",
            part[0].normalized,
            base[0].normalized
        );
    }
}
