//! Adaptive partitioning control.
//!
//! The paper fixes its partitioning scheme offline and argues it "may
//! improve but never degrade performance". This module closes the loop the
//! paper leaves open: measure *both* configurations in alternating probe
//! windows and keep whichever is better — so even a workload that somehow
//! loses from partitioning (e.g. a mis-classified operator) converges to
//! the unpartitioned configuration, making the no-regression property a
//! control-loop guarantee instead of a modeling assumption.
//!
//! The controller is deliberately simple (two-phase probe, hysteresis
//! band, periodic re-probe) — it is the database-friendly version of the
//! miss-ratio-curve controllers the paper cites from the systems
//! community.

use crate::experiment::{Experiment, MaskChoice, QuerySpec};

/// Which configuration the controller chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Apply the CUID-derived masks.
    Partitioned,
    /// Leave every query with the full cache.
    Unpartitioned,
}

/// Outcome of one adaptation round.
#[derive(Debug, Clone)]
pub struct AdaptationReport {
    /// Chosen configuration.
    pub decision: Decision,
    /// Mean normalized throughput across queries, unpartitioned probe.
    pub unpartitioned_score: f64,
    /// Mean normalized throughput across queries, partitioned probe.
    pub partitioned_score: f64,
    /// Relative advantage of the winner over the loser.
    pub margin: f64,
}

/// Probe-based adaptive controller.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveController {
    /// Experiment windows used for the probe runs.
    pub probe: Experiment,
    /// Hysteresis: partitioning must win by at least this relative margin
    /// to be (re)enabled — flapping between configurations is worse than
    /// either.
    pub hysteresis: f64,
}

impl AdaptiveController {
    /// A controller with short probe windows and a 1 % hysteresis band.
    pub fn new(probe: Experiment) -> Self {
        AdaptiveController {
            probe,
            hysteresis: 0.01,
        }
    }

    /// Probes the workload both ways and decides.
    ///
    /// `specs` describe the concurrent queries with their *policy* masks;
    /// the controller overrides the masks for the unpartitioned probe.
    pub fn adapt(&self, specs: &[QuerySpec<'_>]) -> AdaptationReport {
        let score = |mask_override: Option<MaskChoice>| -> f64 {
            let probed: Vec<QuerySpec<'_>> = specs
                .iter()
                .map(|q| QuerySpec {
                    name: q.name.clone(),
                    build: Box::new(|s| (q.build)(s)),
                    mask: mask_override.unwrap_or(q.mask),
                })
                .collect();
            let out = self.probe.run_concurrent_normalized(&probed);
            out.iter().map(|o| o.normalized).sum::<f64>() / out.len().max(1) as f64
        };
        let unpartitioned_score = score(Some(MaskChoice::Full));
        let partitioned_score = score(None);
        let decision = if partitioned_score > unpartitioned_score * (1.0 + self.hysteresis) {
            Decision::Partitioned
        } else {
            Decision::Unpartitioned
        };
        let (hi, lo) = if partitioned_score >= unpartitioned_score {
            (partitioned_score, unpartitioned_score)
        } else {
            (unpartitioned_score, partitioned_score)
        };
        AdaptationReport {
            decision,
            unpartitioned_score,
            partitioned_score,
            margin: if lo > 0.0 { hi / lo - 1.0 } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn probe() -> Experiment {
        Experiment {
            warm_cycles: 1_500_000,
            measure_cycles: 3_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn chooses_partitioning_for_the_papers_mixed_workload() {
        // Scan + LLC-sized aggregation: partitioning clearly wins.
        let specs = vec![
            QuerySpec::new("q2", MaskChoice::Policy, |s| {
                paper::q2_aggregation(s, paper::DICT_40MIB, 10_000)
            }),
            QuerySpec::new("q1", MaskChoice::Policy, paper::q1_scan),
        ];
        let report = AdaptiveController::new(probe()).adapt(&specs);
        assert_eq!(report.decision, Decision::Partitioned, "{report:?}");
        assert!(report.margin > 0.05, "clear margin expected: {report:?}");
    }

    #[test]
    fn stays_unpartitioned_when_masks_cannot_help() {
        // Two scans: both get confined under the policy, and confinement
        // neither helps nor hurts — hysteresis keeps the status quo.
        let specs = vec![
            QuerySpec::new("s1", MaskChoice::Policy, paper::q1_scan),
            QuerySpec::new("s2", MaskChoice::Policy, paper::q1_scan),
        ];
        let report = AdaptiveController::new(probe()).adapt(&specs);
        assert_eq!(report.decision, Decision::Unpartitioned, "{report:?}");
        assert!(
            report.margin < 0.05,
            "no meaningful margin expected: {report:?}"
        );
    }

    #[test]
    fn report_scores_are_sane() {
        let specs = vec![
            QuerySpec::new("q2", MaskChoice::Policy, |s| {
                paper::q2_aggregation(s, paper::DICT_4MIB, 100_000)
            }),
            QuerySpec::new("q1", MaskChoice::Policy, paper::q1_scan),
        ];
        let report = AdaptiveController::new(probe()).adapt(&specs);
        for v in [report.partitioned_score, report.unpartitioned_score] {
            assert!(
                v > 0.0 && v <= 1.1,
                "normalized scores stay near [0,1]: {report:?}"
            );
        }
    }
}
