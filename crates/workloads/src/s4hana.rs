//! The S/4HANA ACDOCA OLTP workload (paper Section VI-E).
//!
//! ACDOCA ("Universal Journal Entry Line Items") is a 336-column table with
//! 151 million rows in the paper's customer extract. The measured query is
//! an indexed point select over five primary-key columns projecting either
//! 13 columns with the *biggest* dictionaries (Figure 12a) or 6 columns
//! with smaller dictionaries (Figure 12b). The real table is proprietary;
//! these profiles synthesize the only properties that matter for cache
//! behaviour — the dictionary sizes of the projected columns — at
//! magnitudes consistent with the paper's observations (working set
//! comparable to the 55 MiB LLC for the 13-column projection).

use ccp_cachesim::AddrSpace;
use ccp_engine::sim::{OltpSim, SimOperator};

/// Dictionary sizes (bytes) of the 13 largest ACDOCA NVARCHAR dictionaries
/// used by the modified query of Figure 12a. Mostly document/assignment
/// text and reference-key columns; the sum (≈ 45 MiB) plus the five
/// inverted indexes lands the working set at LLC scale.
pub const BIG13_DICTS: [u64; 13] = [
    8 << 20,       // 8 MiB
    6 << 20,       // 6 MiB
    5 << 20,       // 5 MiB
    4 << 20,       // 4 MiB
    4 << 20,       // 4 MiB
    3 << 20,       // 3 MiB
    3 << 20,       // 3 MiB
    5 * (1 << 19), // 2.5 MiB
    5 * (1 << 19), // 2.5 MiB
    2 << 20,       // 2 MiB
    2 << 20,       // 2 MiB
    3 * (1 << 19), // 1.5 MiB
    3 * (1 << 19), // 1.5 MiB
];

/// Dictionary sizes of the 6 (smaller) columns projected by the unmodified
/// customer query of Figure 12b (≈ 7 MiB total).
pub const SMALL6_DICTS: [u64; 6] = [
    2 << 20,       // 2 MiB
    3 * (1 << 19), // 1.5 MiB
    1 << 20,       // 1 MiB
    1 << 20,       // 1 MiB
    3 * (1 << 18), // 0.75 MiB
    1 << 19,       // 0.5 MiB
];

/// The Figure 12a query: point select projecting the 13 biggest columns.
pub fn oltp_13col(space: &mut AddrSpace) -> Box<dyn SimOperator> {
    Box::new(OltpSim::paper_acdoca(space, &BIG13_DICTS))
}

/// The Figure 12b query: point select projecting 6 smaller columns.
pub fn oltp_6col(space: &mut AddrSpace) -> Box<dyn SimOperator> {
    Box::new(OltpSim::paper_acdoca(space, &SMALL6_DICTS))
}

/// The Section VI-E sweep: project the `k` biggest dictionaries,
/// `k ∈ 2..=13`.
///
/// # Panics
/// Panics when `k` is outside `1..=13`.
pub fn oltp_k_cols(space: &mut AddrSpace, k: usize) -> Box<dyn SimOperator> {
    assert!(
        (1..=13).contains(&k),
        "ACDOCA sweep projects 1..=13 columns, got {k}"
    );
    Box::new(OltpSim::paper_acdoca(space, &BIG13_DICTS[..k]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_totals_are_at_paper_scale() {
        let big: u64 = BIG13_DICTS.iter().sum();
        let small: u64 = SMALL6_DICTS.iter().sum();
        // 13-column projection: ~45 MiB of dictionaries (LLC-comparable).
        assert!(big > 40 << 20 && big < 50 << 20, "big13 total {big}");
        // 6-column projection: well below the LLC.
        assert!(small > 5 << 20 && small < 10 << 20, "small6 total {small}");
    }

    #[test]
    fn k_sweep_is_monotone_in_working_set() {
        let mut space = AddrSpace::new();
        let mut last = 0;
        for k in 2..=13 {
            let q = oltp_k_cols(&mut space, k);
            // Names embed the working set in MiB; extract monotonicity via
            // the builder instead: rebuild OltpSim directly.
            drop(q);
            let ws: u64 = BIG13_DICTS[..k].iter().sum();
            assert!(ws > last);
            last = ws;
        }
    }

    #[test]
    #[should_panic(expected = "1..=13")]
    fn oversized_projection_rejected() {
        let mut space = AddrSpace::new();
        let _ = oltp_k_cols(&mut space, 14);
    }
}
