//! # ccp-workloads
//!
//! The paper's workloads and measurement protocol:
//!
//! * [`paper`] — builders for the exact micro-benchmark configurations of
//!   Sections III/VI: Query 1 (column scan), Query 2 (aggregation with
//!   grouping, dictionary 4/40/400 MiB × 10²..10⁶ groups), Query 3
//!   (foreign-key join, 10⁶..10⁹ primary keys).
//! * [`s4hana`] — the ACDOCA-style OLTP point query of Section VI-E,
//!   including the 13-column / 6-column projections of Figure 12 and the
//!   2..13-column working-set sweep.
//! * [`experiment`] — the measurement protocol: isolated baselines, LLC
//!   sweeps (Figures 4–6) and concurrent normalized-throughput runs
//!   (Figures 1, 9–12), each returning ready-to-print rows.
//! * [`native`] — the same repeat-until-deadline protocol over *native*
//!   query closures, for measuring real partitioning on CAT hardware.

pub mod adaptive;
pub mod experiment;
pub mod native;
pub mod paper;
pub mod s4hana;

pub use adaptive::{AdaptationReport, AdaptiveController, Decision};
pub use experiment::{Experiment, MaskChoice, NormalizedOutcome, QuerySpec, SweepPoint};
pub use native::{
    export_normalized_metrics, run_mixed, run_mixed_normalized, MixedRunReport, NativeQuery,
};
