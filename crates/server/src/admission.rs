//! Bounded, scheduler-gated query admission.
//!
//! Every `/query` request must take a [`RunPermit`] before it touches the
//! executor. Permits come from an [`AdmissionQueue`] that enforces two
//! independent limits:
//!
//! 1. **Concurrency shape** — the engine's
//!    [`CacheAwareScheduler`](ccp_engine::CacheAwareScheduler) decides who
//!    may co-run: at most `slots` queries at once, never two
//!    cache-sensitive ones together (they would fight over the LLC share
//!    partitioning reserves for them). Waiters are served FIFO *with
//!    bypass*: when the head of the queue is a deferred sensitive query, a
//!    polluter behind it may start — the same packing rule
//!    [`plan_waves`](ccp_engine::CacheAwareScheduler::plan_waves) applies
//!    to offline queues.
//! 2. **Queue depth** — at most `capacity` queries may *wait*. Beyond
//!    that, [`acquire`](AdmissionQueue::acquire) fails immediately with
//!    [`AdmissionError::QueueFull`], which the HTTP layer maps to `429`.
//!    Backpressure is explicit and observable instead of an unbounded
//!    thread pile-up.
//!
//! Waiters may additionally carry a **deadline**
//! ([`acquire_with_deadline`](AdmissionQueue::acquire_with_deadline)):
//! a query that waits past it is dequeued and fails with
//! [`AdmissionError::TimedOut`] (HTTP `503` + `Retry-After`), so a
//! saturated server sheds load instead of accumulating doomed work.
//!
//! Every admission is traced ([`ccp_trace`]): an `admission_wait` span
//! covers enqueue→grant, with `enqueue` / `dequeue` / `bypass` /
//! `timeout` instants, all tagged with the admission ticket — the same
//! id the query's operator spans carry downstream.

use crate::metrics::ServerMetrics;
use ccp_engine::{class_label, Admission, CacheAwareScheduler, CacheUsageClass, SchedulerMetrics};
use ccp_resctrl::DEFAULT_TENANT;
use ccp_trace::TraceCat;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Failpoint name (see `ccp-fault`): when armed, admission rejects the
/// arrival with [`AdmissionError::QueueFull`] before touching the queue.
pub const FAULT_ADMISSION: &str = "server.admission";

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded waiting queue is full — retry later (HTTP 429).
    QueueFull,
    /// The query's tenant is at its in-flight quota — retry later
    /// (HTTP 429, counted per tenant).
    QuotaExceeded,
    /// The server is draining — no new work (HTTP 503).
    ShuttingDown,
    /// The query waited past its deadline and was dequeued — retry
    /// later (HTTP 503 with `Retry-After`).
    TimedOut,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull => write!(f, "admission queue full"),
            AdmissionError::QuotaExceeded => write!(f, "tenant admission quota exhausted"),
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
            AdmissionError::TimedOut => write!(f, "timed out waiting for an admission slot"),
        }
    }
}

/// One waiting query.
struct Waiter {
    ticket: u64,
    cuid: CacheUsageClass,
    tenant: Arc<str>,
}

struct State {
    /// CUIDs of queries currently holding a permit.
    running: Vec<CacheUsageClass>,
    /// Tenants of the running queries (parallel to `running`, so the
    /// scheduler's `&[CacheUsageClass]` view stays a plain slice).
    running_tenants: Vec<Arc<str>>,
    /// Waiting queries in arrival order.
    waiting: Vec<Waiter>,
    /// Weighted-fair grant accounting across tenants.
    fair: FairShare,
    next_ticket: u64,
    shutdown: bool,
}

/// Per-tenant admission limits, layered on top of the global capacity
/// and the per-class caps: a `quota` bounds how many of a tenant's
/// queries may be in flight (waiting + running) at once — the arrival
/// that would exceed it gets an immediate per-tenant `429` — and a
/// `weight` biases grant order when several tenants' waiters are
/// admissible at the same moment. Unlisted tenants have no quota and
/// weight 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantLimits {
    quotas: Vec<(String, usize)>,
    weights: Vec<(String, u32)>,
}

impl TenantLimits {
    /// No quotas, every tenant at weight 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps `tenant` at `quota` simultaneous in-flight queries
    /// (builder style; last setting wins).
    #[must_use]
    pub fn with_quota(mut self, tenant: &str, quota: usize) -> Self {
        self.quotas.retain(|(t, _)| t != tenant);
        self.quotas.push((tenant.to_string(), quota));
        self
    }

    /// Gives `tenant` grant weight `weight` (minimum 1; builder style).
    #[must_use]
    pub fn with_weight(mut self, tenant: &str, weight: u32) -> Self {
        self.weights.retain(|(t, _)| t != tenant);
        self.weights.push((tenant.to_string(), weight.max(1)));
        self
    }

    /// The in-flight quota for `tenant`, if one is configured.
    pub fn quota_for(&self, tenant: &str) -> Option<usize> {
        self.quotas
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|&(_, q)| q)
    }

    /// The grant weight for `tenant` (1 when unconfigured).
    pub fn weight_for(&self, tenant: &str) -> u32 {
        self.weights
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(1, |&(_, w)| w)
    }

    /// Every tenant named by a quota or weight, in configuration order.
    pub fn tenants(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for name in self
            .quotas
            .iter()
            .map(|(t, _)| t.as_str())
            .chain(self.weights.iter().map(|(t, _)| t.as_str()))
        {
            if !out.contains(&name) {
                out.push(name);
            }
        }
        out
    }
}

/// Weighted-fair grant selection across tenants — the pure core of the
/// queue's grant order, kept free of locks and clocks so property tests
/// can drive it with arbitrary arrival streams.
///
/// The rule is classic weighted round-robin: among the *head-of-line*
/// admissible waiter of each tenant, grant to the tenant with the
/// smallest normalized grant count `(grants + 1) / weight`; ties go to
/// the earlier ticket. With every weight at 1 and a single tenant this
/// degenerates to plain FIFO-with-bypass, so untenanted deployments
/// behave exactly as before.
#[derive(Debug, Clone, Default)]
pub struct FairShare {
    grants: Vec<(String, u64)>,
}

impl FairShare {
    /// Fresh accounting (no grants yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative grants handed to `tenant`.
    pub fn grants(&self, tenant: &str) -> u64 {
        self.grants
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(0, |&(_, g)| g)
    }

    /// Records that `tenant` won a grant.
    pub fn record_grant(&mut self, tenant: &str) {
        match self.grants.iter_mut().find(|(t, _)| t == tenant) {
            Some((_, g)) => *g += 1,
            None => self.grants.push((tenant.to_string(), 1)),
        }
    }

    /// Tenants with at least one grant, with their counts.
    pub fn all(&self) -> &[(String, u64)] {
        &self.grants
    }

    /// Picks the next grant among `candidates` — the admissible waiters
    /// in FIFO order as `(ticket, tenant)` — returning the winning
    /// ticket. Only each tenant's first (head-of-line) candidate
    /// competes, so order within a tenant stays FIFO; across tenants the
    /// smallest `(grants + 1) / weight` wins, compared exactly via
    /// cross-multiplication.
    pub fn pick(&self, candidates: &[(u64, &str)], weight_of: impl Fn(&str) -> u32) -> Option<u64> {
        let mut seen: Vec<&str> = Vec::new();
        // (ticket, grants + 1, weight) of the best so far.
        let mut best: Option<(u64, u64, u32)> = None;
        for &(ticket, tenant) in candidates {
            if seen.contains(&tenant) {
                continue;
            }
            seen.push(tenant);
            let g = self.grants(tenant) + 1;
            let w = weight_of(tenant).max(1);
            best = match best {
                None => Some((ticket, g, w)),
                Some((bt, bg, bw)) => {
                    // g/w < bg/bw  <=>  g*bw < bg*w (all positive).
                    if u128::from(g) * u128::from(bw) < u128::from(bg) * u128::from(w) {
                        Some((ticket, g, w))
                    } else {
                        Some((bt, bg, bw))
                    }
                }
            };
        }
        best.map(|(t, _, _)| t)
    }
}

/// Optional per-class caps on *waiting* queries, layered under the
/// global `capacity`: a polluter burst then fills at most its own share
/// of the queue instead of starving sensitive arrivals (the paper's
/// admission experiments mix exactly such bursts). `None` means the
/// class is bounded only by the global capacity. A limit of `0` rejects
/// every arrival of that class that would have to exist in the queue —
/// mirroring how a global capacity of `0` behaves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassQueueLimits {
    /// Cap for `CacheUsageClass::Polluting` waiters.
    pub polluting: Option<usize>,
    /// Cap for `CacheUsageClass::Sensitive` waiters.
    pub sensitive: Option<usize>,
    /// Cap for `CacheUsageClass::Mixed` waiters.
    pub mixed: Option<usize>,
}

impl ClassQueueLimits {
    /// The cap that applies to `cuid`, if any.
    pub fn limit_for(&self, cuid: CacheUsageClass) -> Option<usize> {
        match class_label(cuid) {
            "polluting" => self.polluting,
            "sensitive" => self.sensitive,
            _ => self.mixed,
        }
    }
}

/// Bounded admission queue in front of the dual-pool executor.
pub struct AdmissionQueue {
    scheduler: CacheAwareScheduler,
    sched_metrics: SchedulerMetrics,
    server_metrics: ServerMetrics,
    capacity: usize,
    class_limits: ClassQueueLimits,
    tenant_limits: TenantLimits,
    state: Mutex<State>,
    changed: Condvar,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` waiting queries.
    ///
    /// Admission decisions are recorded in `sched_metrics` (register it
    /// into the scrape registry to see them); occupancy and rejections go
    /// to `server_metrics`.
    pub fn new(
        scheduler: CacheAwareScheduler,
        capacity: usize,
        sched_metrics: SchedulerMetrics,
        server_metrics: ServerMetrics,
    ) -> Self {
        AdmissionQueue {
            scheduler,
            sched_metrics,
            server_metrics,
            capacity,
            class_limits: ClassQueueLimits::default(),
            tenant_limits: TenantLimits::default(),
            state: Mutex::new(State {
                running: Vec::new(),
                running_tenants: Vec::new(),
                waiting: Vec::new(),
                fair: FairShare::new(),
                next_ticket: 0,
                shutdown: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Layers per-class waiting caps under the global capacity. Call
    /// before the queue is shared (builder style).
    pub fn with_class_limits(mut self, limits: ClassQueueLimits) -> Self {
        self.class_limits = limits;
        self
    }

    /// Layers per-tenant quotas and grant weights on top of the class
    /// caps. Call before the queue is shared (builder style).
    pub fn with_tenant_limits(mut self, limits: TenantLimits) -> Self {
        self.tenant_limits = limits;
        self
    }

    /// The per-class waiting caps in effect.
    pub fn class_limits(&self) -> ClassQueueLimits {
        self.class_limits
    }

    /// The per-tenant quotas and weights in effect.
    pub fn tenant_limits(&self) -> &TenantLimits {
        &self.tenant_limits
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn publish(&self, st: &State) {
        self.server_metrics
            .set_admission_occupancy(st.waiting.len(), st.running.len());
    }

    /// Blocks until `cuid` may run, then returns a permit; the permit
    /// releases its slot on drop.
    ///
    /// Fails fast (without blocking) when the waiting queue is at
    /// capacity or the queue has been shut down.
    pub fn acquire(self: &Arc<Self>, cuid: CacheUsageClass) -> Result<RunPermit, AdmissionError> {
        self.acquire_tenant(cuid, DEFAULT_TENANT, None)
    }

    /// Like [`acquire`](Self::acquire), but gives up with
    /// [`AdmissionError::TimedOut`] (dequeuing the waiter) when no permit
    /// was granted within `deadline`. `None` waits indefinitely.
    pub fn acquire_with_deadline(
        self: &Arc<Self>,
        cuid: CacheUsageClass,
        deadline: Option<Duration>,
    ) -> Result<RunPermit, AdmissionError> {
        self.acquire_tenant(cuid, DEFAULT_TENANT, deadline)
    }

    /// Like [`acquire_with_deadline`](Self::acquire_with_deadline), but on
    /// behalf of `tenant`: the arrival is refused with
    /// [`AdmissionError::QuotaExceeded`] when the tenant is at its
    /// in-flight quota, and grants among concurrently admissible waiters
    /// follow the weighted-fair order of [`FairShare`].
    pub fn acquire_tenant(
        self: &Arc<Self>,
        cuid: CacheUsageClass,
        tenant: &str,
        deadline: Option<Duration>,
    ) -> Result<RunPermit, AdmissionError> {
        if ccp_fault::should_fail(FAULT_ADMISSION) {
            self.server_metrics.record_admission_rejection();
            return Err(AdmissionError::QueueFull);
        }
        let tenant: Arc<str> = Arc::from(tenant);
        let enqueued = Instant::now();
        let mut st = self.lock();
        if st.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        if st.waiting.len() >= self.capacity {
            self.server_metrics.record_admission_rejection();
            return Err(AdmissionError::QueueFull);
        }
        // The tenant quota bounds *in-flight* queries (waiting + running)
        // — this arrival has not enqueued yet, so a quota of N admits at
        // most N simultaneous queries of the tenant.
        if let Some(quota) = self.tenant_limits.quota_for(&tenant) {
            let in_flight = st.waiting.iter().filter(|w| w.tenant == tenant).count()
                + st.running_tenants.iter().filter(|t| **t == tenant).count();
            if in_flight >= quota {
                self.server_metrics.record_tenant_rejection(&tenant);
                return Err(AdmissionError::QuotaExceeded);
            }
        }
        // The class cap counts *other* waiters of the same class — this
        // arrival has not enqueued yet — so a limit of N admits at most
        // N simultaneous waiters of the class, independent of how much
        // global capacity a burst of that class would otherwise grab.
        if let Some(limit) = self.class_limits.limit_for(cuid) {
            let label = class_label(cuid);
            let same_class = st
                .waiting
                .iter()
                .filter(|w| class_label(w.cuid) == label)
                .count();
            if same_class >= limit {
                self.server_metrics.record_class_rejection(label);
                return Err(AdmissionError::QueueFull);
            }
        }
        // Record the arrival-time decision (admitted vs. deferred) in the
        // scheduler's instruments; re-checks below are not re-counted.
        self.scheduler
            .admit_observed(&st.running, cuid, &self.sched_metrics);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push(Waiter {
            ticket,
            cuid,
            tenant: Arc::clone(&tenant),
        });
        self.publish(&st);
        let wait_span = ccp_trace::span_id(TraceCat::Admission, "admission_wait", ticket);
        ccp_trace::instant_id(TraceCat::Admission, "enqueue", ticket);
        // Decision time (scheduler admissibility scans on behalf of this
        // waiter) is accounted separately from pure queueing time.
        let mut sched_ns: u64 = 0;
        loop {
            if st.shutdown {
                st.waiting.retain(|w| w.ticket != ticket);
                self.publish(&st);
                self.changed.notify_all();
                return Err(AdmissionError::ShuttingDown);
            }
            // FIFO with bypass, weighted across tenants: among the
            // admissible waiters (a polluter may overtake a deferred
            // sensitive query — it fills the wave), each tenant's
            // head-of-line candidate competes and the weighted-fair rule
            // picks the winner. With one tenant this is exactly "the
            // first admissible waiter starts".
            let decide_started = Instant::now();
            let winner = {
                let admissible: Vec<(u64, &str)> = st
                    .waiting
                    .iter()
                    .filter(|w| self.scheduler.admit(&st.running, w.cuid) == Admission::RunNow)
                    .map(|w| (w.ticket, &*w.tenant))
                    .collect();
                st.fair
                    .pick(&admissible, |t| self.tenant_limits.weight_for(t))
            };
            sched_ns += decide_started.elapsed().as_nanos() as u64;
            // The winner is drawn from `st.waiting` under this same lock
            // hold, so when it is us the position lookup cannot miss; a
            // defensive None re-enters the wait instead of panicking.
            let granted = match winner {
                Some(t) if t == ticket => st.waiting.iter().position(|w| w.ticket == ticket),
                _ => None,
            };
            match granted {
                Some(i) => {
                    if i > 0 {
                        ccp_trace::instant_id(TraceCat::Admission, "bypass", ticket);
                    }
                    st.waiting.remove(i);
                    st.running.push(cuid);
                    st.running_tenants.push(Arc::clone(&tenant));
                    st.fair.record_grant(&tenant);
                    self.publish(&st);
                    // Admitting one query can unblock another admissible
                    // one (slots permitting) — let everybody re-check.
                    self.changed.notify_all();
                    ccp_trace::instant_id(TraceCat::Admission, "dequeue", ticket);
                    drop(wait_span);
                    let schedule_us = sched_ns / 1_000;
                    let queue_us =
                        (enqueued.elapsed().as_micros() as u64).saturating_sub(schedule_us);
                    return Ok(RunPermit {
                        queue: Arc::clone(self),
                        cuid,
                        tenant,
                        ticket,
                        queue_us,
                        schedule_us,
                    });
                }
                None => {
                    let remaining = match deadline {
                        None => None,
                        Some(d) => match d.checked_sub(enqueued.elapsed()) {
                            Some(left) if !left.is_zero() => Some(left),
                            _ => {
                                // Deadline passed while still deferred:
                                // leave the queue so the slot scan stops
                                // considering us, and tell the client to
                                // come back.
                                st.waiting.retain(|w| w.ticket != ticket);
                                self.publish(&st);
                                self.changed.notify_all();
                                self.server_metrics.record_admission_timeout();
                                ccp_trace::instant_id(TraceCat::Admission, "timeout", ticket);
                                return Err(AdmissionError::TimedOut);
                            }
                        },
                    };
                    st = match remaining {
                        Some(left) => {
                            self.changed
                                .wait_timeout(st, left)
                                .unwrap_or_else(PoisonError::into_inner)
                                .0
                        }
                        None => self
                            .changed
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner),
                    };
                }
            }
        }
    }

    fn release(&self, cuid: CacheUsageClass, tenant: &str) {
        let mut st = self.lock();
        if let Some(i) = st
            .running
            .iter()
            .zip(st.running_tenants.iter())
            .position(|(&c, t)| c == cuid && **t == *tenant)
        {
            st.running.remove(i);
            st.running_tenants.remove(i);
        }
        self.publish(&st);
        self.changed.notify_all();
    }

    /// Marks the queue as draining: waiters wake with
    /// [`AdmissionError::ShuttingDown`], new arrivals fail fast. Already
    /// running queries keep their permits.
    pub fn shutdown(&self) {
        let mut st = self.lock();
        st.shutdown = true;
        self.publish(&st);
        self.changed.notify_all();
    }

    /// Waits until nothing runs or waits any more, up to `timeout`.
    /// Returns `true` when the queue drained completely.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        while !st.running.is_empty() || !st.waiting.is_empty() {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .changed
                .wait_timeout(st, left)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        true
    }

    /// Current `(waiting, running)` occupancy.
    pub fn occupancy(&self) -> (usize, usize) {
        let st = self.lock();
        (st.waiting.len(), st.running.len())
    }

    /// Maximum number of waiting queries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum queries running concurrently (scheduler slots).
    pub fn slots(&self) -> usize {
        self.scheduler.slots
    }

    /// Arrival-time deferrals recorded so far.
    pub fn deferrals(&self) -> u64 {
        self.sched_metrics.deferrals()
    }

    /// Count of currently *waiting* queries per CUID class label
    /// (`polluting` / `sensitive` / `mixed`), for `/stats` next to the
    /// per-class limits.
    pub fn waiting_by_class(&self) -> Vec<(&'static str, usize)> {
        let st = self.lock();
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for w in &st.waiting {
            let label = class_label(w.cuid);
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        counts
    }

    /// Count of currently *running* queries per CUID class label
    /// (`polluting` / `sensitive` / `mixed`). This is the load signal the
    /// occupancy sampler's simulated probe feeds on when no CMT hardware
    /// is present.
    pub fn running_by_class(&self) -> Vec<(&'static str, usize)> {
        let st = self.lock();
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for &cuid in &st.running {
            let label = class_label(cuid);
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        counts
    }

    /// Count of currently *waiting* queries per tenant, for `/stats`.
    pub fn waiting_by_tenant(&self) -> Vec<(String, usize)> {
        let st = self.lock();
        let mut counts: Vec<(String, usize)> = Vec::new();
        for w in &st.waiting {
            match counts.iter_mut().find(|(t, _)| **t == *w.tenant) {
                Some((_, n)) => *n += 1,
                None => counts.push((w.tenant.to_string(), 1)),
            }
        }
        counts
    }

    /// Count of currently *running* queries per tenant, for `/stats`.
    pub fn running_by_tenant(&self) -> Vec<(String, usize)> {
        let st = self.lock();
        let mut counts: Vec<(String, usize)> = Vec::new();
        for t in &st.running_tenants {
            match counts.iter_mut().find(|(n, _)| **n == **t) {
                Some((_, n)) => *n += 1,
                None => counts.push((t.to_string(), 1)),
            }
        }
        counts
    }

    /// Cumulative grants per tenant since startup (the weighted-fairness
    /// accounting), for `/stats` and the fairness assertions in tests.
    pub fn grants_by_tenant(&self) -> Vec<(String, u64)> {
        self.lock().fair.all().to_vec()
    }
}

/// Permission for one query to run; releases its concurrency slot on drop
/// (also when the query panics).
pub struct RunPermit {
    queue: Arc<AdmissionQueue>,
    cuid: CacheUsageClass,
    tenant: Arc<str>,
    ticket: u64,
    queue_us: u64,
    schedule_us: u64,
}

impl std::fmt::Debug for RunPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunPermit")
            .field("cuid", &self.cuid)
            .field("tenant", &self.tenant)
            .field("ticket", &self.ticket)
            .finish()
    }
}

impl RunPermit {
    /// The CUID this permit was granted for.
    pub fn cuid(&self) -> CacheUsageClass {
        self.cuid
    }

    /// The tenant this permit was granted to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The admission ticket — unique per queue, used as the query id on
    /// trace spans so queue, scheduler and operator events correlate.
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Microseconds spent waiting in the admission queue (wall time from
    /// enqueue to grant, minus scheduler decision time).
    pub fn queue_us(&self) -> u64 {
        self.queue_us
    }

    /// Microseconds the scheduler spent on admissibility decisions for
    /// this waiter (accumulated over every wakeup re-check).
    pub fn schedule_us(&self) -> u64 {
        self.schedule_us
    }
}

impl Drop for RunPermit {
    fn drop(&mut self) {
        self.queue.release(self.cuid, &self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::HierarchyConfig;
    use ccp_engine::PartitionPolicy;
    use ccp_obs::Registry;
    use std::sync::mpsc;
    use std::thread;

    fn queue(slots: usize, capacity: usize) -> Arc<AdmissionQueue> {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        let scheduler = CacheAwareScheduler::new(policy, slots);
        let registry = Registry::new();
        Arc::new(AdmissionQueue::new(
            scheduler,
            capacity,
            SchedulerMetrics::new(),
            ServerMetrics::new(&registry),
        ))
    }

    #[test]
    fn grants_up_to_slots_then_defers() {
        let q = queue(2, 8);
        let a = q.acquire(CacheUsageClass::Polluting).unwrap();
        let b = q.acquire(CacheUsageClass::Polluting).unwrap();
        assert_eq!(q.occupancy(), (0, 2));
        // Third must wait until a permit drops.
        let q2 = Arc::clone(&q);
        let (tx, rx) = mpsc::channel();
        let t = thread::spawn(move || {
            let p = q2.acquire(CacheUsageClass::Polluting).unwrap();
            tx.send(()).unwrap();
            drop(p);
        });
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        drop(a);
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        t.join().unwrap();
        drop(b);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn never_two_sensitive_queries_at_once() {
        let q = queue(4, 8);
        let s1 = q.acquire(CacheUsageClass::Sensitive).unwrap();
        // A polluter bypasses the deferred second sensitive query.
        let q2 = Arc::clone(&q);
        let sensitive = thread::spawn(move || {
            let p = q2.acquire(CacheUsageClass::Sensitive).unwrap();
            drop(p);
        });
        // Give the sensitive waiter time to enqueue ahead of us.
        while q.occupancy().0 < 1 {
            thread::yield_now();
        }
        let p = q.acquire(CacheUsageClass::Polluting).unwrap();
        assert_eq!(
            q.occupancy(),
            (1, 2),
            "polluter bypassed the sensitive waiter"
        );
        drop(p);
        drop(s1);
        sensitive.join().unwrap();
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn overflow_is_rejected_not_blocked() {
        let q = queue(1, 1);
        let held = q.acquire(CacheUsageClass::Sensitive).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.acquire(CacheUsageClass::Sensitive).map(drop));
        while q.occupancy().0 < 1 {
            thread::yield_now();
        }
        // Queue (capacity 1) is now full: immediate rejection.
        let err = q.acquire(CacheUsageClass::Polluting).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull);
        drop(held);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_wakes_waiters_and_rejects_new_arrivals() {
        let q = queue(1, 4);
        let held = q.acquire(CacheUsageClass::Polluting).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.acquire(CacheUsageClass::Polluting));
        while q.occupancy().0 < 1 {
            thread::yield_now();
        }
        q.shutdown();
        assert_eq!(
            waiter.join().unwrap().unwrap_err(),
            AdmissionError::ShuttingDown
        );
        assert_eq!(
            q.acquire(CacheUsageClass::Polluting).unwrap_err(),
            AdmissionError::ShuttingDown
        );
        drop(held);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn deadline_expiry_dequeues_and_reports_timeout() {
        let q = queue(1, 4);
        let held = q.acquire(CacheUsageClass::Polluting).unwrap();
        let err = q
            .acquire_with_deadline(CacheUsageClass::Polluting, Some(Duration::from_millis(30)))
            .unwrap_err();
        assert_eq!(err, AdmissionError::TimedOut);
        // The expired waiter left the queue: nothing waits any more.
        assert_eq!(q.occupancy(), (0, 1));
        drop(held);
        // Zero deadline with a free slot still admits immediately (the
        // admissibility check runs before the deadline check).
        let p = q
            .acquire_with_deadline(CacheUsageClass::Polluting, Some(Duration::ZERO))
            .unwrap();
        assert!(p.ticket() > 0);
        drop(p);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn class_limit_rejects_before_global_capacity() {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        let registry = Registry::new();
        let metrics = ServerMetrics::new(&registry);
        let q = Arc::new(
            AdmissionQueue::new(
                CacheAwareScheduler::new(policy, 1),
                8,
                SchedulerMetrics::new(),
                metrics.clone(),
            )
            .with_class_limits(ClassQueueLimits {
                polluting: Some(1),
                ..ClassQueueLimits::default()
            }),
        );
        let held = q.acquire(CacheUsageClass::Polluting).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.acquire(CacheUsageClass::Polluting).map(drop));
        while q.occupancy().0 < 1 {
            thread::yield_now();
        }
        // Global queue has 7 free slots, but the polluter cap (1) is hit.
        let err = q.acquire(CacheUsageClass::Polluting).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull);
        assert_eq!(metrics.class_rejections("polluting"), 1);
        // A sensitive query is not subject to the polluter cap: with the
        // slot held it waits, so probe with a zero deadline instead.
        let err = q
            .acquire_with_deadline(CacheUsageClass::Sensitive, Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, AdmissionError::TimedOut, "capped out, not rejected");
        drop(held);
        waiter.join().unwrap().unwrap();
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn class_limit_zero_rejects_every_arrival_of_that_class() {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        let registry = Registry::new();
        let q = Arc::new(
            AdmissionQueue::new(
                CacheAwareScheduler::new(policy, 2),
                8,
                SchedulerMetrics::new(),
                ServerMetrics::new(&registry),
            )
            .with_class_limits(ClassQueueLimits {
                sensitive: Some(0),
                ..ClassQueueLimits::default()
            }),
        );
        assert_eq!(
            q.acquire(CacheUsageClass::Sensitive).unwrap_err(),
            AdmissionError::QueueFull
        );
        // Other classes are untouched.
        let p = q.acquire(CacheUsageClass::Polluting).unwrap();
        drop(p);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn tenant_quota_caps_in_flight_not_just_waiting() {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        let registry = Registry::new();
        let metrics = ServerMetrics::new(&registry);
        let q = Arc::new(
            AdmissionQueue::new(
                CacheAwareScheduler::new(policy, 4),
                8,
                SchedulerMetrics::new(),
                metrics.clone(),
            )
            .with_tenant_limits(TenantLimits::new().with_quota("acme", 1)),
        );
        // One running query of the tenant consumes the whole quota.
        let held = q
            .acquire_tenant(CacheUsageClass::Polluting, "acme", None)
            .unwrap();
        assert_eq!(held.tenant(), "acme");
        let err = q
            .acquire_tenant(CacheUsageClass::Polluting, "acme", None)
            .unwrap_err();
        assert_eq!(err, AdmissionError::QuotaExceeded);
        assert_eq!(metrics.tenant_rejections("acme"), 1);
        // Other tenants (and the default tenant) are untouched.
        let other = q
            .acquire_tenant(CacheUsageClass::Polluting, "globex", None)
            .unwrap();
        let dflt = q.acquire(CacheUsageClass::Polluting).unwrap();
        drop(dflt);
        drop(other);
        drop(held);
        // Quota freed with the permit.
        let again = q
            .acquire_tenant(CacheUsageClass::Polluting, "acme", None)
            .unwrap();
        drop(again);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn tenant_quota_zero_rejects_every_arrival() {
        let q = queue(2, 8);
        // Rebuild with limits (queue() has none): simplest to make one.
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        let registry = Registry::new();
        let limited = Arc::new(
            AdmissionQueue::new(
                CacheAwareScheduler::new(policy, 2),
                8,
                SchedulerMetrics::new(),
                ServerMetrics::new(&registry),
            )
            .with_tenant_limits(TenantLimits::new().with_quota("banned", 0)),
        );
        assert_eq!(
            limited
                .acquire_tenant(CacheUsageClass::Mixed { hot_bytes: 1_000 }, "banned", None)
                .unwrap_err(),
            AdmissionError::QuotaExceeded
        );
        drop(q);
    }

    #[test]
    fn grants_accounting_tracks_tenants() {
        let q = queue(4, 8);
        let a = q
            .acquire_tenant(CacheUsageClass::Polluting, "alpha", None)
            .unwrap();
        let b = q
            .acquire_tenant(CacheUsageClass::Mixed { hot_bytes: 1_000 }, "beta", None)
            .unwrap();
        let a2 = q
            .acquire_tenant(CacheUsageClass::Mixed { hot_bytes: 1_000 }, "alpha", None)
            .unwrap();
        let mut grants = q.grants_by_tenant();
        grants.sort();
        assert_eq!(
            grants,
            vec![("alpha".to_string(), 2), ("beta".to_string(), 1)]
        );
        let mut running = q.running_by_tenant();
        running.sort();
        assert_eq!(
            running,
            vec![("alpha".to_string(), 2), ("beta".to_string(), 1)]
        );
        drop((a, b, a2));
        assert!(q.drain(Duration::from_secs(1)));
        assert!(q.running_by_tenant().is_empty());
    }

    #[test]
    fn fair_share_single_tenant_is_fifo() {
        let fs = FairShare::new();
        let picked = fs.pick(&[(3, "only"), (5, "only"), (9, "only")], |_| 1);
        assert_eq!(picked, Some(3), "head of line wins within a tenant");
        assert_eq!(fs.pick(&[], |_| 1), None);
    }

    #[test]
    fn fair_share_weights_bias_grant_ratio() {
        // Tenants "heavy" (weight 3) and "light" (weight 1) always have a
        // waiter ready; over 40 grants the split must be 30/10 exactly —
        // the ±1 property tests generalize this to arbitrary streams.
        let mut fs = FairShare::new();
        let weight = |t: &str| if t == "heavy" { 3 } else { 1 };
        let mut heavy = 0u64;
        let mut light = 0u64;
        for _ in 0..40 {
            let winner = fs.pick(&[(1, "heavy"), (2, "light")], weight).unwrap();
            if winner == 1 {
                heavy += 1;
                fs.record_grant("heavy");
            } else {
                light += 1;
                fs.record_grant("light");
            }
        }
        assert_eq!((heavy, light), (30, 10));
    }

    #[test]
    fn permit_drop_releases_even_on_panic() {
        let q = queue(1, 4);
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || {
            let _p = q2.acquire(CacheUsageClass::Polluting).unwrap();
            panic!("query blew up");
        });
        assert!(t.join().is_err());
        assert_eq!(q.occupancy(), (0, 0), "slot came back despite the panic");
    }
}
