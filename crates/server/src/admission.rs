//! Bounded, scheduler-gated query admission.
//!
//! Every `/query` request must take a [`RunPermit`] before it touches the
//! executor. Permits come from an [`AdmissionQueue`] that enforces two
//! independent limits:
//!
//! 1. **Concurrency shape** — the engine's
//!    [`CacheAwareScheduler`](ccp_engine::CacheAwareScheduler) decides who
//!    may co-run: at most `slots` queries at once, never two
//!    cache-sensitive ones together (they would fight over the LLC share
//!    partitioning reserves for them). Waiters are served FIFO *with
//!    bypass*: when the head of the queue is a deferred sensitive query, a
//!    polluter behind it may start — the same packing rule
//!    [`plan_waves`](ccp_engine::CacheAwareScheduler::plan_waves) applies
//!    to offline queues.
//! 2. **Queue depth** — at most `capacity` queries may *wait*. Beyond
//!    that, [`acquire`](AdmissionQueue::acquire) fails immediately with
//!    [`AdmissionError::QueueFull`], which the HTTP layer maps to `429`.
//!    Backpressure is explicit and observable instead of an unbounded
//!    thread pile-up.
//!
//! Waiters may additionally carry a **deadline**
//! ([`acquire_with_deadline`](AdmissionQueue::acquire_with_deadline)):
//! a query that waits past it is dequeued and fails with
//! [`AdmissionError::TimedOut`] (HTTP `503` + `Retry-After`), so a
//! saturated server sheds load instead of accumulating doomed work.
//!
//! Every admission is traced ([`ccp_trace`]): an `admission_wait` span
//! covers enqueue→grant, with `enqueue` / `dequeue` / `bypass` /
//! `timeout` instants, all tagged with the admission ticket — the same
//! id the query's operator spans carry downstream.

use crate::metrics::ServerMetrics;
use ccp_engine::{class_label, Admission, CacheAwareScheduler, CacheUsageClass, SchedulerMetrics};
use ccp_trace::TraceCat;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Failpoint name (see `ccp-fault`): when armed, admission rejects the
/// arrival with [`AdmissionError::QueueFull`] before touching the queue.
pub const FAULT_ADMISSION: &str = "server.admission";

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded waiting queue is full — retry later (HTTP 429).
    QueueFull,
    /// The server is draining — no new work (HTTP 503).
    ShuttingDown,
    /// The query waited past its deadline and was dequeued — retry
    /// later (HTTP 503 with `Retry-After`).
    TimedOut,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull => write!(f, "admission queue full"),
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
            AdmissionError::TimedOut => write!(f, "timed out waiting for an admission slot"),
        }
    }
}

struct State {
    /// CUIDs of queries currently holding a permit.
    running: Vec<CacheUsageClass>,
    /// Waiting queries in arrival order (ticket, CUID).
    waiting: Vec<(u64, CacheUsageClass)>,
    next_ticket: u64,
    shutdown: bool,
}

/// Optional per-class caps on *waiting* queries, layered under the
/// global `capacity`: a polluter burst then fills at most its own share
/// of the queue instead of starving sensitive arrivals (the paper's
/// admission experiments mix exactly such bursts). `None` means the
/// class is bounded only by the global capacity. A limit of `0` rejects
/// every arrival of that class that would have to exist in the queue —
/// mirroring how a global capacity of `0` behaves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassQueueLimits {
    /// Cap for `CacheUsageClass::Polluting` waiters.
    pub polluting: Option<usize>,
    /// Cap for `CacheUsageClass::Sensitive` waiters.
    pub sensitive: Option<usize>,
    /// Cap for `CacheUsageClass::Mixed` waiters.
    pub mixed: Option<usize>,
}

impl ClassQueueLimits {
    /// The cap that applies to `cuid`, if any.
    pub fn limit_for(&self, cuid: CacheUsageClass) -> Option<usize> {
        match class_label(cuid) {
            "polluting" => self.polluting,
            "sensitive" => self.sensitive,
            _ => self.mixed,
        }
    }
}

/// Bounded admission queue in front of the dual-pool executor.
pub struct AdmissionQueue {
    scheduler: CacheAwareScheduler,
    sched_metrics: SchedulerMetrics,
    server_metrics: ServerMetrics,
    capacity: usize,
    class_limits: ClassQueueLimits,
    state: Mutex<State>,
    changed: Condvar,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` waiting queries.
    ///
    /// Admission decisions are recorded in `sched_metrics` (register it
    /// into the scrape registry to see them); occupancy and rejections go
    /// to `server_metrics`.
    pub fn new(
        scheduler: CacheAwareScheduler,
        capacity: usize,
        sched_metrics: SchedulerMetrics,
        server_metrics: ServerMetrics,
    ) -> Self {
        AdmissionQueue {
            scheduler,
            sched_metrics,
            server_metrics,
            capacity,
            class_limits: ClassQueueLimits::default(),
            state: Mutex::new(State {
                running: Vec::new(),
                waiting: Vec::new(),
                next_ticket: 0,
                shutdown: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Layers per-class waiting caps under the global capacity. Call
    /// before the queue is shared (builder style).
    pub fn with_class_limits(mut self, limits: ClassQueueLimits) -> Self {
        self.class_limits = limits;
        self
    }

    /// The per-class waiting caps in effect.
    pub fn class_limits(&self) -> ClassQueueLimits {
        self.class_limits
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn publish(&self, st: &State) {
        self.server_metrics
            .set_admission_occupancy(st.waiting.len(), st.running.len());
    }

    /// Blocks until `cuid` may run, then returns a permit; the permit
    /// releases its slot on drop.
    ///
    /// Fails fast (without blocking) when the waiting queue is at
    /// capacity or the queue has been shut down.
    pub fn acquire(self: &Arc<Self>, cuid: CacheUsageClass) -> Result<RunPermit, AdmissionError> {
        self.acquire_with_deadline(cuid, None)
    }

    /// Like [`acquire`](Self::acquire), but gives up with
    /// [`AdmissionError::TimedOut`] (dequeuing the waiter) when no permit
    /// was granted within `deadline`. `None` waits indefinitely.
    pub fn acquire_with_deadline(
        self: &Arc<Self>,
        cuid: CacheUsageClass,
        deadline: Option<Duration>,
    ) -> Result<RunPermit, AdmissionError> {
        if ccp_fault::should_fail(FAULT_ADMISSION) {
            self.server_metrics.record_admission_rejection();
            return Err(AdmissionError::QueueFull);
        }
        let enqueued = Instant::now();
        let mut st = self.lock();
        if st.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        if st.waiting.len() >= self.capacity {
            self.server_metrics.record_admission_rejection();
            return Err(AdmissionError::QueueFull);
        }
        // The class cap counts *other* waiters of the same class — this
        // arrival has not enqueued yet — so a limit of N admits at most
        // N simultaneous waiters of the class, independent of how much
        // global capacity a burst of that class would otherwise grab.
        if let Some(limit) = self.class_limits.limit_for(cuid) {
            let label = class_label(cuid);
            let same_class = st
                .waiting
                .iter()
                .filter(|&&(_, c)| class_label(c) == label)
                .count();
            if same_class >= limit {
                self.server_metrics.record_class_rejection(label);
                return Err(AdmissionError::QueueFull);
            }
        }
        // Record the arrival-time decision (admitted vs. deferred) in the
        // scheduler's instruments; re-checks below are not re-counted.
        self.scheduler
            .admit_observed(&st.running, cuid, &self.sched_metrics);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push((ticket, cuid));
        self.publish(&st);
        let wait_span = ccp_trace::span_id(TraceCat::Admission, "admission_wait", ticket);
        ccp_trace::instant_id(TraceCat::Admission, "enqueue", ticket);
        // Decision time (scheduler admissibility scans on behalf of this
        // waiter) is accounted separately from pure queueing time.
        let mut sched_ns: u64 = 0;
        loop {
            if st.shutdown {
                st.waiting.retain(|&(t, _)| t != ticket);
                self.publish(&st);
                self.changed.notify_all();
                return Err(AdmissionError::ShuttingDown);
            }
            // FIFO with bypass: the *first* admissible waiter starts. A
            // polluter may overtake a deferred sensitive query (it fills
            // the wave), but never another admissible one.
            let decide_started = Instant::now();
            let first_admissible = st
                .waiting
                .iter()
                .position(|&(_, c)| self.scheduler.admit(&st.running, c) == Admission::RunNow);
            sched_ns += decide_started.elapsed().as_nanos() as u64;
            match first_admissible {
                Some(i) if st.waiting[i].0 == ticket => {
                    if i > 0 {
                        ccp_trace::instant_id(TraceCat::Admission, "bypass", ticket);
                    }
                    st.waiting.remove(i);
                    st.running.push(cuid);
                    self.publish(&st);
                    // Admitting one query can unblock another admissible
                    // one (slots permitting) — let everybody re-check.
                    self.changed.notify_all();
                    ccp_trace::instant_id(TraceCat::Admission, "dequeue", ticket);
                    drop(wait_span);
                    let schedule_us = sched_ns / 1_000;
                    let queue_us =
                        (enqueued.elapsed().as_micros() as u64).saturating_sub(schedule_us);
                    return Ok(RunPermit {
                        queue: Arc::clone(self),
                        cuid,
                        ticket,
                        queue_us,
                        schedule_us,
                    });
                }
                _ => {
                    let remaining = match deadline {
                        None => None,
                        Some(d) => match d.checked_sub(enqueued.elapsed()) {
                            Some(left) if !left.is_zero() => Some(left),
                            _ => {
                                // Deadline passed while still deferred:
                                // leave the queue so the slot scan stops
                                // considering us, and tell the client to
                                // come back.
                                st.waiting.retain(|&(t, _)| t != ticket);
                                self.publish(&st);
                                self.changed.notify_all();
                                self.server_metrics.record_admission_timeout();
                                ccp_trace::instant_id(TraceCat::Admission, "timeout", ticket);
                                return Err(AdmissionError::TimedOut);
                            }
                        },
                    };
                    st = match remaining {
                        Some(left) => {
                            self.changed
                                .wait_timeout(st, left)
                                .unwrap_or_else(PoisonError::into_inner)
                                .0
                        }
                        None => self
                            .changed
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner),
                    };
                }
            }
        }
    }

    fn release(&self, cuid: CacheUsageClass) {
        let mut st = self.lock();
        if let Some(i) = st.running.iter().position(|&c| c == cuid) {
            st.running.remove(i);
        }
        self.publish(&st);
        self.changed.notify_all();
    }

    /// Marks the queue as draining: waiters wake with
    /// [`AdmissionError::ShuttingDown`], new arrivals fail fast. Already
    /// running queries keep their permits.
    pub fn shutdown(&self) {
        let mut st = self.lock();
        st.shutdown = true;
        self.publish(&st);
        self.changed.notify_all();
    }

    /// Waits until nothing runs or waits any more, up to `timeout`.
    /// Returns `true` when the queue drained completely.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        while !st.running.is_empty() || !st.waiting.is_empty() {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .changed
                .wait_timeout(st, left)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        true
    }

    /// Current `(waiting, running)` occupancy.
    pub fn occupancy(&self) -> (usize, usize) {
        let st = self.lock();
        (st.waiting.len(), st.running.len())
    }

    /// Maximum number of waiting queries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum queries running concurrently (scheduler slots).
    pub fn slots(&self) -> usize {
        self.scheduler.slots
    }

    /// Arrival-time deferrals recorded so far.
    pub fn deferrals(&self) -> u64 {
        self.sched_metrics.deferrals()
    }

    /// Count of currently *waiting* queries per CUID class label
    /// (`polluting` / `sensitive` / `mixed`), for `/stats` next to the
    /// per-class limits.
    pub fn waiting_by_class(&self) -> Vec<(&'static str, usize)> {
        let st = self.lock();
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for &(_, cuid) in &st.waiting {
            let label = class_label(cuid);
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        counts
    }

    /// Count of currently *running* queries per CUID class label
    /// (`polluting` / `sensitive` / `mixed`). This is the load signal the
    /// occupancy sampler's simulated probe feeds on when no CMT hardware
    /// is present.
    pub fn running_by_class(&self) -> Vec<(&'static str, usize)> {
        let st = self.lock();
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for &cuid in &st.running {
            let label = class_label(cuid);
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        counts
    }
}

/// Permission for one query to run; releases its concurrency slot on drop
/// (also when the query panics).
pub struct RunPermit {
    queue: Arc<AdmissionQueue>,
    cuid: CacheUsageClass,
    ticket: u64,
    queue_us: u64,
    schedule_us: u64,
}

impl std::fmt::Debug for RunPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunPermit")
            .field("cuid", &self.cuid)
            .field("ticket", &self.ticket)
            .finish()
    }
}

impl RunPermit {
    /// The CUID this permit was granted for.
    pub fn cuid(&self) -> CacheUsageClass {
        self.cuid
    }

    /// The admission ticket — unique per queue, used as the query id on
    /// trace spans so queue, scheduler and operator events correlate.
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Microseconds spent waiting in the admission queue (wall time from
    /// enqueue to grant, minus scheduler decision time).
    pub fn queue_us(&self) -> u64 {
        self.queue_us
    }

    /// Microseconds the scheduler spent on admissibility decisions for
    /// this waiter (accumulated over every wakeup re-check).
    pub fn schedule_us(&self) -> u64 {
        self.schedule_us
    }
}

impl Drop for RunPermit {
    fn drop(&mut self) {
        self.queue.release(self.cuid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::HierarchyConfig;
    use ccp_engine::PartitionPolicy;
    use ccp_obs::Registry;
    use std::sync::mpsc;
    use std::thread;

    fn queue(slots: usize, capacity: usize) -> Arc<AdmissionQueue> {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        let scheduler = CacheAwareScheduler::new(policy, slots);
        let registry = Registry::new();
        Arc::new(AdmissionQueue::new(
            scheduler,
            capacity,
            SchedulerMetrics::new(),
            ServerMetrics::new(&registry),
        ))
    }

    #[test]
    fn grants_up_to_slots_then_defers() {
        let q = queue(2, 8);
        let a = q.acquire(CacheUsageClass::Polluting).unwrap();
        let b = q.acquire(CacheUsageClass::Polluting).unwrap();
        assert_eq!(q.occupancy(), (0, 2));
        // Third must wait until a permit drops.
        let q2 = Arc::clone(&q);
        let (tx, rx) = mpsc::channel();
        let t = thread::spawn(move || {
            let p = q2.acquire(CacheUsageClass::Polluting).unwrap();
            tx.send(()).unwrap();
            drop(p);
        });
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        drop(a);
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        t.join().unwrap();
        drop(b);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn never_two_sensitive_queries_at_once() {
        let q = queue(4, 8);
        let s1 = q.acquire(CacheUsageClass::Sensitive).unwrap();
        // A polluter bypasses the deferred second sensitive query.
        let q2 = Arc::clone(&q);
        let sensitive = thread::spawn(move || {
            let p = q2.acquire(CacheUsageClass::Sensitive).unwrap();
            drop(p);
        });
        // Give the sensitive waiter time to enqueue ahead of us.
        while q.occupancy().0 < 1 {
            thread::yield_now();
        }
        let p = q.acquire(CacheUsageClass::Polluting).unwrap();
        assert_eq!(
            q.occupancy(),
            (1, 2),
            "polluter bypassed the sensitive waiter"
        );
        drop(p);
        drop(s1);
        sensitive.join().unwrap();
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn overflow_is_rejected_not_blocked() {
        let q = queue(1, 1);
        let held = q.acquire(CacheUsageClass::Sensitive).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.acquire(CacheUsageClass::Sensitive).map(drop));
        while q.occupancy().0 < 1 {
            thread::yield_now();
        }
        // Queue (capacity 1) is now full: immediate rejection.
        let err = q.acquire(CacheUsageClass::Polluting).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull);
        drop(held);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_wakes_waiters_and_rejects_new_arrivals() {
        let q = queue(1, 4);
        let held = q.acquire(CacheUsageClass::Polluting).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.acquire(CacheUsageClass::Polluting));
        while q.occupancy().0 < 1 {
            thread::yield_now();
        }
        q.shutdown();
        assert_eq!(
            waiter.join().unwrap().unwrap_err(),
            AdmissionError::ShuttingDown
        );
        assert_eq!(
            q.acquire(CacheUsageClass::Polluting).unwrap_err(),
            AdmissionError::ShuttingDown
        );
        drop(held);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn deadline_expiry_dequeues_and_reports_timeout() {
        let q = queue(1, 4);
        let held = q.acquire(CacheUsageClass::Polluting).unwrap();
        let err = q
            .acquire_with_deadline(CacheUsageClass::Polluting, Some(Duration::from_millis(30)))
            .unwrap_err();
        assert_eq!(err, AdmissionError::TimedOut);
        // The expired waiter left the queue: nothing waits any more.
        assert_eq!(q.occupancy(), (0, 1));
        drop(held);
        // Zero deadline with a free slot still admits immediately (the
        // admissibility check runs before the deadline check).
        let p = q
            .acquire_with_deadline(CacheUsageClass::Polluting, Some(Duration::ZERO))
            .unwrap();
        assert!(p.ticket() > 0);
        drop(p);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn class_limit_rejects_before_global_capacity() {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        let registry = Registry::new();
        let metrics = ServerMetrics::new(&registry);
        let q = Arc::new(
            AdmissionQueue::new(
                CacheAwareScheduler::new(policy, 1),
                8,
                SchedulerMetrics::new(),
                metrics.clone(),
            )
            .with_class_limits(ClassQueueLimits {
                polluting: Some(1),
                ..ClassQueueLimits::default()
            }),
        );
        let held = q.acquire(CacheUsageClass::Polluting).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.acquire(CacheUsageClass::Polluting).map(drop));
        while q.occupancy().0 < 1 {
            thread::yield_now();
        }
        // Global queue has 7 free slots, but the polluter cap (1) is hit.
        let err = q.acquire(CacheUsageClass::Polluting).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull);
        assert_eq!(metrics.class_rejections("polluting"), 1);
        // A sensitive query is not subject to the polluter cap: with the
        // slot held it waits, so probe with a zero deadline instead.
        let err = q
            .acquire_with_deadline(CacheUsageClass::Sensitive, Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, AdmissionError::TimedOut, "capped out, not rejected");
        drop(held);
        waiter.join().unwrap().unwrap();
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn class_limit_zero_rejects_every_arrival_of_that_class() {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        let registry = Registry::new();
        let q = Arc::new(
            AdmissionQueue::new(
                CacheAwareScheduler::new(policy, 2),
                8,
                SchedulerMetrics::new(),
                ServerMetrics::new(&registry),
            )
            .with_class_limits(ClassQueueLimits {
                sensitive: Some(0),
                ..ClassQueueLimits::default()
            }),
        );
        assert_eq!(
            q.acquire(CacheUsageClass::Sensitive).unwrap_err(),
            AdmissionError::QueueFull
        );
        // Other classes are untouched.
        let p = q.acquire(CacheUsageClass::Polluting).unwrap();
        drop(p);
        assert!(q.drain(Duration::from_secs(1)));
    }

    #[test]
    fn permit_drop_releases_even_on_panic() {
        let q = queue(1, 4);
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || {
            let _p = q2.acquire(CacheUsageClass::Polluting).unwrap();
            panic!("query blew up");
        });
        assert!(t.join().is_err());
        assert_eq!(q.occupancy(), (0, 0), "slot came back despite the panic");
    }
}
