//! Workload parsing, CUID classification and execution for `/query`.
//!
//! A query arrives as one JSON object per body line, names a workload —
//! the paper's microbenchmarks (`q1`/`q2`/`q3`), a TPC-H query
//! (`tpch-1`…`tpch-22`), an OLTP point select (`oltp`) — and is
//! classified to a cache usage identifier *before* execution, exactly as
//! the engine tags jobs: the CUID drives both the admission decision (may
//! it co-run?) and the way mask its jobs bind.
//!
//! The engine owns a resident, seeded data set built once at startup, so
//! every request measures execution, not data generation.

use crate::json::Json;
use ccp_engine::alloc::{CacheAllocator, NoopAllocator, ResctrlAllocator};
use ccp_engine::ops::{aggregate, join, scan};
use ccp_engine::{class_label, CacheUsageClass, DualPoolExecutor, Job, PartitionPolicy};
use ccp_resctrl::{detect, CatSupport};
use ccp_reuse::{Artifact, Begin, ResultSet, ReuseCache, ReuseHandle, ReuseStatus};
use ccp_storage::{gen, Aggregate, DictColumn, InvertedIndex, Table};
use ccp_tpch::queries::PhaseSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A parsed `/query` request line.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Paper Q1: selective column scan (`WHERE A < threshold`).
    Q1 {
        /// Scan predicate threshold (domain `1..=50_000`).
        threshold: i64,
    },
    /// Paper Q2: grouped aggregation over the region column.
    Q2 {
        /// Aggregate function.
        agg: Aggregate,
    },
    /// Paper Q3: bit-vector foreign-key join.
    Q3,
    /// TPC-H query `id` — native for 1 and 6, profile-driven phase
    /// playback for the rest.
    Tpch {
        /// Query number, 1–22.
        id: u8,
    },
    /// OLTP point select on the dedicated full-cache pool.
    Oltp {
        /// Document key to look up.
        key: i64,
    },
    /// Debug workload: hold an executor slot for `ms` milliseconds.
    /// Only parsed when the server enables it (backpressure tests).
    Sleep {
        /// Sleep duration in milliseconds (capped at 10 s).
        ms: u64,
    },
}

impl WorkloadSpec {
    /// Stable name used for metrics labels and throughput normalization.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Q1 { .. } => "q1".into(),
            WorkloadSpec::Q2 { .. } => "q2".into(),
            WorkloadSpec::Q3 => "q3".into(),
            WorkloadSpec::Tpch { id } => format!("tpch-{id}"),
            WorkloadSpec::Oltp { .. } => "oltp".into(),
            WorkloadSpec::Sleep { .. } => "sleep".into(),
        }
    }
}

/// Parses one request line (`{"workload": "q1", ...}`) into a spec.
///
/// `allow_sleep` gates the debug sleep workload; in production it parses
/// as an error like any other unknown workload.
pub fn parse_query(v: &Json, allow_sleep: bool) -> Result<WorkloadSpec, String> {
    let workload = v
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"workload\"".to_string())?;
    match workload {
        "q1" => {
            let threshold = match v.get("threshold") {
                None => 25_000,
                Some(t) => t
                    .as_i64()
                    .ok_or_else(|| "\"threshold\" must be an integer".to_string())?,
            };
            Ok(WorkloadSpec::Q1 { threshold })
        }
        "q2" => {
            let agg = match v.get("agg").map(|a| (a, a.as_str())) {
                None => Aggregate::Max,
                Some((_, Some("max"))) => Aggregate::Max,
                Some((_, Some("min"))) => Aggregate::Min,
                Some((_, Some("sum"))) => Aggregate::Sum,
                Some((_, Some("count"))) => Aggregate::Count,
                Some(_) => return Err("\"agg\" must be one of max|min|sum|count".to_string()),
            };
            Ok(WorkloadSpec::Q2 { agg })
        }
        "q3" => Ok(WorkloadSpec::Q3),
        "oltp" => {
            let key = match v.get("key") {
                None => 7,
                Some(k) => k
                    .as_i64()
                    .ok_or_else(|| "\"key\" must be an integer".to_string())?,
            };
            Ok(WorkloadSpec::Oltp { key })
        }
        "sleep" if allow_sleep => {
            let ms = match v.get("ms") {
                None => 100,
                Some(m) => m
                    .as_u64()
                    .ok_or_else(|| "\"ms\" must be a non-negative integer".to_string())?,
            };
            Ok(WorkloadSpec::Sleep { ms: ms.min(10_000) })
        }
        other if other.starts_with("tpch-") => {
            let id: u8 = other["tpch-".len()..]
                .parse()
                .map_err(|_| format!("bad TPC-H query id in {other:?}"))?;
            if !(1..=22).contains(&id) {
                return Err(format!("TPC-H query id must be 1..=22, got {id}"));
            }
            Ok(WorkloadSpec::Tpch { id })
        }
        other => Err(format!(
            "unknown workload {other:?} (expected q1, q2, q3, tpch-N, oltp)"
        )),
    }
}

/// The result of one executed query, rendered as one NDJSON line.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Workload name (`q1`, `tpch-5`, …).
    pub workload: String,
    /// CUID class label (`polluting`, `sensitive`, `mixed`).
    pub class: &'static str,
    /// Way mask the OLAP jobs bind (full mask for OLTP).
    pub mask_bits: u32,
    /// Input rows processed.
    pub rows: u64,
    /// Workload-specific scalar result (matches, groups, revenue, …).
    pub result: i64,
    /// Wall-clock execution time in seconds.
    pub latency_secs: f64,
    /// Rows per second this execution achieved.
    pub rows_per_sec: f64,
    /// Throughput normalized to the best run of the same workload seen by
    /// this server (1.0 = fastest so far; lower = slowed by co-runners).
    pub normalized_throughput: f64,
    /// How the reuse cache served this query (`hit`/`miss`/`bypass`).
    pub reuse: &'static str,
}

/// Per-query latency breakdown in microseconds, assembled by the HTTP
/// layer from admission timing ([`RunPermit`](crate::RunPermit)) and the
/// engine's bind-time attribution ([`QueryCtx`](ccp_engine::QueryCtx)).
///
/// The parts are carved out of disjoint wall-clock intervals, so
/// `queue_us + schedule_us + bind_us + exec_us` never exceeds the
/// request's total latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Time spent waiting in the admission queue (net of decision time).
    pub queue_us: u64,
    /// Scheduler admissibility-decision time for this query.
    pub schedule_us: u64,
    /// Way-mask (re)bind time accumulated across the query's worker jobs.
    pub bind_us: u64,
    /// Execution time net of bind time.
    pub exec_us: u64,
}

impl Breakdown {
    /// Renders the breakdown as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queue_us", Json::num(self.queue_us as f64)),
            ("schedule_us", Json::num(self.schedule_us as f64)),
            ("bind_us", Json::num(self.bind_us as f64)),
            ("exec_us", Json::num(self.exec_us as f64)),
        ])
    }
}

impl QueryOutcome {
    /// Renders the outcome with the latency breakdown attached as a
    /// `"breakdown"` sub-object.
    pub fn to_json_with(&self, breakdown: &Breakdown) -> Json {
        let mut json = self.to_json();
        if let Json::Obj(ref mut fields) = json {
            fields.push(("breakdown".to_string(), breakdown.to_json()));
        }
        json
    }

    /// Renders the outcome as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::str(&self.workload)),
            ("class", Json::str(self.class)),
            ("mask", Json::str(format!("{:#x}", self.mask_bits))),
            ("rows", Json::num(self.rows as f64)),
            ("result", Json::num(self.result as f64)),
            ("latency_secs", Json::num(self.latency_secs)),
            ("rows_per_sec", Json::num(self.rows_per_sec)),
            (
                "normalized_throughput",
                Json::num(self.normalized_throughput),
            ),
            ("reuse", Json::str(self.reuse)),
        ])
    }
}

/// The resident data sets queries run against (built once at startup).
struct Datasets {
    /// Q1/Q2 value column: uniform `1..=50_000`.
    amounts: Arc<DictColumn<i64>>,
    /// Q2 grouping column: 64 regions.
    regions: Arc<DictColumn<i64>>,
    /// Q3 build side: distinct keys `1..=keys`.
    pk: Arc<DictColumn<i64>>,
    /// Q3 probe side.
    fk: Arc<DictColumn<i64>>,
    /// TPC-H lineitem sample for native Q1/Q6.
    lineitem: Arc<Table>,
    /// OLTP key column (BELNR) with its point-lookup index.
    oltp_keys: Arc<DictColumn<i64>>,
    oltp_index: Arc<InvertedIndex>,
    oltp_amounts: Arc<DictColumn<i64>>,
}

impl Datasets {
    fn build(rows: usize) -> Self {
        let rows = rows.max(64);
        let keys = (rows / 4).max(16);
        let amounts = Arc::new(DictColumn::build(&gen::uniform_ints(rows, 50_000, 11)));
        let regions = Arc::new(DictColumn::build(&gen::uniform_ints(rows, 64, 12)));
        let pk = Arc::new(DictColumn::build(&gen::primary_keys(keys, 21)));
        let fk = Arc::new(DictColumn::build(&gen::foreign_keys(rows, keys as i64, 22)));
        let (lineitem, _orders) = ccp_tpch::sample_database(rows, keys, 7);
        // OLTP side: an ACDOCA-like document table — repeated document
        // keys, an amount per row.
        let doc_count = (rows / 8).max(8) as i64;
        let oltp_keys = Arc::new(DictColumn::build(&gen::uniform_ints(rows, doc_count, 31)));
        let oltp_index = Arc::new(InvertedIndex::build(
            oltp_keys.codes().iter(),
            oltp_keys.dict().len(),
        ));
        let oltp_amounts = Arc::new(DictColumn::build(&gen::uniform_ints(rows, 1_000_000, 32)));
        Datasets {
            amounts,
            regions,
            pk,
            fk,
            lineitem,
            oltp_keys,
            oltp_index,
            oltp_amounts,
        }
    }

    /// Bit-vector size of the Q3 build side — the join's hot set.
    fn q3_hot_bytes(&self) -> u64 {
        let max_key = self
            .pk
            .dict()
            .iter()
            .next_back()
            .copied()
            .unwrap_or(0)
            .max(0) as u64;
        (max_key + 1).div_ceil(8)
    }
}

/// The serving engine: dual-pool executor + partition policy + resident
/// data + per-workload best-throughput tracking.
pub struct QueryEngine {
    pools: DualPoolExecutor,
    policy: PartitionPolicy,
    cat_live: bool,
    allocator: Arc<dyn CacheAllocator>,
    data: Datasets,
    best_rows_per_sec: Mutex<HashMap<String, f64>>,
    /// Artifact reuse cache; `None` disables reuse entirely (`--no-reuse`).
    reuse: Option<ReuseCache>,
    /// The fake resctrl tree backing the engine, kept so other components
    /// (the group reconciler) can open their own controller over the
    /// *same* tree; `None` outside `--fake-resctrl`.
    fake_fs: Option<ccp_resctrl::fs::FakeFs>,
}

/// Default reuse-cache budget when the server does not override it.
pub const DEFAULT_REUSE_BUDGET_BYTES: u64 = 64 << 20;

impl QueryEngine {
    /// Builds the engine, partitioning through real CAT when the host
    /// supports it and falling back to no-op allocation otherwise.
    pub fn new(olap_workers: usize, oltp_workers: usize, dataset_rows: usize) -> Self {
        let support = detect();
        let (allocator, cat_live): (Arc<dyn CacheAllocator>, bool) = match &support {
            CatSupport::Available { .. } => match ResctrlAllocator::open_host() {
                Ok(a) => (Arc::new(a), true),
                Err(_) => (Arc::new(NoopAllocator), false),
            },
            _ => (Arc::new(NoopAllocator), false),
        };
        Self::with_allocator(
            olap_workers,
            oltp_workers,
            dataset_rows,
            allocator,
            cat_live,
        )
    }

    /// Builds the engine over an in-memory fake resctrl filesystem,
    /// supervised exactly like the production path. This is the chaos
    /// harness backend (`ccp serve --fake-resctrl`): `ccp-fault`
    /// failpoints in the resctrl layer fire as they would on hardware,
    /// the circuit breaker trips, and degraded mode is reachable in CI
    /// containers without CAT.
    pub fn with_fake_resctrl(
        olap_workers: usize,
        oltp_workers: usize,
        dataset_rows: usize,
    ) -> Self {
        Self::with_fake_resctrl_closids(olap_workers, oltp_workers, dataset_rows, 16)
    }

    /// [`with_fake_resctrl`](Self::with_fake_resctrl) with the fake
    /// tree's CLOSID count capped at `num_closids` (Broadwell has 16;
    /// the exhaustion chaos harness runs with 4 so tenant groups hit
    /// `ENOSPC` deterministically).
    pub fn with_fake_resctrl_closids(
        olap_workers: usize,
        oltp_workers: usize,
        dataset_rows: usize,
        num_closids: u32,
    ) -> Self {
        let fs = ccp_resctrl::fs::FakeFs::new("/sys/fs/resctrl", 0xfffff, 2, num_closids, &[0]);
        let allocator: Arc<dyn CacheAllocator> = match ccp_resctrl::CacheController::open_with(
            Box::new(fs.clone()),
            "/sys/fs/resctrl",
        ) {
            Ok(ctl) => Arc::new(ResctrlAllocator::new(ctl, vec![0])),
            Err(_) => Arc::new(NoopAllocator),
        };
        let mut engine =
            Self::with_allocator(olap_workers, oltp_workers, dataset_rows, allocator, false);
        engine.fake_fs = Some(fs);
        engine
    }

    /// Builds the engine with an explicit allocator (tests use recording
    /// or no-op allocators).
    pub fn with_allocator(
        olap_workers: usize,
        oltp_workers: usize,
        dataset_rows: usize,
        allocator: Arc<dyn CacheAllocator>,
        cat_live: bool,
    ) -> Self {
        let cfg = ccp_cachesim::HierarchyConfig::broadwell_e5_2699_v4();
        let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
        QueryEngine {
            pools: DualPoolExecutor::new(
                olap_workers,
                oltp_workers,
                policy,
                Arc::clone(&allocator),
            ),
            policy,
            cat_live,
            allocator,
            data: Datasets::build(dataset_rows),
            best_rows_per_sec: Mutex::new(HashMap::new()),
            reuse: Some(ReuseCache::new(ccp_reuse::ReuseConfig::with_budget(
                DEFAULT_REUSE_BUDGET_BYTES,
            ))),
            fake_fs: None,
        }
    }

    /// A supervised controller over the *same* resctrl tree the engine's
    /// allocator programs, sharing its health handle — this is what the
    /// group reconciler runs on, so a reconcile failure streak trips the
    /// same breaker the engine's binds do. `None` for backends without a
    /// tree (noop, recording).
    pub fn reconcile_controller(&self) -> Option<ccp_resctrl::SupervisedController> {
        let health = self.resctrl_health()?;
        let ctl = match &self.fake_fs {
            Some(fs) => {
                ccp_resctrl::CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl")
                    .ok()?
            }
            None if self.cat_live => ccp_resctrl::CacheController::open().ok()?,
            None => return None,
        };
        Some(ccp_resctrl::SupervisedController::new(
            ctl,
            ccp_resctrl::RetryPolicy::default(),
            health,
        ))
    }

    /// Replaces (or disables, with `None`) the reuse cache. The server
    /// calls this once at startup from `--reuse-budget-mb`/`--no-reuse`,
    /// before the engine serves any query.
    pub fn configure_reuse(&mut self, cache: Option<ReuseCache>) {
        self.reuse = cache;
    }

    /// The reuse cache, when enabled (for metrics registration, stats
    /// and `/data/bump`).
    pub fn reuse_cache(&self) -> Option<&ReuseCache> {
        self.reuse.as_ref()
    }

    /// The dual-pool executor (for `/stats` snapshots).
    pub fn pools(&self) -> &DualPoolExecutor {
        &self.pools
    }

    /// The allocator's shared resctrl health handle (`None` for
    /// backends without failure modes, e.g. noop).
    pub fn resctrl_health(&self) -> Option<Arc<ccp_resctrl::ResctrlHealth>> {
        self.allocator.health()
    }

    /// Runs one allocator health probe; returns `true` when the
    /// backend is (or has become) healthy. See
    /// [`CacheAllocator::reprobe`].
    pub fn reprobe_resctrl(&self) -> bool {
        self.allocator.reprobe()
    }

    /// The active partition policy.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Whether masks reach real CAT hardware.
    pub fn cat_live(&self) -> bool {
        self.cat_live
    }

    /// Classifies a workload to its cache usage identifier — the paper's
    /// taxonomy applied at the query level.
    pub fn classify(&self, spec: &WorkloadSpec) -> CacheUsageClass {
        match spec {
            // A selective scan streams without reuse: class (i).
            WorkloadSpec::Q1 { .. } => CacheUsageClass::Polluting,
            // Aggregation hash tables + dictionaries want the LLC: (ii).
            WorkloadSpec::Q2 { .. } => CacheUsageClass::Sensitive,
            // The join's bit vector is the hot set: class (iii).
            WorkloadSpec::Q3 => CacheUsageClass::Mixed {
                hot_bytes: self.data.q3_hot_bytes(),
            },
            WorkloadSpec::Tpch { id } => classify_profile(*id),
            // Point selects touch a few lines; treat as sensitive — they
            // run on the full-cache OLTP pool regardless.
            WorkloadSpec::Oltp { .. } => CacheUsageClass::Sensitive,
            // Sleep holds a slot the way a sensitive query would, which
            // is exactly what the backpressure tests need.
            WorkloadSpec::Sleep { .. } => CacheUsageClass::Sensitive,
        }
    }

    /// Classifies for *admission*, consulting the reuse cache first: a
    /// workload whose artifact is predicted resident is admitted under
    /// the non-polluting class — a scan that will be served from its
    /// memoized result cannot pollute, so holding it back behind the
    /// polluter limits would waste a co-run slot. Returns the admitted
    /// CUID plus whether a hit was predicted (the caller counts a
    /// misprediction when the entry has vanished by execution time).
    pub fn classify_for_admission(&self, spec: &WorkloadSpec) -> (CacheUsageClass, bool) {
        let base = self.classify(spec);
        let Some(cache) = self.reuse.as_ref() else {
            return (base, false);
        };
        let Some((qid, pred)) = reuse_key_parts(spec) else {
            return (base, false);
        };
        if !cache.predict(&cache.key(&qid, &pred)) {
            return (base, false);
        }
        // A predicted hit skips the build work; what remains (probe,
        // lookup, render) is footprint-light. Sensitive rather than a
        // new class keeps the scheduler's co-run table unchanged.
        (CacheUsageClass::Sensitive, true)
    }

    /// The way mask jobs of this workload bind (OLTP: always full
    /// cache). OLAP masks come from the *live* table, so with adaptive
    /// control on, the reported mask is the one the next bind will use.
    pub fn mask_bits(&self, spec: &WorkloadSpec, cuid: CacheUsageClass) -> u32 {
        match spec {
            WorkloadSpec::Oltp { .. } => self.policy.mask_for(CacheUsageClass::Sensitive).bits(),
            _ => self.pools.live_masks().mask_for(cuid, &self.policy).bits(),
        }
    }

    /// The live mask table the OLAP workers consult on every bind — the
    /// adaptive controller's publication target.
    pub fn live_masks(&self) -> Arc<ccp_engine::LiveMasks> {
        self.pools.live_masks()
    }

    /// Pre-creates (or re-asserts) the resctrl group for `mask` without
    /// binding any task, so a repartition's schemata writes happen — and
    /// fail — on the control path rather than on a worker's bind path.
    pub fn prepare_mask(&self, mask: ccp_cachesim::WayMask) -> Result<(), ccp_engine::AllocError> {
        self.allocator.prepare(mask)
    }

    /// Executes `spec` on the appropriate pool and reports the outcome.
    pub fn execute(&self, spec: &WorkloadSpec) -> QueryOutcome {
        self.execute_admitted(spec, self.classify(spec))
    }

    /// Executes `spec` under an already-admitted CUID (the class the
    /// admission queue actually used, possibly shifted by a predicted
    /// reuse hit), so the reported class and mask match the admission
    /// decision rather than re-deriving the static taxonomy.
    pub fn execute_admitted(&self, spec: &WorkloadSpec, cuid: CacheUsageClass) -> QueryOutcome {
        let started = Instant::now();
        let (rows, result, reuse) = self.run(spec);
        let latency = started.elapsed();
        let latency_secs = latency.as_secs_f64().max(1e-9);
        let rows_per_sec = rows as f64 / latency_secs;
        let workload = spec.name();
        let normalized = self.normalize(&workload, rows_per_sec);
        QueryOutcome {
            workload,
            class: class_label(cuid),
            mask_bits: self.mask_bits(spec, cuid),
            rows,
            result,
            latency_secs,
            rows_per_sec,
            normalized_throughput: normalized,
            reuse: reuse.label(),
        }
    }

    /// Throughput relative to the best run of `workload` seen so far.
    fn normalize(&self, workload: &str, rows_per_sec: f64) -> f64 {
        let mut best = self
            .best_rows_per_sec
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = best.entry(workload.to_string()).or_insert(rows_per_sec);
        if rows_per_sec > *entry {
            *entry = rows_per_sec;
        }
        if *entry <= 0.0 {
            1.0
        } else {
            rows_per_sec / *entry
        }
    }

    /// The reuse handle for `spec`, when reuse is enabled and the
    /// workload is cacheable.
    fn reuse_handle(&self, spec: &WorkloadSpec) -> Option<ReuseHandle> {
        let cache = self.reuse.as_ref()?;
        let (qid, pred) = reuse_key_parts(spec)?;
        Some(ReuseHandle::new(cache.clone(), cache.key(&qid, &pred)))
    }

    fn run(&self, spec: &WorkloadSpec) -> (u64, i64, ReuseStatus) {
        let d = &self.data;
        match spec {
            // Selective scans memoize their full result: the cached form
            // of the paper's polluter streams nothing through the LLC.
            WorkloadSpec::Q1 { threshold } => {
                let threshold = *threshold;
                memoized(self.reuse_handle(spec), || {
                    let matches = scan::column_scan(self.pools.olap(), &d.amounts, threshold);
                    (d.amounts.len() as u64, matches as i64)
                })
            }
            WorkloadSpec::Q2 { agg } => {
                let handle = self.reuse_handle(spec);
                let (table, status) = aggregate::grouped_aggregate_cached(
                    self.pools.olap(),
                    &d.amounts,
                    &d.regions,
                    *agg,
                    handle.as_ref(),
                );
                (d.amounts.len() as u64, table.len() as i64, status)
            }
            WorkloadSpec::Q3 => {
                let handle = self.reuse_handle(spec);
                let (matches, status) =
                    join::fk_join_count_cached(self.pools.olap(), &d.pk, &d.fk, handle.as_ref());
                (d.fk.len() as u64, matches as i64, status)
            }
            WorkloadSpec::Tpch { id: 1 } => memoized(self.reuse_handle(spec), || {
                let groups = ccp_tpch::q1_pricing_summary(self.pools.olap(), &d.lineitem);
                (d.lineitem.row_count() as u64, groups.len() as i64)
            }),
            WorkloadSpec::Tpch { id: 6 } => memoized(self.reuse_handle(spec), || {
                let revenue =
                    ccp_tpch::q6_forecast_revenue(self.pools.olap(), &d.lineitem, 24, 4..=6);
                (d.lineitem.row_count() as u64, revenue)
            }),
            WorkloadSpec::Tpch { id } => {
                let id = *id;
                memoized(self.reuse_handle(spec), || self.run_profile_phases(id))
            }
            WorkloadSpec::Oltp { key } => {
                let (rows, result) = self.run_point_select(*key);
                (rows, result, ReuseStatus::Bypass)
            }
            WorkloadSpec::Sleep { ms } => {
                let pause = Duration::from_millis(*ms);
                self.pools
                    .olap()
                    .submit_batch(vec![Job::new(
                        "sleep",
                        CacheUsageClass::Sensitive,
                        move || std::thread::sleep(pause),
                    )])
                    .wait();
                (0, *ms as i64, ReuseStatus::Bypass)
            }
        }
    }

    /// Plays a TPC-H profile's phase sequence against the resident data:
    /// each phase maps to the native operator of its kind, so the query
    /// exercises the same operator mix (and CUID behaviour) its SF 100
    /// profile describes, at the server's data scale.
    fn run_profile_phases(&self, id: u8) -> (u64, i64) {
        let d = &self.data;
        let mut rows = 0u64;
        let mut result = 0i64;
        for phase in &ccp_tpch::queries::profile(id).phases {
            match phase {
                PhaseSpec::Scan { .. } => {
                    result += scan::column_scan(self.pools.olap(), &d.amounts, 25_000) as i64;
                    rows += d.amounts.len() as u64;
                }
                PhaseSpec::Join { .. } => {
                    result += join::fk_join_count(self.pools.olap(), &d.pk, &d.fk) as i64;
                    rows += d.fk.len() as u64;
                }
                PhaseSpec::Aggregate { .. } => {
                    let t = aggregate::grouped_aggregate(
                        self.pools.olap(),
                        &d.amounts,
                        &d.regions,
                        Aggregate::Sum,
                    );
                    result += t.len() as i64;
                    rows += d.amounts.len() as u64;
                }
            }
        }
        (rows, result)
    }

    /// Point select on the dedicated full-cache OLTP pool: index lookup on
    /// the key column, sum of the projected amount column.
    fn run_point_select(&self, key: i64) -> (u64, i64) {
        let Some(code) = self.data.oltp_keys.dict().encode(&key) else {
            return (0, 0);
        };
        let index = self.data.oltp_index.clone();
        let amounts = self.data.oltp_amounts.clone();
        let hits = Arc::new(AtomicU64::new(0));
        let total = Arc::new(AtomicU64::new(0));
        let (hits2, total2) = (hits.clone(), total.clone());
        self.pools
            .oltp()
            .submit_batch(vec![Job::new(
                "point-select",
                CacheUsageClass::Sensitive,
                move || {
                    let rows = index.lookup(code);
                    let mut sum = 0i64;
                    for &r in rows {
                        sum += *amounts.dict().decode(amounts.code_at(r as usize));
                    }
                    // ORDERING: the batch wait below synchronizes with the
                    // worker (channel + condvar), so relaxed stores are
                    // visible to the post-wait loads without extra fencing.
                    hits2.store(rows.len() as u64, Ordering::Relaxed);
                    total2.store(sum as u64, Ordering::Relaxed);
                },
            )])
            .wait();
        (
            // ORDERING: wait() above happens-before these reads; relaxed
            // is enough to observe the job's stores.
            hits.load(Ordering::Relaxed),
            total.load(Ordering::Relaxed) as i64,
        )
    }
}

/// The reuse-key identity of a workload: `(query_id, raw predicate)`.
/// `None` marks the workload uncacheable — OLTP point selects (cheap,
/// write-adjacent) and the debug sleep always bypass the cache. The
/// predicate strings deliberately vary spelling-agnostic parameters
/// only; [`ccp_reuse::canonicalize_predicate`] normalizes them.
fn reuse_key_parts(spec: &WorkloadSpec) -> Option<(String, String)> {
    match spec {
        WorkloadSpec::Q1 { threshold } => Some(("q1".into(), format!("threshold < {threshold}"))),
        WorkloadSpec::Q2 { agg } => Some(("q2".into(), format!("agg = {}", agg_label(*agg)))),
        WorkloadSpec::Q3 => Some(("q3".into(), String::new())),
        WorkloadSpec::Tpch { id } => Some((format!("tpch-{id}"), String::new())),
        WorkloadSpec::Oltp { .. } | WorkloadSpec::Sleep { .. } => None,
    }
}

fn agg_label(agg: Aggregate) -> &'static str {
    match agg {
        Aggregate::Max => "max",
        Aggregate::Min => "min",
        Aggregate::Sum => "sum",
        Aggregate::Count => "count",
    }
}

/// Full result memoization: a hit returns the cached `(rows, result)`
/// pair without running anything; a miss runs `run` and publishes its
/// outcome with the measured cost.
fn memoized(
    handle: Option<ReuseHandle>,
    run: impl FnOnce() -> (u64, i64),
) -> (u64, i64, ReuseStatus) {
    let Some(handle) = handle else {
        let (rows, result) = run();
        return (rows, result, ReuseStatus::Bypass);
    };
    match handle.begin() {
        Begin::Hit(artifact) => match artifact.result_set() {
            Some(rs) => (rs.rows, rs.result, ReuseStatus::Hit),
            None => {
                let (rows, result) = run();
                (rows, result, ReuseStatus::Miss)
            }
        },
        Begin::Build(guard) => {
            let started = Instant::now();
            let (rows, result) = run();
            guard.publish(
                Artifact::ResultSet(Arc::new(ResultSet { rows, result })),
                started.elapsed(),
            );
            (rows, result, ReuseStatus::Miss)
        }
    }
}

/// CUID for a TPC-H query from its SF 100 cache profile: the phase
/// processing the most rows shapes the query's cache behaviour. A
/// scan-dominated query pollutes even when a small sum rides along
/// (TPC-H 6); an aggregation-dominated one is sensitive (TPC-H 1); a
/// join-dominated one is mixed with the build-side bit vector as its hot
/// set.
fn classify_profile(id: u8) -> CacheUsageClass {
    let profile = ccp_tpch::queries::profile(id);
    let mut dominant: Option<(u64, CacheUsageClass)> = None;
    for phase in &profile.phases {
        let (rows, class) = match *phase {
            PhaseSpec::Scan { rows, .. } => (rows, CacheUsageClass::Polluting),
            PhaseSpec::Join {
                build_keys,
                probe_rows,
            } => (
                probe_rows,
                CacheUsageClass::Mixed {
                    hot_bytes: build_keys.div_ceil(8),
                },
            ),
            PhaseSpec::Aggregate { rows, .. } => (rows, CacheUsageClass::Sensitive),
        };
        if dominant.is_none_or(|(max, _)| rows > max) {
            dominant = Some((rows, class));
        }
    }
    dominant.map_or(CacheUsageClass::Polluting, |(_, class)| class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_engine::alloc::RecordingAllocator;

    fn engine() -> QueryEngine {
        QueryEngine::with_allocator(2, 1, 4_096, Arc::new(RecordingAllocator::new()), false)
    }

    #[test]
    fn parses_all_workload_forms() {
        let q = |s: &str| parse_query(&Json::parse(s).unwrap(), false).unwrap();
        assert_eq!(
            q(r#"{"workload":"q1","threshold":100}"#),
            WorkloadSpec::Q1 { threshold: 100 }
        );
        assert_eq!(
            q(r#"{"workload":"q2","agg":"sum"}"#),
            WorkloadSpec::Q2 {
                agg: Aggregate::Sum
            }
        );
        assert_eq!(q(r#"{"workload":"q3"}"#), WorkloadSpec::Q3);
        assert_eq!(q(r#"{"workload":"tpch-6"}"#), WorkloadSpec::Tpch { id: 6 });
        assert_eq!(
            q(r#"{"workload":"oltp","key":3}"#),
            WorkloadSpec::Oltp { key: 3 }
        );
    }

    #[test]
    fn rejects_bad_requests_with_reasons() {
        let e = |s: &str| parse_query(&Json::parse(s).unwrap(), false).unwrap_err();
        assert!(e(r#"{}"#).contains("workload"));
        assert!(e(r#"{"workload":"q9"}"#).contains("unknown workload"));
        assert!(e(r#"{"workload":"tpch-23"}"#).contains("1..=22"));
        assert!(e(r#"{"workload":"tpch-x"}"#).contains("bad TPC-H"));
        assert!(e(r#"{"workload":"q1","threshold":"hi"}"#).contains("threshold"));
        // Sleep is gated.
        assert!(e(r#"{"workload":"sleep"}"#).contains("unknown workload"));
        assert_eq!(
            parse_query(
                &Json::parse(r#"{"workload":"sleep","ms":5}"#).unwrap(),
                true
            )
            .unwrap(),
            WorkloadSpec::Sleep { ms: 5 }
        );
    }

    #[test]
    fn classification_follows_the_paper_taxonomy() {
        let en = engine();
        assert_eq!(
            en.classify(&WorkloadSpec::Q1 { threshold: 1 }),
            CacheUsageClass::Polluting
        );
        assert_eq!(
            en.classify(&WorkloadSpec::Q2 {
                agg: Aggregate::Max
            }),
            CacheUsageClass::Sensitive
        );
        assert!(matches!(
            en.classify(&WorkloadSpec::Q3),
            CacheUsageClass::Mixed { .. }
        ));
        // TPC-H 1 aggregates -> sensitive; TPC-H 6 is a pure scan.
        assert_eq!(
            en.classify(&WorkloadSpec::Tpch { id: 1 }),
            CacheUsageClass::Sensitive
        );
        assert_eq!(
            en.classify(&WorkloadSpec::Tpch { id: 6 }),
            CacheUsageClass::Polluting
        );
    }

    #[test]
    fn executes_each_native_workload() {
        let en = engine();
        let q1 = en.execute(&WorkloadSpec::Q1 { threshold: 25_000 });
        assert_eq!(q1.rows, 4_096);
        assert!(q1.result > 0, "roughly half the rows match");
        let q2 = en.execute(&WorkloadSpec::Q2 {
            agg: Aggregate::Sum,
        });
        assert_eq!(q2.result, 64, "one group per region");
        let q3 = en.execute(&WorkloadSpec::Q3);
        assert_eq!(q3.result, 4_096, "every foreign key matches");
        let t1 = en.execute(&WorkloadSpec::Tpch { id: 1 });
        assert!(t1.result > 0 && t1.rows > 0);
        let t5 = en.execute(&WorkloadSpec::Tpch { id: 5 });
        assert!(t5.rows > 0, "phase playback processed rows");
        let oltp = en.execute(&WorkloadSpec::Oltp { key: 7 });
        assert!(oltp.rows > 0, "key 7 exists in 1..=512");
        assert!(oltp.result > 0);
    }

    #[test]
    fn normalized_throughput_is_relative_to_best_run() {
        let en = engine();
        let first = en.execute(&WorkloadSpec::Q1 { threshold: 25_000 });
        assert!((first.normalized_throughput - 1.0).abs() < 1e-9);
        for _ in 0..3 {
            let again = en.execute(&WorkloadSpec::Q1 { threshold: 25_000 });
            assert!(again.normalized_throughput <= 1.0 + 1e-9);
            assert!(again.normalized_throughput > 0.0);
        }
    }

    #[test]
    fn outcome_renders_as_json_object() {
        let en = engine();
        let line = en.execute(&WorkloadSpec::Q3).to_json().to_string();
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("workload").unwrap().as_str(), Some("q3"));
        assert_eq!(parsed.get("class").unwrap().as_str(), Some("mixed"));
        assert!(parsed
            .get("mask")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("0x"));
        assert!(parsed.get("latency_secs").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn repeated_query_hits_and_shifts_admission_class() {
        let en = engine();
        let spec = WorkloadSpec::Q1 { threshold: 25_000 };
        // Cold: no prediction, the scan admits as the polluter it is.
        let (cuid, predicted) = en.classify_for_admission(&spec);
        assert_eq!(cuid, CacheUsageClass::Polluting);
        assert!(!predicted);
        let first = en.execute(&spec);
        assert_eq!(first.reuse, "miss");
        // Warm: predicted hit -> admitted sensitive-light, served cached.
        let (cuid, predicted) = en.classify_for_admission(&spec);
        assert_eq!(cuid, CacheUsageClass::Sensitive);
        assert!(predicted);
        let second = en.execute_admitted(&spec, cuid);
        assert_eq!(second.reuse, "hit");
        assert_eq!(second.class, "sensitive");
        assert_eq!((second.rows, second.result), (first.rows, first.result));
        // A different threshold is a different key: miss again.
        let other = en.execute(&WorkloadSpec::Q1 { threshold: 10 });
        assert_eq!(other.reuse, "miss");
    }

    #[test]
    fn version_bump_invalidates_and_recovers() {
        let en = engine();
        let spec = WorkloadSpec::Q2 {
            agg: Aggregate::Sum,
        };
        assert_eq!(en.execute(&spec).reuse, "miss");
        assert_eq!(en.execute(&spec).reuse, "hit");
        en.reuse_cache()
            .expect("reuse on by default")
            .bump_version();
        let (cuid, predicted) = en.classify_for_admission(&spec);
        assert_eq!(cuid, CacheUsageClass::Sensitive, "q2 stays sensitive");
        assert!(!predicted, "bumped entry no longer predicts");
        assert_eq!(en.execute(&spec).reuse, "miss", "rebuilt after bump");
        assert_eq!(en.execute(&spec).reuse, "hit", "cache refills");
    }

    #[test]
    fn oltp_bypasses_and_disabling_reuse_bypasses_everything() {
        let mut en = engine();
        assert_eq!(en.execute(&WorkloadSpec::Oltp { key: 7 }).reuse, "bypass");
        en.configure_reuse(None);
        let spec = WorkloadSpec::Q1 { threshold: 25_000 };
        assert_eq!(en.execute(&spec).reuse, "bypass");
        assert_eq!(en.execute(&spec).reuse, "bypass");
        let (cuid, predicted) = en.classify_for_admission(&spec);
        assert_eq!(cuid, CacheUsageClass::Polluting);
        assert!(!predicted);
    }

    #[test]
    fn every_tpch_profile_classifies_and_small_ones_execute() {
        let en = engine();
        for id in ccp_tpch::query_ids() {
            let spec = WorkloadSpec::Tpch { id };
            let _ = en.classify(&spec);
        }
        // A couple of profile-driven queries end to end.
        for id in [3, 14] {
            let out = en.execute(&WorkloadSpec::Tpch { id });
            assert!(out.rows > 0, "tpch-{id} processed rows");
        }
    }
}
