//! A small, strict HTTP/1.1 core: request reading with hard limits,
//! response writing, and a plain client for tests and examples.
//!
//! The server only needs a narrow slice of HTTP — request line, headers,
//! `Content-Length` bodies, keep-alive and pipelining on one buffered
//! stream — so that slice is implemented directly over `std::net` with
//! explicit limits instead of pulling in a framework. Every limit
//! violation maps to a precise status code: malformed syntax is **400**,
//! oversized lines/headers/bodies are **413**.

use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Cumulative header bytes accepted per request.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum number of header fields per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request → respond 400.
    Malformed(&'static str),
    /// A limit was exceeded → respond 413.
    TooLarge(&'static str),
    /// The connection failed (including read timeouts) → drop silently.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge(why) => write!(f, "request too large: {why}"),
            HttpError::Io(e) => write!(f, "connection error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target as received, including any query string.
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header fields in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (query string stripped).
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(p, _)| p)
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }
}

/// Reads one line (up to `max` bytes before the terminator) from `r`.
/// `Ok(None)` is a clean EOF before any byte of the line.
fn read_line_limited<R: BufRead>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, HttpError> {
    let mut buf = Vec::new();
    let n = (&mut *r)
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(HttpError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > max {
            HttpError::TooLarge("line exceeds limit")
        } else {
            HttpError::Malformed("truncated request")
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(Some(buf))
}

fn ascii_line(bytes: Vec<u8>, what: &'static str) -> Result<String, HttpError> {
    String::from_utf8(bytes).map_err(|_| HttpError::Malformed(what))
}

/// Reads the next request off a buffered stream. `Ok(None)` means the
/// peer closed the connection cleanly between requests (keep-alive /
/// pipelining end). Errors classify as 400 ([`HttpError::Malformed`]),
/// 413 ([`HttpError::TooLarge`]) or connection-level
/// ([`HttpError::Io`]).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line_limited(r, MAX_REQUEST_LINE)? else {
        return Ok(None);
    };
    let line = ascii_line(line, "request line is not UTF-8")?;
    if line.is_empty() {
        return Err(HttpError::Malformed("empty request line"));
    }
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(
                "request line is not 'METHOD TARGET VERSION'",
            ))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("method is not an uppercase token"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(
            "target must be origin-form (start with '/')",
        ));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Malformed("unsupported HTTP version")),
    };

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let Some(line) = read_line_limited(r, MAX_HEADER_BYTES)? else {
            return Err(HttpError::Malformed("connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge("headers exceed limit"));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many header fields"));
        }
        let line = ascii_line(line, "header is not UTF-8")?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without ':'"));
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("invalid header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed("transfer encodings are not supported"));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed("invalid Content-Length"))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge("body exceeds limit"));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Malformed("truncated body")
            } else {
                HttpError::Io(e)
            }
        })?;
        request.body = body;
    }
    Ok(Some(request))
}

/// Standard reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response, written with `Content-Length` framing.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether to send `Connection: close` and drop the connection.
    pub close: bool,
    /// `Retry-After` header value in seconds, when set (429/503 replies).
    pub retry_after_secs: Option<u64>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            close: false,
            retry_after_secs: None,
        }
    }

    /// A `text/html` response (the self-contained dashboard).
    pub fn html(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/html; charset=utf-8",
            body: body.into(),
            close: false,
            retry_after_secs: None,
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: &crate::json::Json) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.to_string().into_bytes(),
            close: false,
            retry_after_secs: None,
        }
    }

    /// An `application/json` response from pre-rendered JSON text.
    pub fn json_text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            close: false,
            retry_after_secs: None,
        }
    }

    /// An NDJSON (one JSON document per line) response.
    pub fn ndjson(status: u16, lines: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/x-ndjson",
            body: lines.into(),
            close: false,
            retry_after_secs: None,
        }
    }

    /// A Prometheus text-exposition response.
    pub fn prometheus(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
            close: false,
            retry_after_secs: None,
        }
    }

    /// Marks the connection for closing after this response.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// Attaches a `Retry-After: secs` header (for 429/503 replies).
    pub fn retry_after(mut self, secs: u64) -> Self {
        self.retry_after_secs = Some(secs);
        self
    }

    /// Writes the response (status line, headers, body) and flushes.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        if let Some(secs) = self.retry_after_secs {
            write!(w, "Retry-After: {secs}\r\n")?;
        }
        if self.close {
            write!(w, "Connection: close\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// A parsed client-side response, as returned by [`fetch`] and
/// [`HttpClient::request`].
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response header fields in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Response body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// Case-insensitive response-header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn invalid(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Reads one `Content-Length`-framed response off a buffered stream.
/// Returns the response plus whether the server asked to close the
/// connection afterwards.
fn read_client_response<R: BufRead>(r: &mut R) -> io::Result<(ClientResponse, bool)> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = line
        .trim_end()
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("response without status"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(invalid("connection closed inside response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("response header without ':'"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let resp = ClientResponse {
        status,
        headers,
        body: String::new(),
    };
    let close = resp
        .header("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
    let body = match resp.header("content-length") {
        Some(len) => {
            let len: usize = len.parse().map_err(|_| invalid("bad Content-Length"))?;
            let mut buf = vec![0u8; len];
            r.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| invalid("body is not UTF-8"))?
        }
        // No framing: the body runs to connection close.
        None => {
            let mut buf = String::new();
            r.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok((ClientResponse { body, ..resp }, close))
}

/// A blocking HTTP/1.1 client that keeps its connection alive across
/// requests, reconnecting transparently when the server (or a timeout)
/// closed it. One in-flight request at a time; 5 s timeouts.
///
/// This is what the `bench-serve` load generator and the demo drive —
/// connection reuse keeps the measured latency about the *query*, not
/// about TCP handshakes.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<io::BufReader<TcpStream>>,
    /// SplitMix64 state for backoff jitter (seeded per client so a
    /// fleet of bench connections doesn't retry in lockstep).
    jitter: u64,
}

/// Total tries per [`HttpClient::request`] (the first attempt plus up
/// to two safe retries).
const CLIENT_MAX_ATTEMPTS: u32 = 3;
/// First-retry backoff; doubles per attempt up to [`CLIENT_MAX_DELAY_MS`].
const CLIENT_BASE_DELAY_MS: u64 = 10;
/// Backoff ceiling per retry.
const CLIENT_MAX_DELAY_MS: u64 = 200;

/// One SplitMix64 step: advances `state` and returns a well-mixed word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How far a failed exchange got, which decides whether a retry on a
/// fresh connection can be safe (the server must provably not have
/// executed the request — or the request must be idempotent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailurePoint {
    /// No request byte was handed to the socket; the server cannot have
    /// seen the request, so a retry is always safe.
    PreSend,
    /// The request was (at least partly) written but the connection
    /// closed before a single response byte arrived — the classic
    /// keep-alive idle-close race. The server *probably* never processed
    /// the request, but only idempotent methods may assume so.
    NoResponse,
    /// Failure mid-exchange: bytes partially written with the socket
    /// still up, a read timeout, a truncated response. The server may
    /// well be executing (or have executed) the request; never retry.
    MidExchange,
}

impl HttpClient {
    /// Creates a client for `addr` and opens the first connection.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x5eed, |d| d.as_nanos() as u64);
        Ok(HttpClient {
            addr,
            stream: Some(Self::open(addr)?),
            jitter: seed,
        })
    }

    fn open(addr: SocketAddr) -> io::Result<io::BufReader<TcpStream>> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        // Request/response traffic: Nagle + delayed ACK would add tens of
        // milliseconds per round trip for nothing.
        stream.set_nodelay(true)?;
        Ok(io::BufReader::new(stream))
    }

    /// Sends one request and reads its response, reusing the persistent
    /// connection.
    ///
    /// A failed exchange is retried on a fresh connection — up to
    /// [`CLIENT_MAX_ATTEMPTS`] tries total, with capped exponential
    /// backoff plus jitter between them — but only when the server
    /// cannot have executed the request twice: always when no request
    /// byte reached the socket, and for idempotent methods
    /// (`GET`/`HEAD`) also when the connection closed before any
    /// response byte (the keep-alive idle-close race). That race gets
    /// its first reconnect immediately, without a backoff sleep, since
    /// the server is healthy — it merely timed the idle socket out. A
    /// non-idempotent request that failed after being sent — say a read
    /// timeout on a slow `POST /query` — surfaces as an error instead of
    /// silently running the query a second time.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        self.request_with_headers(method, path, &[], body)
    }

    /// Like [`request`](Self::request), with extra request headers (e.g.
    /// `X-CCP-Tenant`). Header names and values must be single-line;
    /// `Host` and `Content-Length` are always set by the client.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let idempotent = matches!(method, "GET" | "HEAD");
        let mut attempt = 1u32;
        loop {
            let reused = self.stream.is_some();
            match self.try_request(method, path, headers, body) {
                Ok(resp) => return Ok(resp),
                Err((e, point)) => {
                    let retry_is_safe = match point {
                        FailurePoint::PreSend => true,
                        FailurePoint::NoResponse => idempotent,
                        FailurePoint::MidExchange => false,
                    };
                    if !retry_is_safe || attempt >= CLIENT_MAX_ATTEMPTS {
                        return Err(e);
                    }
                    if !(reused && attempt == 1) {
                        std::thread::sleep(self.backoff_delay(attempt));
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Backoff before retry number `attempt`: exponential from
    /// [`CLIENT_BASE_DELAY_MS`], capped at [`CLIENT_MAX_DELAY_MS`], with
    /// the upper half jittered so concurrent clients spread out.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let exp = CLIENT_BASE_DELAY_MS
            .saturating_mul(1u64 << (attempt - 1).min(10))
            .min(CLIENT_MAX_DELAY_MS);
        let jitter = splitmix64(&mut self.jitter) % (exp / 2 + 1);
        Duration::from_millis(exp / 2 + jitter)
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> Result<ClientResponse, (io::Error, FailurePoint)> {
        if self.stream.is_none() {
            self.stream = Some(Self::open(self.addr).map_err(|e| (e, FailurePoint::PreSend))?);
        }
        let Some(reader) = self.stream.as_mut() else {
            return Err((
                io::Error::new(io::ErrorKind::NotConnected, "connection not opened"),
                FailurePoint::PreSend,
            ));
        };
        let body = body.unwrap_or("");
        let extra = headers
            .iter()
            .map(|(name, value)| format!("{name}: {value}\r\n"))
            .collect::<String>();
        // One buffer, one write: the request must not straddle TCP
        // segments the peer's delayed ACK would stall on.
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n{extra}\r\n{body}",
            self.addr,
            body.len()
        );
        match Self::exchange(reader, raw.as_bytes()) {
            Ok((resp, close)) => {
                if close {
                    self.stream = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Writes one framed request and reads its response, classifying any
    /// failure by how far the exchange got (see [`FailurePoint`]).
    fn exchange(
        reader: &mut io::BufReader<TcpStream>,
        raw: &[u8],
    ) -> Result<(ClientResponse, bool), (io::Error, FailurePoint)> {
        let mut written = 0usize;
        while written < raw.len() {
            // `write` rather than `write_all`: distinguishing "the very
            // first write failed, zero bytes handed to the kernel" (the
            // only provably-unsent case) from a partial send needs the
            // byte count at the failure.
            let at = if written == 0 {
                FailurePoint::PreSend
            } else {
                FailurePoint::MidExchange
            };
            match reader.get_mut().write(&raw[written..]) {
                Ok(0) => {
                    return Err((
                        io::Error::new(io::ErrorKind::WriteZero, "socket refused request bytes"),
                        at,
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err((e, at)),
            }
        }
        // Peek at the first response byte before parsing, so "the server
        // closed or reset without responding at all" is distinguishable
        // from a failure mid-response. `fill_buf` (unlike `read_until` /
        // `read_exact`) surfaces EINTR, which profiling-signal delivery
        // makes routine — retry it here.
        let peeked = loop {
            match reader.fill_buf() {
                Ok(buf) => break Ok(buf.is_empty()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(e),
            }
        };
        match peeked {
            Ok(true) => Err((
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before any response byte",
                ),
                FailurePoint::NoResponse,
            )),
            Ok(false) => read_client_response(reader).map_err(|e| (e, FailurePoint::MidExchange)),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::BrokenPipe
                ) =>
            {
                Err((e, FailurePoint::NoResponse))
            }
            Err(e) => Err((e, FailurePoint::MidExchange)),
        }
    }
}

/// Minimal blocking HTTP client used by tests, examples and the
/// `metrics_dump` scrape path: one request per connection
/// (`Connection: close`), 5 s timeouts. For repeated requests prefer
/// [`HttpClient`], which reuses its connection.
pub fn fetch(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    fetch_with_headers(addr, method, path, &[], body)
}

/// Like [`fetch`], with extra request headers (e.g. `X-CCP-Tenant`).
pub fn fetch_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut reader = HttpClient::open(addr)?;
    let body = body.unwrap_or("");
    let extra = headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect::<String>();
    write!(
        reader.get_mut(),
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n{extra}\r\n{body}",
        body.len()
    )?;
    let (resp, _) = read_client_response(&mut reader)?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_get_with_headers() {
        let req = parse(b"GET /metrics?debug=1 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/metrics");
        assert_eq!(req.target, "/metrics?debug=1");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse(b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw: &[u8] =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut r = BufReader::new(raw);
        let a = read_request(&mut r).unwrap().unwrap();
        let b = read_request(&mut r).unwrap().unwrap();
        assert_eq!(a.path(), "/healthz");
        assert_eq!(b.body, b"hi");
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_are_400() {
        for raw in [
            &b"garbage\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\n: empty\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\ntrunc",
        ] {
            match parse(raw) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("expected Malformed for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_inputs_are_413() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        let big_header = format!(
            "GET /x HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_BYTES)
        );
        let many_headers = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            (0..MAX_HEADERS + 1)
                .map(|i| format!("X-{i}: v\r\n"))
                .collect::<String>()
        );
        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        for raw in [long_target, big_header, many_headers, huge_body] {
            match parse(raw.as_bytes()) {
                Err(HttpError::TooLarge(_)) => {}
                other => panic!("expected TooLarge, got {other:?}"),
            }
        }
    }

    #[test]
    fn connection_close_semantics() {
        let req = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close());
        let req = parse(b"GET /x HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(req.wants_close());
        let req = parse(b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn retry_after_header_is_written() {
        let mut out = Vec::new();
        Response::text(503, "busy")
            .retry_after(2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 2\r\n"));
    }

    #[test]
    fn client_reuses_one_connection_across_requests() {
        use std::net::TcpListener;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicUsize::new(0));
        let accepted2 = accepted.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            accepted2.fetch_add(1, Ordering::SeqCst);
            let mut reader = BufReader::new(stream);
            for i in 0..3 {
                let req = read_request(&mut reader).unwrap().unwrap();
                assert_eq!(req.path(), format!("/r{i}"));
                Response::text(200, format!("ok{i}"))
                    .write_to(reader.get_mut())
                    .unwrap();
            }
        });
        let mut client = HttpClient::connect(addr).unwrap();
        for i in 0..3 {
            let resp = client.request("GET", &format!("/r{i}"), None).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, format!("ok{i}"));
            assert_eq!(
                resp.header("content-type"),
                Some("text/plain; charset=utf-8")
            );
        }
        server.join().unwrap();
        assert_eq!(accepted.load(Ordering::SeqCst), 1, "connection was reused");
    }

    #[test]
    fn client_reconnects_after_server_close() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream);
                let _ = read_request(&mut reader).unwrap().unwrap();
                Response::text(200, "bye")
                    .closing()
                    .write_to(reader.get_mut())
                    .unwrap();
                // Dropping the stream closes the connection.
            }
        });
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.request("GET", "/a", None).unwrap().body, "bye");
        // Server closed after the response; the next request transparently
        // opens a fresh connection.
        assert_eq!(client.request("GET", "/b", None).unwrap().body, "bye");
        server.join().unwrap();
    }

    #[test]
    fn idempotent_get_retries_after_idle_close_race() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream);
                let _ = read_request(&mut reader).unwrap().unwrap();
                // Respond keep-alive, then close anyway: the next request
                // on this connection hits the idle-close race.
                Response::text(200, "ok")
                    .write_to(reader.get_mut())
                    .unwrap();
            }
        });
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.request("GET", "/a", None).unwrap().body, "ok");
        // The server dropped the connection without announcing it; the
        // GET is idempotent, so the client retries on a fresh connection.
        assert_eq!(client.request("GET", "/b", None).unwrap().body, "ok");
        server.join().unwrap();
    }

    #[test]
    fn post_is_not_retried_once_the_request_was_sent() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let _ = read_request(&mut reader).unwrap().unwrap();
            Response::text(200, "ok")
                .write_to(reader.get_mut())
                .unwrap();
            // Read the second request fully — the server "received" it —
            // then die without responding.
            let _ = read_request(&mut reader).unwrap().unwrap();
            drop(reader);
            listener
        });
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(
            client.request("POST", "/query", Some("x")).unwrap().status,
            200
        );
        // The second POST reached the server but got no response: the
        // client must surface the error, not replay a non-idempotent
        // request that may already have executed.
        let err = client.request("POST", "/query", Some("x")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
        // Any (buggy) retry would have reconnected before `request`
        // returned; the listener must have no pending connection.
        let listener = server.join().unwrap();
        listener.set_nonblocking(true).unwrap();
        match listener.accept() {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            other => panic!("unexpected reconnect: {other:?}"),
        }
    }

    #[test]
    fn response_writes_content_length_framing() {
        let mut out = Vec::new();
        Response::text(200, "hello").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));

        let mut out = Vec::new();
        Response::json(
            429,
            &crate::json::Json::obj(vec![("error", crate::json::Json::str("full"))]),
        )
        .closing()
        .write_to(&mut out)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains(r#"{"error":"full"}"#));
    }
}
