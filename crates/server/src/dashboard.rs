//! Renders the flight recorder's [`Timeline`] as one self-contained
//! HTML page: inline CSS, inline SVG line charts, zero external assets.
//! The page must stay viewable from an air-gapped artifact store (a CI
//! failure bundle, a `file:` open on a laptop), so the renderer never
//! emits a remote reference of any kind — no scripts, no stylesheets,
//! no images, no fonts. A unit test pins that property.
//!
//! Four panels overlay the partitioning story the paper tells: per-class
//! LLC occupancy, the controller's way allocation, admission pressure,
//! and request p95 — with vertical markers for every recorded event
//! (repartitions, reverts, degradation flips, epoch bumps, breaker
//! trips), so "the controller moved ways and p95 recovered" is visible
//! at a glance.

use ccp_flight::Timeline;

/// Chart area width in SVG user units.
const CHART_W: f64 = 720.0;
/// Chart area height in SVG user units.
const CHART_H: f64 = 160.0;
/// Padding around the plot area (room for axis labels).
const PAD_L: f64 = 64.0;
const PAD_R: f64 = 12.0;
const PAD_T: f64 = 10.0;
const PAD_B: f64 = 22.0;

/// Line colors, assigned to a panel's series in order.
const PALETTE: &[&str] = &[
    "#2563eb", "#dc2626", "#16a34a", "#9333ea", "#ea580c", "#0891b2", "#ca8a04", "#4b5563",
];

/// Marker color per event kind; unknown kinds fall back to grey.
fn event_color(kind: &str) -> &'static str {
    match kind {
        "repartition" => "#16a34a",
        "revert" => "#dc2626",
        "hold" => "#d1d5db",
        "degraded" => "#ea580c",
        "restored" => "#0891b2",
        "breaker_trip" => "#b91c1c",
        "epoch_bump" => "#9333ea",
        _ => "#6b7280",
    }
}

/// HTML/attribute escaping for untrusted text (event details carry
/// formatted plan strings today, but escape everything on principle).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// One chart: a title plus the subset of timeline series selected by
/// name prefix.
struct Panel<'a> {
    title: &'a str,
    /// A series joins the panel when its name starts with any prefix.
    prefixes: &'a [&'a str],
    series: Vec<(&'a str, &'a [(u64, f64)])>,
}

impl<'a> Panel<'a> {
    fn select(title: &'a str, prefixes: &'a [&'a str], tl: &'a Timeline) -> Panel<'a> {
        let series = tl
            .series
            .iter()
            .filter(|(name, pts)| !pts.is_empty() && prefixes.iter().any(|p| name.starts_with(p)))
            .map(|(name, pts)| (name.as_str(), pts.as_slice()))
            .collect();
        Panel {
            title,
            prefixes,
            series,
        }
    }

    /// Legend label: the label set inside `{…}` when present (the family
    /// name is already in the panel title), else the full series name.
    fn label(&self, name: &str) -> String {
        match (name.find('{'), name.rfind('}')) {
            (Some(open), Some(close)) if close > open => name[open + 1..close].to_string(),
            _ => name
                .strip_prefix(self.prefixes.first().copied().unwrap_or(""))
                .filter(|rest| !rest.is_empty())
                .unwrap_or(name)
                .to_string(),
        }
    }
}

/// Linear map of `v` from `[lo, hi]` onto `[out_lo, out_hi]`.
fn scale(v: f64, lo: f64, hi: f64, out_lo: f64, out_hi: f64) -> f64 {
    if hi <= lo {
        return (out_lo + out_hi) / 2.0;
    }
    out_lo + (v - lo) / (hi - lo) * (out_hi - out_lo)
}

/// Compact value formatting for axis labels (1.2M, 3.4k, 0.017).
fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 1.0 || a == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders one panel as an inline `<svg>` plus a legend.
fn render_panel(out: &mut String, panel: &Panel<'_>, tl: &Timeline, seq_lo: u64, seq_hi: u64) {
    out.push_str("<section class=\"panel\">\n");
    out.push_str(&format!("<h2>{}</h2>\n", esc(panel.title)));
    if panel.series.is_empty() {
        out.push_str("<p class=\"empty\">no data yet</p>\n</section>\n");
        return;
    }

    let vmax = panel
        .series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, v)| v))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let (x0, x1) = (PAD_L, CHART_W - PAD_R);
    let (y0, y1) = (CHART_H - PAD_B, PAD_T);
    let sx = |seq: u64| scale(seq as f64, seq_lo as f64, seq_hi as f64, x0, x1);
    let sy = |v: f64| scale(v, 0.0, vmax, y0, y1);

    out.push_str(&format!(
        "<svg viewBox=\"0 0 {CHART_W:.0} {CHART_H:.0}\" role=\"img\" \
         aria-label=\"{}\">\n",
        esc(panel.title)
    ));
    // Plot frame and horizontal gridlines at 0 / 50 / 100 %.
    for frac in [0.0_f64, 0.5, 1.0] {
        let y = scale(frac, 0.0, 1.0, y0, y1);
        out.push_str(&format!(
            "<line x1=\"{x0:.1}\" y1=\"{y:.1}\" x2=\"{x1:.1}\" y2=\"{y:.1}\" \
             stroke=\"#e5e7eb\" stroke-width=\"1\"/>\n"
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\" text-anchor=\"end\">{}</text>\n",
            x0 - 6.0,
            y + 3.0,
            esc(&fmt_value(vmax * frac))
        ));
    }
    // Event markers underneath the data lines.
    for ev in &tl.events {
        if ev.seq < seq_lo || ev.seq > seq_hi || ev.kind == "hold" {
            continue;
        }
        let x = sx(ev.seq);
        out.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{y1:.1}\" x2=\"{x:.1}\" y2=\"{y0:.1}\" \
             stroke=\"{}\" stroke-width=\"1\" stroke-dasharray=\"3 2\">\
             <title>{} @{}: {}</title></line>\n",
            event_color(ev.kind),
            esc(ev.kind),
            ev.seq,
            esc(&ev.detail),
        ));
    }
    // Data lines.
    for (i, (name, pts)) in panel.series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::with_capacity(pts.len() * 12);
        for &(seq, v) in *pts {
            if !path.is_empty() {
                path.push(' ');
            }
            path.push_str(&format!("{:.1},{:.1}", sx(seq), sy(v)));
        }
        out.push_str(&format!(
            "<polyline points=\"{path}\" fill=\"none\" stroke=\"{color}\" \
             stroke-width=\"1.5\"><title>{}</title></polyline>\n",
            esc(name)
        ));
    }
    out.push_str(&format!(
        "<text x=\"{x0:.1}\" y=\"{:.1}\" class=\"axis\">seq {seq_lo}</text>\n\
         <text x=\"{x1:.1}\" y=\"{:.1}\" class=\"axis\" text-anchor=\"end\">seq {seq_hi}</text>\n",
        CHART_H - 6.0,
        CHART_H - 6.0,
    ));
    out.push_str("</svg>\n<p class=\"legend\">");
    for (i, (name, _)) in panel.series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        out.push_str(&format!(
            "<span><span class=\"swatch\" style=\"background:{color}\"></span>{}</span> ",
            esc(&panel.label(name))
        ));
    }
    out.push_str("</p>\n</section>\n");
}

/// Renders the whole timeline as a single self-contained HTML document.
pub fn render(tl: &Timeline) -> String {
    // X domain: every retained point and event, so all panels share one
    // axis and markers line up across charts.
    let mut seq_lo = u64::MAX;
    let mut seq_hi = 0_u64;
    for (_, pts) in &tl.series {
        for &(seq, _) in pts {
            seq_lo = seq_lo.min(seq);
            seq_hi = seq_hi.max(seq);
        }
    }
    for ev in &tl.events {
        seq_lo = seq_lo.min(ev.seq);
        seq_hi = seq_hi.max(ev.seq);
    }
    if seq_lo > seq_hi {
        (seq_lo, seq_hi) = (0, 1);
    }

    let panels = [
        Panel::select(
            "LLC occupancy by class (bytes)",
            &["ccp_llc_occupancy_bytes"],
            tl,
        ),
        Panel::select(
            "Allocated cache ways by class",
            &["ccp_control_mask_ways"],
            tl,
        ),
        Panel::select(
            "Admission queue depth and running queries",
            &[
                "ccp_server_admission_queue_depth",
                "ccp_server_running_queries",
            ],
            tl,
        ),
        Panel::select(
            "Request latency p95 (seconds)",
            &["ccp_server_request_seconds:p95"],
            tl,
        ),
    ];

    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<title>ccp flight recorder</title>\n<style>\n");
    out.push_str(
        "body{font-family:ui-monospace,monospace;margin:1.5rem auto;max-width:760px;\
         color:#111827;background:#fff}\n\
         h1{font-size:1.2rem}h2{font-size:0.95rem;margin:0.2rem 0}\n\
         svg{width:100%;height:auto;border:1px solid #e5e7eb;background:#fcfcfd}\n\
         .axis{font-size:9px;fill:#6b7280}\n\
         .panel{margin-bottom:1.2rem}\n\
         .legend{font-size:0.75rem;margin:0.2rem 0}\n\
         .legend .swatch{display:inline-block;width:0.7em;height:0.7em;margin-right:0.3em}\n\
         .legend span{margin-right:0.8em}\n\
         .empty{color:#9ca3af;font-size:0.8rem}\n\
         table{border-collapse:collapse;font-size:0.75rem;width:100%}\n\
         td,th{border-bottom:1px solid #e5e7eb;padding:0.15rem 0.4rem;text-align:left}\n\
         .meta{color:#6b7280;font-size:0.75rem}\n",
    );
    out.push_str("</style>\n</head>\n<body>\n<h1>ccp flight recorder</h1>\n");
    out.push_str(&format!(
        "<p class=\"meta\">tick {} · interval {} ms · up {} ms · {} series dropped · \
         {} events dropped · rendered from /timeline</p>\n",
        tl.tick, tl.interval_ms, tl.now_ms, tl.dropped_series, tl.dropped_events,
    ));

    for panel in &panels {
        render_panel(&mut out, panel, tl, seq_lo, seq_hi);
    }

    // Event table (holds included here even though charts skip them).
    out.push_str("<section class=\"panel\">\n<h2>Events</h2>\n");
    if tl.events.is_empty() {
        out.push_str("<p class=\"empty\">no events yet</p>\n");
    } else {
        out.push_str("<table>\n<tr><th>seq</th><th>t (ms)</th><th>kind</th><th>detail</th></tr>\n");
        for ev in &tl.events {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td>\
                 <td><span class=\"swatch\" style=\"background:{}\"></span>{}</td>\
                 <td>{}</td></tr>\n",
                ev.seq,
                ev.t_ms,
                event_color(ev.kind),
                esc(ev.kind),
                esc(&ev.detail),
            ));
        }
        out.push_str("</table>\n");
    }
    out.push_str("</section>\n</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_flight::Event;

    fn sample_timeline() -> Timeline {
        Timeline {
            tick: 12,
            interval_ms: 100,
            now_ms: 1200,
            started_unix_ms: 1_700_000_000_000,
            dropped_series: 0,
            dropped_events: 0,
            series: vec![
                (
                    "ccp_llc_occupancy_bytes{class=\"sensitive\"}".to_string(),
                    vec![(1, 1e6), (2, 2e6), (3, 9e6)],
                ),
                (
                    "ccp_llc_occupancy_bytes{class=\"polluting\"}".to_string(),
                    vec![(1, 8e6), (2, 7e6), (3, 2e6)],
                ),
                (
                    "ccp_control_mask_ways{class=\"sensitive\"}".to_string(),
                    vec![(1, 2.0), (3, 6.0)],
                ),
                (
                    "ccp_server_request_seconds:p95".to_string(),
                    vec![(2, 0.004)],
                ),
                ("ccp_unrelated_total".to_string(), vec![(1, 5.0)]),
            ],
            events: vec![Event {
                seq: 2,
                t_ms: 200,
                kind: "repartition",
                detail: "ways polluting=2 mixed=4 sensitive=6 <&>".to_string(),
            }],
        }
    }

    #[test]
    fn page_is_self_contained() {
        let html = render(&sample_timeline());
        // No external references of any kind: the page must open from an
        // air-gapped artifact store.
        for forbidden in ["http", "src=", "url(", "@import", "<script", "<link"] {
            assert!(
                !html.to_ascii_lowercase().contains(forbidden),
                "self-contained page must not contain {forbidden:?}"
            );
        }
        assert!(html.contains("<svg"));
        assert!(html.contains("<!DOCTYPE html>"));
    }

    #[test]
    fn panels_show_series_and_event_markers() {
        let html = render(&sample_timeline());
        assert!(
            html.contains("class=&quot;sensitive&quot;"),
            "legend label present"
        );
        assert!(html.contains("stroke-dasharray"), "event marker drawn");
        assert!(html.contains("repartition"));
        // Detail text is escaped.
        assert!(html.contains("&lt;&amp;&gt;"));
        assert!(!html.contains("<&>"));
        // Unrelated families stay out of the panels (only named in titles).
        assert!(!html.contains("ccp_unrelated_total"));
    }

    #[test]
    fn empty_timeline_renders_placeholders() {
        let tl = Timeline {
            tick: 0,
            interval_ms: 250,
            now_ms: 0,
            started_unix_ms: 0,
            dropped_series: 0,
            dropped_events: 0,
            series: Vec::new(),
            events: Vec::new(),
        };
        let html = render(&tl);
        assert!(html.contains("no data yet"));
        assert!(html.contains("no events yet"));
    }
}
