//! # ccp-server — networked service layer
//!
//! The paper's engine ([`ccp_engine`]) schedules and cache-partitions
//! jobs *inside* one process. This crate puts a wire in front of it: a
//! dependency-free (std-only) multi-threaded HTTP/1.1 service that
//!
//! * admits queries through the cache-aware scheduler — the query API
//!   (`POST /query`) classifies each workload to a cache usage
//!   identifier, takes a permit from a **bounded admission queue**
//!   (never two cache-sensitive queries at once, `429` when the queue
//!   overflows), and executes on the dual-pool executor;
//! * exposes the whole stack's instruments — one `GET /metrics` scrape
//!   in Prometheus text format shows executor, scheduler and
//!   `ccp_server_*` families side by side, plus `GET /healthz` and a
//!   JSON `GET /stats` snapshot;
//! * serves the process tracer ([`ccp_trace`]) as Chrome trace-event
//!   JSON on `GET /trace` (load it in Perfetto / `chrome://tracing`),
//!   and attaches a per-query latency breakdown
//!   (`queue_us`/`schedule_us`/`bind_us`/`exec_us`) to every `/query`
//!   response line.
//!
//! ```no_run
//! use ccp_server::{Server, ServerConfig};
//!
//! let mut server = Server::start(ServerConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! // ... later:
//! server.shutdown();
//! ```
//!
//! Everything — HTTP framing ([`http`]), JSON ([`json`]) — is written
//! against `std` alone, keeping the offline-vendored workspace honest.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod admission;
pub mod dashboard;
pub mod http;
pub mod json;
pub mod metrics;
pub mod query;
pub mod server;

pub use admission::{
    AdmissionError, AdmissionQueue, ClassQueueLimits, FairShare, RunPermit, TenantLimits,
};
pub use http::{
    fetch, fetch_with_headers, ClientResponse, HttpClient, HttpError, Request, Response,
};
pub use json::Json;
pub use metrics::ServerMetrics;
pub use query::{
    parse_query, Breakdown, QueryEngine, QueryOutcome, WorkloadSpec, DEFAULT_REUSE_BUDGET_BYTES,
};
pub use server::{install_sigint_handler, sigint_requested, ScrapeServer, Server, ServerConfig};
