//! The server's own `ccp-obs` metric families (`ccp_server_*`).
//!
//! Everything the service layer does — connections accepted and refused,
//! requests by endpoint and status, request latency, admission-queue
//! occupancy and rejections — lands in the same [`Registry`] the engine,
//! scheduler and resctrl layers already publish to, so one `/metrics`
//! scrape shows the whole stack.

use ccp_control::ControlCounters;
use ccp_obs::{unit, Counter, Family, Gauge, Histogram, Registry};
use ccp_resctrl::{ReconcileStats, ResctrlHealth};

/// Instruments of the HTTP service layer. Cloning shares state.
#[derive(Clone)]
pub struct ServerMetrics {
    connections_total: Counter,
    connections_refused: Counter,
    active_connections: Gauge,
    requests: Family<Counter>,
    request_latency: Family<Histogram>,
    admission_rejections: Counter,
    admission_class_rejections: Family<Counter>,
    admission_timeouts: Counter,
    tenant_requests: Family<Counter>,
    tenant_rejections: Family<Counter>,
    reconcile_sweeps: Counter,
    reconcile_reconciled: Counter,
    reconcile_retried: Counter,
    reconcile_orphans_removed: Counter,
    reconcile_failures: Counter,
    reconcile_failed_groups: Gauge,
    reconcile_fallback_groups: Gauge,
    reconcile_exhausted: Gauge,
    queue_depth: Gauge,
    running_queries: Gauge,
    resctrl_degraded: Gauge,
    resctrl_retries: Counter,
    resctrl_op_failures: Counter,
    resctrl_breaker_trips: Counter,
    resctrl_reprobes: Counter,
    resctrl_restores: Counter,
    control_decisions: Counter,
    control_repartitions: Counter,
    control_holds: Counter,
    control_reverts: Counter,
    control_mask_ways: Family<Gauge>,
}

/// Last [`ResctrlHealth`] counter values already published to the
/// registry; [`ServerMetrics::sync_resctrl_health`] adds only deltas so
/// the Prometheus counters stay monotonic.
#[derive(Debug, Default, Clone, Copy)]
pub struct ResctrlHealthPublished {
    retries: u64,
    failures: u64,
    trips: u64,
    reprobes: u64,
    restores: u64,
}

/// Last [`ControlCounters`] values already published to the registry;
/// [`ServerMetrics::sync_control`] adds only deltas so the Prometheus
/// counters stay monotonic across control ticks.
#[derive(Debug, Default, Clone, Copy)]
pub struct ControlPublished {
    counters: ControlCounters,
}

/// Last [`ReconcileStats`] counter values already published to the
/// registry; [`ServerMetrics::sync_reconcile`] adds only deltas so the
/// Prometheus counters stay monotonic across reconcile passes.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReconcilePublished {
    sweeps: u64,
    reconciled: u64,
    retried: u64,
    orphans_removed: u64,
    failed_total: u64,
}

impl ServerMetrics {
    /// Creates the `ccp_server_*` families in `registry` and returns live
    /// handles.
    pub fn new(registry: &Registry) -> Self {
        ServerMetrics {
            connections_total: registry
                .counter_family(
                    "ccp_server_connections_total",
                    "TCP connections accepted by the server",
                )
                .get_or_create(&[]),
            connections_refused: registry
                .counter_family(
                    "ccp_server_connections_refused_total",
                    "Connections turned away at the connection cap (503)",
                )
                .get_or_create(&[]),
            active_connections: registry
                .gauge_family(
                    "ccp_server_active_connections",
                    "Connections currently being served",
                )
                .get_or_create(&[]),
            requests: registry.counter_family(
                "ccp_server_requests_total",
                "HTTP requests handled, by endpoint and status code",
            ),
            request_latency: registry.histogram_family_with(
                "ccp_server_request_seconds",
                "Request handling latency, by endpoint",
                unit::latency_seconds(),
            ),
            admission_rejections: registry
                .counter_family(
                    "ccp_server_admission_rejections_total",
                    "Queries rejected with 429 because the admission queue was full",
                )
                .get_or_create(&[]),
            admission_class_rejections: registry.counter_family(
                "ccp_server_admission_class_rejections_total",
                "Queries rejected with 429 because their class hit its queue limit",
            ),
            admission_timeouts: registry
                .counter_family(
                    "ccp_admission_timeouts_total",
                    "Queries dequeued with 503 after waiting past the admission deadline",
                )
                .get_or_create(&[]),
            tenant_requests: registry.counter_family(
                "ccp_server_tenant_requests_total",
                "Queries admitted per tenant and CUID class",
            ),
            tenant_rejections: registry.counter_family(
                "ccp_server_tenant_rejections_total",
                "Queries rejected with 429 because their tenant hit its in-flight quota",
            ),
            reconcile_sweeps: registry
                .counter_family(
                    "ccp_reconcile_sweeps_total",
                    "Orphan sweeps executed by the group reconciler (startup and per pass)",
                )
                .get_or_create(&[]),
            reconcile_reconciled: registry
                .counter_family(
                    "ccp_reconcile_reconciled_total",
                    "Tenant groups created and programmed by the reconciler",
                )
                .get_or_create(&[]),
            reconcile_retried: registry
                .counter_family(
                    "ccp_reconcile_retried_total",
                    "Group creations re-attempted after a failed or fallback pass",
                )
                .get_or_create(&[]),
            reconcile_orphans_removed: registry
                .counter_family(
                    "ccp_reconcile_orphans_removed_total",
                    "Stale ccp- groups deleted by reconciler sweeps",
                )
                .get_or_create(&[]),
            reconcile_failures: registry
                .counter_family(
                    "ccp_reconcile_failures_total",
                    "Reconcile operations (create, program, sweep) that failed",
                )
                .get_or_create(&[]),
            reconcile_failed_groups: registry
                .gauge_family(
                    "ccp_reconcile_failed_groups",
                    "Desired tenant groups currently in the Failed state",
                )
                .get_or_create(&[]),
            reconcile_fallback_groups: registry
                .gauge_family(
                    "ccp_reconcile_fallback_groups",
                    "Desired tenant groups currently degraded to the shared class mask \
                     (CLOSID exhaustion fallback)",
                )
                .get_or_create(&[]),
            reconcile_exhausted: registry
                .gauge_family(
                    "ccp_reconcile_exhausted",
                    "1 while the last reconcile pass hit CLOSID exhaustion, else 0",
                )
                .get_or_create(&[]),
            queue_depth: registry
                .gauge_family(
                    "ccp_server_admission_queue_depth",
                    "Queries waiting in the bounded admission queue",
                )
                .get_or_create(&[]),
            running_queries: registry
                .gauge_family(
                    "ccp_server_running_queries",
                    "Queries currently admitted and executing",
                )
                .get_or_create(&[]),
            resctrl_degraded: registry
                .gauge_family(
                    "ccp_resctrl_degraded",
                    "1 while the resctrl circuit breaker is tripped and the engine runs \
                     unpartitioned (degraded mode), 0 when partitioning is live",
                )
                .get_or_create(&[]),
            resctrl_retries: registry
                .counter_family(
                    "ccp_resctrl_retries_total",
                    "Transient resctrl failures retried by the supervisor",
                )
                .get_or_create(&[]),
            resctrl_op_failures: registry
                .counter_family(
                    "ccp_resctrl_op_failures_total",
                    "resctrl operations that exhausted their retries",
                )
                .get_or_create(&[]),
            resctrl_breaker_trips: registry
                .counter_family(
                    "ccp_resctrl_breaker_trips_total",
                    "Partitioned→Degraded transitions of the resctrl circuit breaker",
                )
                .get_or_create(&[]),
            resctrl_reprobes: registry
                .counter_family(
                    "ccp_resctrl_reprobes_total",
                    "Health probes attempted while degraded",
                )
                .get_or_create(&[]),
            resctrl_restores: registry
                .counter_family(
                    "ccp_resctrl_restores_total",
                    "Degraded→Partitioned transitions (successful re-probes)",
                )
                .get_or_create(&[]),
            control_decisions: registry
                .counter_family(
                    "ccp_control_decisions_total",
                    "Adaptive control ticks evaluated",
                )
                .get_or_create(&[]),
            control_repartitions: registry
                .counter_family(
                    "ccp_control_repartitions_total",
                    "Adaptive mask plans derived and applied",
                )
                .get_or_create(&[]),
            control_holds: registry
                .counter_family(
                    "ccp_control_holds_total",
                    "Control ticks that held the current plan (dwell, threshold, clamp, no data)",
                )
                .get_or_create(&[]),
            control_reverts: registry
                .counter_family(
                    "ccp_control_reverts_total",
                    "Falls back to the static paper plan (degraded health, stale readings, or a \
                     failed apply)",
                )
                .get_or_create(&[]),
            control_mask_ways: registry.gauge_family(
                "ccp_control_mask_ways",
                "LLC ways currently granted to each CUID class by the live mask table",
            ),
        }
    }

    /// Records an accepted connection; pair with
    /// [`connection_closed`](Self::connection_closed).
    pub fn connection_opened(&self) {
        self.connections_total.inc();
        self.active_connections.add(1.0);
    }

    /// Records the end of an accepted connection.
    pub fn connection_closed(&self) {
        self.active_connections.sub(1.0);
    }

    /// Records a connection refused at the cap.
    pub fn connection_refused(&self) {
        self.connections_refused.inc();
    }

    /// Records one handled request.
    pub fn record_request(&self, endpoint: &str, status: u16, latency_secs: f64) {
        self.requests
            .get_or_create(&[("endpoint", endpoint), ("status", &status.to_string())])
            .inc();
        self.request_latency
            .get_or_create(&[("endpoint", endpoint)])
            .observe(latency_secs);
    }

    /// Records an admission-queue overflow (a 429).
    pub fn record_admission_rejection(&self) {
        self.admission_rejections.inc();
    }

    /// Records a per-class queue-limit rejection (also a 429). The
    /// global rejection counter is bumped too, so existing dashboards
    /// keep seeing every 429 in one series.
    pub fn record_class_rejection(&self, class: &str) {
        self.admission_rejections.inc();
        self.admission_class_rejections
            .get_or_create(&[("class", class)])
            .inc();
    }

    /// Per-class queue-limit rejections so far for `class`.
    pub fn class_rejections(&self, class: &str) -> u64 {
        self.admission_class_rejections
            .get_or_create(&[("class", class)])
            .get()
    }

    /// Records one admitted query for `tenant` in `class`.
    pub fn record_tenant_request(&self, tenant: &str, class: &str) {
        self.tenant_requests
            .get_or_create(&[("tenant", tenant), ("class", class)])
            .inc();
    }

    /// Records a per-tenant quota rejection (also a 429). The global
    /// rejection counter is bumped too, so existing dashboards keep
    /// seeing every 429 in one series.
    pub fn record_tenant_rejection(&self, tenant: &str) {
        self.admission_rejections.inc();
        self.tenant_rejections
            .get_or_create(&[("tenant", tenant)])
            .inc();
    }

    /// Per-tenant quota rejections so far for `tenant`.
    pub fn tenant_rejections(&self, tenant: &str) -> u64 {
        self.tenant_rejections
            .get_or_create(&[("tenant", tenant)])
            .get()
    }

    /// Admitted queries so far for `tenant` in `class`.
    pub fn tenant_requests(&self, tenant: &str, class: &str) -> u64 {
        self.tenant_requests
            .get_or_create(&[("tenant", tenant), ("class", class)])
            .get()
    }

    /// Publishes the reconciler's counters and gauges, adding only the
    /// counter deltas since `published` (which is updated).
    pub fn sync_reconcile(&self, stats: &ReconcileStats, published: &mut ReconcilePublished) {
        let sweeps = stats.sweeps();
        let reconciled = stats.reconciled();
        let retried = stats.retried();
        let orphans_removed = stats.orphans_removed();
        let failed_total = stats.failed_total();
        self.reconcile_sweeps
            .add(sweeps.saturating_sub(published.sweeps));
        self.reconcile_reconciled
            .add(reconciled.saturating_sub(published.reconciled));
        self.reconcile_retried
            .add(retried.saturating_sub(published.retried));
        self.reconcile_orphans_removed
            .add(orphans_removed.saturating_sub(published.orphans_removed));
        self.reconcile_failures
            .add(failed_total.saturating_sub(published.failed_total));
        self.reconcile_failed_groups.set(stats.failed() as f64);
        self.reconcile_fallback_groups.set(stats.fallback() as f64);
        self.reconcile_exhausted
            .set(if stats.is_exhausted() { 1.0 } else { 0.0 });
        *published = ReconcilePublished {
            sweeps,
            reconciled,
            retried,
            orphans_removed,
            failed_total,
        };
    }

    /// Reconciler group creations so far.
    pub fn reconcile_reconciled(&self) -> u64 {
        self.reconcile_reconciled.get()
    }

    /// Reconciler re-attempts so far.
    pub fn reconcile_retried(&self) -> u64 {
        self.reconcile_retried.get()
    }

    /// Orphaned groups removed so far.
    pub fn reconcile_orphans_removed(&self) -> u64 {
        self.reconcile_orphans_removed.get()
    }

    /// Failed reconcile operations so far.
    pub fn reconcile_failures(&self) -> u64 {
        self.reconcile_failures.get()
    }

    /// Desired groups currently in the Failed state.
    pub fn reconcile_failed_groups(&self) -> f64 {
        self.reconcile_failed_groups.get()
    }

    /// Desired groups currently degraded to the shared class mask.
    pub fn reconcile_fallback_groups(&self) -> f64 {
        self.reconcile_fallback_groups.get()
    }

    /// Publishes the admission queue's current occupancy.
    pub fn set_admission_occupancy(&self, queued: usize, running: usize) {
        self.queue_depth.set(queued as f64);
        self.running_queries.set(running as f64);
    }

    /// Records a query dequeued after its admission deadline (a 503).
    pub fn record_admission_timeout(&self) {
        self.admission_timeouts.inc();
    }

    /// Admission rejections so far.
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections.get()
    }

    /// Admission deadline timeouts so far.
    pub fn admission_timeouts(&self) -> u64 {
        self.admission_timeouts.get()
    }

    /// Connections accepted so far.
    pub fn connections_total(&self) -> u64 {
        self.connections_total.get()
    }

    /// Connections currently active.
    pub fn active_connections(&self) -> f64 {
        self.active_connections.get()
    }

    /// Publishes the degraded flag (1 = degraded unpartitioned mode).
    pub fn set_resctrl_degraded(&self, degraded: bool) {
        self.resctrl_degraded.set(if degraded { 1.0 } else { 0.0 });
    }

    /// Current value of the degraded gauge.
    pub fn resctrl_degraded(&self) -> f64 {
        self.resctrl_degraded.get()
    }

    /// Publishes `health`'s monotonic counters into the registry,
    /// adding only what changed since `published` (which is updated).
    pub fn sync_resctrl_health(
        &self,
        health: &ResctrlHealth,
        published: &mut ResctrlHealthPublished,
    ) {
        let (retries, failures) = (health.retries(), health.failures());
        let (trips, reprobes, restores) = (health.trips(), health.reprobes(), health.restores());
        self.resctrl_retries
            .add(retries.saturating_sub(published.retries));
        self.resctrl_op_failures
            .add(failures.saturating_sub(published.failures));
        self.resctrl_breaker_trips
            .add(trips.saturating_sub(published.trips));
        self.resctrl_reprobes
            .add(reprobes.saturating_sub(published.reprobes));
        self.resctrl_restores
            .add(restores.saturating_sub(published.restores));
        *published = ResctrlHealthPublished {
            retries,
            failures,
            trips,
            reprobes,
            restores,
        };
    }

    /// Publishes the controller's monotonic counters, adding only what
    /// changed since `published` (which is updated).
    pub fn sync_control(&self, counters: ControlCounters, published: &mut ControlPublished) {
        let last = published.counters;
        self.control_decisions
            .add(counters.decisions.saturating_sub(last.decisions));
        self.control_repartitions
            .add(counters.repartitions.saturating_sub(last.repartitions));
        self.control_holds
            .add(counters.holds.saturating_sub(last.holds));
        self.control_reverts
            .add(counters.reverts.saturating_sub(last.reverts));
        published.counters = counters;
    }

    /// Publishes one class's live way count.
    pub fn set_control_mask_ways(&self, class: &str, ways: u32) {
        self.control_mask_ways
            .get_or_create(&[("class", class)])
            .set(f64::from(ways));
    }

    /// Adaptive repartitions so far.
    pub fn control_repartitions(&self) -> u64 {
        self.control_repartitions.get()
    }

    /// Control-loop decisions so far.
    pub fn control_decisions(&self) -> u64 {
        self.control_decisions.get()
    }

    /// Control-loop holds so far.
    pub fn control_holds(&self) -> u64 {
        self.control_holds.get()
    }

    /// Control-loop reverts to the static plan so far.
    pub fn control_reverts(&self) -> u64 {
        self.control_reverts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_render_with_endpoint_and_status_labels() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        m.connection_opened();
        m.record_request("/metrics", 200, 0.002);
        m.record_request("/query", 429, 0.0001);
        m.record_admission_rejection();
        m.record_admission_timeout();
        m.set_admission_occupancy(3, 2);
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_server_connections_total 1"));
        assert!(text.contains("ccp_server_active_connections 1.0"));
        assert!(text.contains("ccp_server_requests_total{endpoint=\"/metrics\",status=\"200\"} 1"));
        assert!(text.contains("ccp_server_requests_total{endpoint=\"/query\",status=\"429\"} 1"));
        assert!(text.contains("ccp_server_request_seconds_count{endpoint=\"/query\"} 1"));
        assert!(text.contains("ccp_server_admission_rejections_total 1"));
        assert!(text.contains("ccp_admission_timeouts_total 1"));
        assert!(text.contains("ccp_server_admission_queue_depth 3.0"));
        assert!(text.contains("ccp_server_running_queries 2.0"));
    }

    #[test]
    fn control_counters_delta_sync_and_gauges_render() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        let mut published = ControlPublished::default();
        m.sync_control(
            ControlCounters {
                decisions: 5,
                repartitions: 2,
                holds: 3,
                reverts: 1,
            },
            &mut published,
        );
        // Re-syncing the same snapshot adds nothing; a moved snapshot
        // adds only the delta.
        m.sync_control(
            ControlCounters {
                decisions: 5,
                repartitions: 2,
                holds: 3,
                reverts: 1,
            },
            &mut published,
        );
        m.sync_control(
            ControlCounters {
                decisions: 7,
                repartitions: 3,
                holds: 3,
                reverts: 1,
            },
            &mut published,
        );
        m.set_control_mask_ways("sensitive", 4);
        assert_eq!(m.control_decisions(), 7);
        assert_eq!(m.control_repartitions(), 3);
        assert_eq!(m.control_holds(), 3);
        assert_eq!(m.control_reverts(), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_control_repartitions_total 3"));
        assert!(text.contains("ccp_control_mask_ways{class=\"sensitive\"} 4.0"));
    }

    #[test]
    fn tenant_families_render_and_count() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        m.record_tenant_request("acme", "polluting");
        m.record_tenant_request("acme", "polluting");
        m.record_tenant_rejection("acme");
        assert_eq!(m.tenant_requests("acme", "polluting"), 2);
        assert_eq!(m.tenant_rejections("acme"), 1);
        // The quota 429 also lands in the global rejection series.
        assert_eq!(m.admission_rejections(), 1);
        let text = registry.render_prometheus();
        assert!(text
            .contains("ccp_server_tenant_requests_total{class=\"polluting\",tenant=\"acme\"} 2"));
        assert!(text.contains("ccp_server_tenant_rejections_total{tenant=\"acme\"} 1"));
    }

    #[test]
    fn reconcile_counters_delta_sync() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        let stats = ReconcileStats::default();
        let mut published = ReconcilePublished::default();
        stats.note_sweep();
        stats.note_reconciled();
        stats.note_reconciled();
        stats.note_retried();
        stats.set_failed(1);
        stats.set_fallback(3);
        stats.set_exhausted(true);
        m.sync_reconcile(&stats, &mut published);
        // Re-syncing an unchanged snapshot adds nothing.
        m.sync_reconcile(&stats, &mut published);
        assert_eq!(m.reconcile_reconciled(), 2);
        assert_eq!(m.reconcile_retried(), 1);
        assert_eq!(m.reconcile_failed_groups(), 1.0);
        assert_eq!(m.reconcile_fallback_groups(), 3.0);
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_reconcile_reconciled_total 2"));
        assert!(text.contains("ccp_reconcile_exhausted 1.0"));
    }

    #[test]
    fn connection_gauge_tracks_open_and_close() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        assert_eq!(m.active_connections(), 1.0);
        assert_eq!(m.connections_total(), 2);
    }
}
