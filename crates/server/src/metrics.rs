//! The server's own `ccp-obs` metric families (`ccp_server_*`).
//!
//! Everything the service layer does — connections accepted and refused,
//! requests by endpoint and status, request latency, admission-queue
//! occupancy and rejections — lands in the same [`Registry`] the engine,
//! scheduler and resctrl layers already publish to, so one `/metrics`
//! scrape shows the whole stack.

use ccp_control::ControlCounters;
use ccp_obs::{unit, Counter, Family, Gauge, Histogram, Registry};
use ccp_resctrl::ResctrlHealth;

/// Instruments of the HTTP service layer. Cloning shares state.
#[derive(Clone)]
pub struct ServerMetrics {
    connections_total: Counter,
    connections_refused: Counter,
    active_connections: Gauge,
    requests: Family<Counter>,
    request_latency: Family<Histogram>,
    admission_rejections: Counter,
    admission_class_rejections: Family<Counter>,
    admission_timeouts: Counter,
    queue_depth: Gauge,
    running_queries: Gauge,
    resctrl_degraded: Gauge,
    resctrl_retries: Counter,
    resctrl_op_failures: Counter,
    resctrl_breaker_trips: Counter,
    resctrl_reprobes: Counter,
    resctrl_restores: Counter,
    control_decisions: Counter,
    control_repartitions: Counter,
    control_holds: Counter,
    control_reverts: Counter,
    control_mask_ways: Family<Gauge>,
}

/// Last [`ResctrlHealth`] counter values already published to the
/// registry; [`ServerMetrics::sync_resctrl_health`] adds only deltas so
/// the Prometheus counters stay monotonic.
#[derive(Debug, Default, Clone, Copy)]
pub struct ResctrlHealthPublished {
    retries: u64,
    failures: u64,
    trips: u64,
    reprobes: u64,
    restores: u64,
}

/// Last [`ControlCounters`] values already published to the registry;
/// [`ServerMetrics::sync_control`] adds only deltas so the Prometheus
/// counters stay monotonic across control ticks.
#[derive(Debug, Default, Clone, Copy)]
pub struct ControlPublished {
    counters: ControlCounters,
}

impl ServerMetrics {
    /// Creates the `ccp_server_*` families in `registry` and returns live
    /// handles.
    pub fn new(registry: &Registry) -> Self {
        ServerMetrics {
            connections_total: registry
                .counter_family(
                    "ccp_server_connections_total",
                    "TCP connections accepted by the server",
                )
                .get_or_create(&[]),
            connections_refused: registry
                .counter_family(
                    "ccp_server_connections_refused_total",
                    "Connections turned away at the connection cap (503)",
                )
                .get_or_create(&[]),
            active_connections: registry
                .gauge_family(
                    "ccp_server_active_connections",
                    "Connections currently being served",
                )
                .get_or_create(&[]),
            requests: registry.counter_family(
                "ccp_server_requests_total",
                "HTTP requests handled, by endpoint and status code",
            ),
            request_latency: registry.histogram_family_with(
                "ccp_server_request_seconds",
                "Request handling latency, by endpoint",
                unit::latency_seconds(),
            ),
            admission_rejections: registry
                .counter_family(
                    "ccp_server_admission_rejections_total",
                    "Queries rejected with 429 because the admission queue was full",
                )
                .get_or_create(&[]),
            admission_class_rejections: registry.counter_family(
                "ccp_server_admission_class_rejections_total",
                "Queries rejected with 429 because their class hit its queue limit",
            ),
            admission_timeouts: registry
                .counter_family(
                    "ccp_admission_timeouts_total",
                    "Queries dequeued with 503 after waiting past the admission deadline",
                )
                .get_or_create(&[]),
            queue_depth: registry
                .gauge_family(
                    "ccp_server_admission_queue_depth",
                    "Queries waiting in the bounded admission queue",
                )
                .get_or_create(&[]),
            running_queries: registry
                .gauge_family(
                    "ccp_server_running_queries",
                    "Queries currently admitted and executing",
                )
                .get_or_create(&[]),
            resctrl_degraded: registry
                .gauge_family(
                    "ccp_resctrl_degraded",
                    "1 while the resctrl circuit breaker is tripped and the engine runs \
                     unpartitioned (degraded mode), 0 when partitioning is live",
                )
                .get_or_create(&[]),
            resctrl_retries: registry
                .counter_family(
                    "ccp_resctrl_retries_total",
                    "Transient resctrl failures retried by the supervisor",
                )
                .get_or_create(&[]),
            resctrl_op_failures: registry
                .counter_family(
                    "ccp_resctrl_op_failures_total",
                    "resctrl operations that exhausted their retries",
                )
                .get_or_create(&[]),
            resctrl_breaker_trips: registry
                .counter_family(
                    "ccp_resctrl_breaker_trips_total",
                    "Partitioned→Degraded transitions of the resctrl circuit breaker",
                )
                .get_or_create(&[]),
            resctrl_reprobes: registry
                .counter_family(
                    "ccp_resctrl_reprobes_total",
                    "Health probes attempted while degraded",
                )
                .get_or_create(&[]),
            resctrl_restores: registry
                .counter_family(
                    "ccp_resctrl_restores_total",
                    "Degraded→Partitioned transitions (successful re-probes)",
                )
                .get_or_create(&[]),
            control_decisions: registry
                .counter_family(
                    "ccp_control_decisions_total",
                    "Adaptive control ticks evaluated",
                )
                .get_or_create(&[]),
            control_repartitions: registry
                .counter_family(
                    "ccp_control_repartitions_total",
                    "Adaptive mask plans derived and applied",
                )
                .get_or_create(&[]),
            control_holds: registry
                .counter_family(
                    "ccp_control_holds_total",
                    "Control ticks that held the current plan (dwell, threshold, clamp, no data)",
                )
                .get_or_create(&[]),
            control_reverts: registry
                .counter_family(
                    "ccp_control_reverts_total",
                    "Falls back to the static paper plan (degraded health, stale readings, or a \
                     failed apply)",
                )
                .get_or_create(&[]),
            control_mask_ways: registry.gauge_family(
                "ccp_control_mask_ways",
                "LLC ways currently granted to each CUID class by the live mask table",
            ),
        }
    }

    /// Records an accepted connection; pair with
    /// [`connection_closed`](Self::connection_closed).
    pub fn connection_opened(&self) {
        self.connections_total.inc();
        self.active_connections.add(1.0);
    }

    /// Records the end of an accepted connection.
    pub fn connection_closed(&self) {
        self.active_connections.sub(1.0);
    }

    /// Records a connection refused at the cap.
    pub fn connection_refused(&self) {
        self.connections_refused.inc();
    }

    /// Records one handled request.
    pub fn record_request(&self, endpoint: &str, status: u16, latency_secs: f64) {
        self.requests
            .get_or_create(&[("endpoint", endpoint), ("status", &status.to_string())])
            .inc();
        self.request_latency
            .get_or_create(&[("endpoint", endpoint)])
            .observe(latency_secs);
    }

    /// Records an admission-queue overflow (a 429).
    pub fn record_admission_rejection(&self) {
        self.admission_rejections.inc();
    }

    /// Records a per-class queue-limit rejection (also a 429). The
    /// global rejection counter is bumped too, so existing dashboards
    /// keep seeing every 429 in one series.
    pub fn record_class_rejection(&self, class: &str) {
        self.admission_rejections.inc();
        self.admission_class_rejections
            .get_or_create(&[("class", class)])
            .inc();
    }

    /// Per-class queue-limit rejections so far for `class`.
    pub fn class_rejections(&self, class: &str) -> u64 {
        self.admission_class_rejections
            .get_or_create(&[("class", class)])
            .get()
    }

    /// Publishes the admission queue's current occupancy.
    pub fn set_admission_occupancy(&self, queued: usize, running: usize) {
        self.queue_depth.set(queued as f64);
        self.running_queries.set(running as f64);
    }

    /// Records a query dequeued after its admission deadline (a 503).
    pub fn record_admission_timeout(&self) {
        self.admission_timeouts.inc();
    }

    /// Admission rejections so far.
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections.get()
    }

    /// Admission deadline timeouts so far.
    pub fn admission_timeouts(&self) -> u64 {
        self.admission_timeouts.get()
    }

    /// Connections accepted so far.
    pub fn connections_total(&self) -> u64 {
        self.connections_total.get()
    }

    /// Connections currently active.
    pub fn active_connections(&self) -> f64 {
        self.active_connections.get()
    }

    /// Publishes the degraded flag (1 = degraded unpartitioned mode).
    pub fn set_resctrl_degraded(&self, degraded: bool) {
        self.resctrl_degraded.set(if degraded { 1.0 } else { 0.0 });
    }

    /// Current value of the degraded gauge.
    pub fn resctrl_degraded(&self) -> f64 {
        self.resctrl_degraded.get()
    }

    /// Publishes `health`'s monotonic counters into the registry,
    /// adding only what changed since `published` (which is updated).
    pub fn sync_resctrl_health(
        &self,
        health: &ResctrlHealth,
        published: &mut ResctrlHealthPublished,
    ) {
        let (retries, failures) = (health.retries(), health.failures());
        let (trips, reprobes, restores) = (health.trips(), health.reprobes(), health.restores());
        self.resctrl_retries
            .add(retries.saturating_sub(published.retries));
        self.resctrl_op_failures
            .add(failures.saturating_sub(published.failures));
        self.resctrl_breaker_trips
            .add(trips.saturating_sub(published.trips));
        self.resctrl_reprobes
            .add(reprobes.saturating_sub(published.reprobes));
        self.resctrl_restores
            .add(restores.saturating_sub(published.restores));
        *published = ResctrlHealthPublished {
            retries,
            failures,
            trips,
            reprobes,
            restores,
        };
    }

    /// Publishes the controller's monotonic counters, adding only what
    /// changed since `published` (which is updated).
    pub fn sync_control(&self, counters: ControlCounters, published: &mut ControlPublished) {
        let last = published.counters;
        self.control_decisions
            .add(counters.decisions.saturating_sub(last.decisions));
        self.control_repartitions
            .add(counters.repartitions.saturating_sub(last.repartitions));
        self.control_holds
            .add(counters.holds.saturating_sub(last.holds));
        self.control_reverts
            .add(counters.reverts.saturating_sub(last.reverts));
        published.counters = counters;
    }

    /// Publishes one class's live way count.
    pub fn set_control_mask_ways(&self, class: &str, ways: u32) {
        self.control_mask_ways
            .get_or_create(&[("class", class)])
            .set(f64::from(ways));
    }

    /// Adaptive repartitions so far.
    pub fn control_repartitions(&self) -> u64 {
        self.control_repartitions.get()
    }

    /// Control-loop decisions so far.
    pub fn control_decisions(&self) -> u64 {
        self.control_decisions.get()
    }

    /// Control-loop holds so far.
    pub fn control_holds(&self) -> u64 {
        self.control_holds.get()
    }

    /// Control-loop reverts to the static plan so far.
    pub fn control_reverts(&self) -> u64 {
        self.control_reverts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_render_with_endpoint_and_status_labels() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        m.connection_opened();
        m.record_request("/metrics", 200, 0.002);
        m.record_request("/query", 429, 0.0001);
        m.record_admission_rejection();
        m.record_admission_timeout();
        m.set_admission_occupancy(3, 2);
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_server_connections_total 1"));
        assert!(text.contains("ccp_server_active_connections 1.0"));
        assert!(text.contains("ccp_server_requests_total{endpoint=\"/metrics\",status=\"200\"} 1"));
        assert!(text.contains("ccp_server_requests_total{endpoint=\"/query\",status=\"429\"} 1"));
        assert!(text.contains("ccp_server_request_seconds_count{endpoint=\"/query\"} 1"));
        assert!(text.contains("ccp_server_admission_rejections_total 1"));
        assert!(text.contains("ccp_admission_timeouts_total 1"));
        assert!(text.contains("ccp_server_admission_queue_depth 3.0"));
        assert!(text.contains("ccp_server_running_queries 2.0"));
    }

    #[test]
    fn control_counters_delta_sync_and_gauges_render() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        let mut published = ControlPublished::default();
        m.sync_control(
            ControlCounters {
                decisions: 5,
                repartitions: 2,
                holds: 3,
                reverts: 1,
            },
            &mut published,
        );
        // Re-syncing the same snapshot adds nothing; a moved snapshot
        // adds only the delta.
        m.sync_control(
            ControlCounters {
                decisions: 5,
                repartitions: 2,
                holds: 3,
                reverts: 1,
            },
            &mut published,
        );
        m.sync_control(
            ControlCounters {
                decisions: 7,
                repartitions: 3,
                holds: 3,
                reverts: 1,
            },
            &mut published,
        );
        m.set_control_mask_ways("sensitive", 4);
        assert_eq!(m.control_decisions(), 7);
        assert_eq!(m.control_repartitions(), 3);
        assert_eq!(m.control_holds(), 3);
        assert_eq!(m.control_reverts(), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_control_repartitions_total 3"));
        assert!(text.contains("ccp_control_mask_ways{class=\"sensitive\"} 4.0"));
    }

    #[test]
    fn connection_gauge_tracks_open_and_close() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        assert_eq!(m.active_connections(), 1.0);
        assert_eq!(m.connections_total(), 2);
    }
}
