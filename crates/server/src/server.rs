//! The TCP service: accept loop, router, graceful shutdown.
//!
//! One listener thread accepts connections up to a hard cap and hands
//! each to a short-lived handler thread (std-only; no async runtime).
//! Handlers speak strict HTTP/1.1 with keep-alive, route to five
//! endpoints, and account every request in the `ccp_server_*` families:
//!
//! | endpoint | method | body |
//! |---|---|---|
//! | `/metrics` | GET | Prometheus text exposition of the whole registry |
//! | `/healthz` | GET | `{"status":"ok"}` |
//! | `/stats` | GET | JSON snapshot of executor/scheduler/admission state |
//! | `/query` | POST | NDJSON workloads in, NDJSON outcomes out |
//! | `/trace` | GET | Chrome trace-event JSON (`?clear=1` resets the rings) |
//! | `/data/bump` | POST | bumps the data-version epoch, invalidating reuse entries |
//! | `/timeline` | GET | flight-recorder series + events (`?since=seq`, `?series=prefix`) |
//! | `/dashboard` | GET | self-contained HTML/SVG overlay of the timeline |
//! | `/profile` | GET | SIGPROF sampling for `?seconds=N`, collapsed stacks out |
//! | `/version` | GET | build provenance (version, git SHA, profile) |
//!
//! Shutdown is cooperative: a flag flips, a self-connection unblocks
//! `accept`, the admission queue drains, and the handle joins every
//! connection before returning — no `TcpListener` leaks into the next
//! test's port.

use crate::admission::{AdmissionError, AdmissionQueue, ClassQueueLimits, TenantLimits};
use crate::http::{read_request, HttpError, Request, Response};
use crate::json::Json;
use crate::metrics::{ControlPublished, ReconcilePublished, ServerMetrics};
use crate::query::{parse_query, Breakdown, QueryEngine};
use ccp_control::{
    ClassId, ClassReading, ControlConfig, Controller, Decision, MaskPlan, ScriptedTrace, TickInput,
};
use ccp_engine::{
    with_query_ctx, CacheAwareScheduler, CacheUsageClass, JobExecutor, QueryCtx, SchedulerMetrics,
};
use ccp_flight::{FlightHandle, FlightRecorder, RecorderConfig};
use ccp_obs::Registry;
use ccp_resctrl::{
    CacheController, DesiredGroup, GroupState, OccupancyProbe, OccupancySampler, ReadingsHub,
    ReconcileStats, Reconciler, ResctrlMonitor, SimClass, SimulatedMonitor, TenantId,
};
use ccp_trace::TraceCat;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Everything tunable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// OLAP (partitioned) worker threads.
    pub olap_workers: usize,
    /// OLTP (full-cache) worker threads.
    pub oltp_workers: usize,
    /// Queries allowed to run concurrently (scheduler wave slots).
    pub scheduler_slots: usize,
    /// Queries allowed to *wait* for a slot before `429`.
    pub queue_capacity: usize,
    /// Optional per-class waiting caps layered under `queue_capacity`
    /// (`--queue-limit-polluting` etc.); a class at its cap gets `429`
    /// even while the global queue has room.
    pub class_queue_limits: ClassQueueLimits,
    /// Concurrent connections before new ones get `503` and close.
    pub max_connections: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Rows in each resident data set column.
    pub dataset_rows: usize,
    /// Enables the debug `sleep` workload (admission tests).
    pub enable_sleep_workload: bool,
    /// How long a query may wait for an admission slot before it is
    /// dequeued with `503` + `Retry-After`. `None` waits indefinitely.
    pub queue_deadline: Option<Duration>,
    /// Enables the process-global tracer at startup (`/trace` serves its
    /// snapshot either way; with tracing off it is just empty).
    pub trace: bool,
    /// Per-thread trace ring capacity (events retained per thread).
    pub trace_ring_capacity: usize,
    /// How often the background sampler refreshes the per-CUID-class
    /// `ccp_llc_occupancy_bytes` gauges. `None` disables sampling.
    pub monitor_interval: Option<Duration>,
    /// How often the supervision loop syncs resctrl health counters and,
    /// while degraded, re-probes the backend for recovery.
    pub reprobe_interval: Duration,
    /// Backs the engine with an in-memory fake resctrl filesystem under
    /// full supervision (the chaos harness; see
    /// [`QueryEngine::with_fake_resctrl`]).
    pub fake_resctrl: bool,
    /// Enables the closed-loop adaptive controller: occupancy readings
    /// drive online repartitions of the live mask table, clamped back to
    /// the paper's static mapping whenever resctrl health degrades or
    /// readings go stale. Requires `monitor_interval` to be set.
    pub adaptive: bool,
    /// How often the adaptive controller evaluates one tick.
    pub control_interval: Duration,
    /// Replaces the occupancy probe with a deterministic scripted trace
    /// (see [`ScriptedTrace`] for the grammar) — the CI harness for
    /// driving the controller through a chosen scenario.
    pub occupancy_script: Option<String>,
    /// Reuse-cache byte budget in MiB (`--reuse-budget-mb`).
    pub reuse_budget_mb: usize,
    /// Disables the reuse cache entirely (`--no-reuse`): every query
    /// reports `"reuse":"bypass"` and admission never predicts hits.
    pub no_reuse: bool,
    /// Runs the flight recorder (`/timeline`, `/dashboard`); off with
    /// `--no-flight`, e.g. for overhead A/B runs.
    pub flight: bool,
    /// Flight-recorder sampling interval (`--flight-interval-ms`).
    pub flight_interval: Duration,
    /// Per-tenant in-flight admission quotas (`--tenant-quota NAME=N`);
    /// a tenant at its quota gets `429` per request.
    pub tenant_quotas: Vec<(String, usize)>,
    /// Per-tenant grant weights for the weighted-fair admission order
    /// (`--tenant-weight NAME=W`); unlisted tenants weigh 1.
    pub tenant_weights: Vec<(String, u32)>,
    /// With `fake_resctrl`, caps the fake filesystem's CLOSIDs
    /// (`--fake-closids N`) so CLOSID-exhaustion paths are reachable in
    /// chaos runs; `None` keeps the Broadwell default of 16.
    pub fake_closids: Option<u32>,
    /// How often the group reconciler runs a pass
    /// (`--reconcile-interval-ms`).
    pub reconcile_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            olap_workers: 2,
            oltp_workers: 1,
            scheduler_slots: 2,
            queue_capacity: 16,
            class_queue_limits: ClassQueueLimits::default(),
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            dataset_rows: 60_000,
            enable_sleep_workload: false,
            queue_deadline: Some(Duration::from_secs(30)),
            trace: true,
            trace_ring_capacity: 4096,
            monitor_interval: Some(Duration::from_millis(250)),
            reprobe_interval: Duration::from_millis(200),
            fake_resctrl: false,
            adaptive: false,
            control_interval: Duration::from_millis(100),
            occupancy_script: None,
            reuse_budget_mb: 64,
            no_reuse: false,
            flight: true,
            flight_interval: Duration::from_millis(250),
            tenant_quotas: Vec::new(),
            tenant_weights: Vec::new(),
            fake_closids: None,
            reconcile_interval: Duration::from_millis(500),
        }
    }
}

/// Counts live connection-handler threads so shutdown can join them.
struct ConnTracker {
    count: Mutex<usize>,
    zero: Condvar,
}

impl ConnTracker {
    fn new() -> Self {
        ConnTracker {
            count: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    fn try_acquire(&self, cap: usize) -> bool {
        let mut n = self.count.lock().unwrap_or_else(PoisonError::into_inner);
        if *n >= cap {
            return false;
        }
        *n += 1;
        true
    }

    fn release(&self) {
        let mut n = self.count.lock().unwrap_or_else(PoisonError::into_inner);
        *n = n.saturating_sub(1);
        self.zero.notify_all();
    }

    fn wait_zero(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut n = self.count.lock().unwrap_or_else(PoisonError::into_inner);
        while *n > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .zero
                .wait_timeout(n, left)
                .unwrap_or_else(PoisonError::into_inner);
            n = guard;
        }
        true
    }
}

/// Failpoint name: an adaptive repartition's apply step. Arming it
/// (e.g. `control.apply=err@1+1`) makes the control loop treat the
/// repartition as failed, exercising the revert-to-static path.
pub const FAULT_CONTROL_APPLY: &str = "control.apply";

/// Live view of the adaptive controller, published by the control loop
/// for `/stats`.
struct ControlState {
    clamped: AtomicBool,
    last_decision: Mutex<&'static str>,
}

/// Live view of the group reconciler, published each pass by the
/// reconcile loop for `/stats`.
struct ReconcileView {
    stats: Arc<ReconcileStats>,
    /// Per-group state snapshot after the latest pass
    /// (`ccp-<tenant>-<class>` → state label).
    states: Mutex<Vec<(String, &'static str)>>,
}

/// The `/stats` label for a reconciler group state.
fn group_state_label(state: GroupState) -> &'static str {
    match state {
        GroupState::Pending => "pending",
        GroupState::Satisfied => "satisfied",
        GroupState::Fallback => "fallback",
        GroupState::Failed => "failed",
    }
}

struct Shared {
    config: ServerConfig,
    registry: Registry,
    metrics: ServerMetrics,
    admission: Arc<AdmissionQueue>,
    engine: QueryEngine,
    shutdown: AtomicBool,
    conns: ConnTracker,
    started: Instant,
    /// Background occupancy sampler, if enabled; taken (and stopped) once
    /// at shutdown.
    sampler: Mutex<Option<OccupancySampler>>,
    /// Adaptive-control view for `/stats`; `None` in static mode.
    control: Option<Arc<ControlState>>,
    /// Flight-recorder handle for `/timeline`, `/dashboard` and event
    /// emission; `None` with `--no-flight`.
    flight: Option<FlightHandle>,
    /// Reconciler view for `/stats`; `None` when the resctrl backend has
    /// no supervised controller (noop allocator).
    reconcile: Option<Arc<ReconcileView>>,
}

/// Emits a flight-recorder event when the recorder is running.
fn emit_event(shared: &Shared, kind: &'static str, detail: String) {
    if let Some(flight) = &shared.flight {
        flight.emit(kind, detail);
    }
}

/// Stop handle for the background resctrl supervision thread: the loop
/// that publishes [`ResctrlHealth`](ccp_resctrl::ResctrlHealth) counter
/// deltas, flips the engine between partitioned and degraded
/// unpartitioned mode when the circuit breaker trips, and re-probes the
/// backend while degraded.
struct SupervisorHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SupervisorHandle {
    /// Stops the supervision thread promptly (no waiting out the
    /// interval) and joins it. Idempotent.
    fn stop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A running server; dropping it shuts the service down gracefully.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    supervise: Option<SupervisorHandle>,
    control: Option<SupervisorHandle>,
    reconcile: Option<SupervisorHandle>,
    recorder: Option<FlightRecorder>,
}

impl Server {
    /// Binds, builds the engine and registry, and starts serving.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        if config.trace {
            ccp_trace::enable(ccp_trace::TraceConfig {
                ring_capacity: config.trace_ring_capacity,
                ..ccp_trace::TraceConfig::default()
            });
        }
        let registry = Registry::new();
        register_build_info(&registry);
        let mut engine = if let Some(closids) = config.fake_closids {
            QueryEngine::with_fake_resctrl_closids(
                config.olap_workers,
                config.oltp_workers,
                config.dataset_rows,
                closids,
            )
        } else if config.fake_resctrl {
            QueryEngine::with_fake_resctrl(
                config.olap_workers,
                config.oltp_workers,
                config.dataset_rows,
            )
        } else {
            QueryEngine::new(
                config.olap_workers,
                config.oltp_workers,
                config.dataset_rows,
            )
        };
        engine.configure_reuse((!config.no_reuse).then(|| {
            ccp_reuse::ReuseCache::new(ccp_reuse::ReuseConfig::with_budget(
                (config.reuse_budget_mb as u64) << 20,
            ))
        }));
        if let Some(cache) = engine.reuse_cache() {
            cache.register_into(&registry);
        }
        engine.pools().register_metrics(&registry);
        let metrics = ServerMetrics::new(&registry);
        let sched_metrics = SchedulerMetrics::new();
        sched_metrics.register_into(&registry);
        let scheduler = CacheAwareScheduler::new(engine.policy(), config.scheduler_slots);
        let mut tenant_limits = TenantLimits::new();
        for (tenant, quota) in &config.tenant_quotas {
            tenant_limits = tenant_limits.with_quota(tenant, *quota);
        }
        for (tenant, weight) in &config.tenant_weights {
            tenant_limits = tenant_limits.with_weight(tenant, *weight);
        }
        let admission = Arc::new(
            AdmissionQueue::new(
                scheduler,
                config.queue_capacity,
                sched_metrics,
                metrics.clone(),
            )
            .with_class_limits(config.class_queue_limits)
            .with_tenant_limits(tenant_limits),
        );

        // Adaptive control needs the sampler's readings delivered as a
        // sequenced stream, not just gauge updates: the hub's sequence
        // number is how the controller detects stale data.
        let hub = (config.adaptive && config.monitor_interval.is_some())
            .then(|| Arc::new(ReadingsHub::new()));
        let sampler = match config.monitor_interval {
            Some(interval) => {
                let probe: Box<dyn OccupancyProbe> = match &config.occupancy_script {
                    Some(spec) => Box::new(
                        ScriptedTrace::parse(spec, engine.policy().llc.size_bytes).map_err(
                            |why| std::io::Error::new(std::io::ErrorKind::InvalidInput, why),
                        )?,
                    ),
                    None => occupancy_probe(&engine, &admission),
                };
                OccupancySampler::start_with_hub(probe, &registry, interval, hub.clone()).ok()
            }
            None => None,
        };
        let control_state = hub.as_ref().map(|_| {
            Arc::new(ControlState {
                clamped: AtomicBool::new(false),
                last_decision: Mutex::new("none"),
            })
        });

        // The recorder snapshots the registry *after* every family above
        // is registered, so the first tick already carries the full set.
        let recorder = if config.flight {
            Some(FlightRecorder::spawn(
                &registry,
                RecorderConfig {
                    interval: config.flight_interval,
                    ..RecorderConfig::default()
                },
            )?)
        } else {
            None
        };

        // The group reconciler: owns every `ccp-<tenant>-<class>` group on
        // the resctrl tree the engine allocates from. The startup sweep
        // runs synchronously — before the engine's allocator lazily mints
        // its own mask groups — so a crashed predecessor's leftovers are
        // gone by the time the first query binds.
        let reconciler = match engine.reconcile_controller() {
            Some(ctl) => {
                let mut reconciler = Reconciler::new(ctl, vec![0]);
                reconciler.set_desired(desired_tenant_groups(&config, &engine)?);
                if let Err(err) = reconciler.startup_sweep() {
                    eprintln!("ccp-serve: startup sweep failed (continuing): {err}");
                }
                Some(reconciler)
            }
            None => None,
        };
        let reconcile_view = reconciler.as_ref().map(|r| {
            Arc::new(ReconcileView {
                stats: r.stats(),
                states: Mutex::new(Vec::new()),
            })
        });

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            registry,
            metrics,
            admission,
            engine,
            shutdown: AtomicBool::new(false),
            conns: ConnTracker::new(),
            started: Instant::now(),
            sampler: Mutex::new(sampler),
            control: control_state,
            flight: recorder.as_ref().map(FlightRecorder::handle),
            reconcile: reconcile_view,
        });
        let reconcile = match (reconciler, shared.reconcile.as_ref()) {
            (Some(mut reconciler), Some(view)) => {
                let stop = Arc::new((Mutex::new(false), Condvar::new()));
                let loop_shared = Arc::clone(&shared);
                let loop_view = Arc::clone(view);
                let loop_stop = Arc::clone(&stop);
                let thread = std::thread::Builder::new()
                    .name("ccp-reconcile".to_string())
                    .spawn(move || {
                        ccp_flight::register_current_thread();
                        reconcile_loop(&loop_shared, &mut reconciler, &loop_view, &loop_stop)
                    })?;
                Some(SupervisorHandle {
                    stop,
                    thread: Some(thread),
                })
            }
            _ => None,
        };
        let supervise = match shared.engine.resctrl_health() {
            Some(health) => {
                let stop = Arc::new((Mutex::new(false), Condvar::new()));
                let loop_shared = Arc::clone(&shared);
                let loop_stop = Arc::clone(&stop);
                let thread = std::thread::Builder::new()
                    .name("ccp-supervise".to_string())
                    .spawn(move || {
                        ccp_flight::register_current_thread();
                        supervision_loop(&loop_shared, &health, &loop_stop)
                    })?;
                Some(SupervisorHandle {
                    stop,
                    thread: Some(thread),
                })
            }
            None => None,
        };
        let control = match (hub, shared.control.as_ref()) {
            (Some(hub), Some(state)) => {
                let stop = Arc::new((Mutex::new(false), Condvar::new()));
                let loop_shared = Arc::clone(&shared);
                let loop_state = Arc::clone(state);
                let loop_stop = Arc::clone(&stop);
                let thread = std::thread::Builder::new()
                    .name("ccp-control".to_string())
                    .spawn(move || {
                        ccp_flight::register_current_thread();
                        control_loop(&loop_shared, &hub, &loop_state, &loop_stop)
                    })?;
                Some(SupervisorHandle {
                    stop,
                    thread: Some(thread),
                })
            }
            _ => None,
        };
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ccp-accept".to_string())
            .spawn(move || {
                ccp_flight::register_current_thread();
                accept_loop(listener, accept_shared)
            })?;
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            supervise,
            control,
            reconcile,
            recorder,
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scrape registry (shares state with the live instruments).
    pub fn registry(&self) -> Registry {
        self.shared.registry.clone()
    }

    /// Whether way masks reach real CAT hardware.
    pub fn cat_live(&self) -> bool {
        self.shared.engine.cat_live()
    }

    /// Whether something (a signal, `Server::shutdown`) asked the server
    /// to stop.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful stop and blocks until the listener has exited,
    /// the admission queue has drained and every connection handler has
    /// finished (bounded by the connection timeouts).
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The control loop consumes the sampler's hub and writes the live
        // mask table; stop it before the sampler and the supervisor so no
        // repartition races the teardown.
        if let Some(mut control) = self.control.take() {
            control.stop();
        }
        if let Some(mut supervise) = self.supervise.take() {
            supervise.stop();
        }
        if let Some(mut sampler) = self
            .shared
            .sampler
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            sampler.stop();
        }
        // Recorder last among the background samplers, so the loops'
        // final events still land in the timeline before it stops.
        if let Some(mut recorder) = self.recorder.take() {
            recorder.stop();
        }
        self.shared.admission.shutdown();
        // The accept loop blocks in `accept`; a throwaway self-connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let grace = self.shared.config.read_timeout + Duration::from_secs(2);
        self.shared.admission.drain(grace);
        self.shared.conns.wait_zero(grace);
        // The reconciler goes last: its shutdown sweep must run after the
        // drain, when no query can mint or bind a group any more, so it
        // can leave the resctrl tree with zero `ccp-` groups.
        if let Some(mut reconcile) = self.reconcile.take() {
            reconcile.stop();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the cache-occupancy probe for the background sampler.
///
/// With live CAT hardware the probe reads real CMT counters from the
/// control groups the engine's allocator materializes (one `ccp-<mask>`
/// group per distinct way mask, so each CUID class maps to the group of
/// its policy mask). Everywhere else — containers, CI, non-Intel hosts —
/// a [`SimulatedMonitor`] stands in, driven by how many queries of each
/// class currently hold an admission permit.
fn occupancy_probe(
    engine: &QueryEngine,
    admission: &Arc<AdmissionQueue>,
) -> Box<dyn OccupancyProbe> {
    let policy = engine.policy();
    let classes = [
        ("polluting", policy.mask_for(CacheUsageClass::Polluting)),
        ("sensitive", policy.mask_for(CacheUsageClass::Sensitive)),
        (
            // The mixed class in its cache-sensitive regime (hot structure
            // comparable to the LLC) — the mask the paper's 60% rule picks.
            "mixed",
            policy.mask_for(CacheUsageClass::Mixed {
                hot_bytes: policy.llc.size_bytes,
            }),
        ),
    ];
    if engine.cat_live() {
        if let Ok(ctl) = CacheController::open() {
            let groups = classes
                .iter()
                .map(|(label, mask)| ((*label).to_string(), format!("ccp-{:x}", mask.bits())))
                .collect();
            return Box::new(ResctrlMonitor::new(ctl, groups, 0));
        }
    }
    let ways = f64::from(policy.llc.ways);
    let sim_classes = classes
        .iter()
        .map(|(label, mask)| SimClass {
            label: (*label).to_string(),
            llc_share: f64::from(mask.way_count()) / ways,
        })
        .collect();
    let admission = Arc::clone(admission);
    Box::new(SimulatedMonitor::new(
        policy.llc.size_bytes,
        sim_classes,
        Box::new(move || {
            admission
                .running_by_class()
                .into_iter()
                .map(|(label, n)| (label.to_string(), n as f64))
                .collect()
        }),
    ))
}

/// The resctrl supervision loop (one thread, started only when the
/// engine's allocator exposes a health handle).
///
/// Every `reprobe_interval` it publishes the supervisor's monotonic
/// counters into the registry (delta-synced, so the Prometheus series
/// stay monotonic) and compares the breaker state with what the engine
/// currently runs in. On a Partitioned→Degraded flip it stops the
/// executor from binding way masks ([`set_partitioning(false)`]
/// — queries keep running under the full cache), raises the
/// `ccp_resctrl_degraded` gauge and drops a `resctrl_degraded` trace
/// instant; while degraded it re-probes the backend each tick and flips
/// everything back the moment a probe's *real* schemata write succeeds.
///
/// [`set_partitioning(false)`]: ccp_engine::DualPoolExecutor::set_partitioning
fn supervision_loop(
    shared: &Shared,
    health: &ccp_resctrl::ResctrlHealth,
    stop: &(Mutex<bool>, Condvar),
) {
    let mut published = crate::metrics::ResctrlHealthPublished::default();
    let mut degraded_seen = false;
    let mut trips_seen = health.trips();
    shared.metrics.set_resctrl_degraded(false);
    loop {
        shared.metrics.sync_resctrl_health(health, &mut published);
        let trips = health.trips();
        if trips != trips_seen {
            emit_event(
                shared,
                "breaker_trip",
                format!("circuit breaker trips: {trips_seen} -> {trips}"),
            );
            trips_seen = trips;
        }
        let degraded = health.is_degraded();
        if degraded != degraded_seen {
            degraded_seen = degraded;
            shared.metrics.set_resctrl_degraded(degraded);
            // Partitioning is an optimization, never a gate: degraded
            // mode just runs every query under the full cache.
            shared.engine.pools().set_partitioning(!degraded);
            ccp_trace::instant(
                TraceCat::Bind,
                if degraded {
                    "resctrl_degraded"
                } else {
                    "resctrl_restored"
                },
            );
            if degraded {
                emit_event(
                    shared,
                    "degraded",
                    "resctrl breaker open; partitioning off".into(),
                );
            } else {
                emit_event(
                    shared,
                    "restored",
                    "resctrl healed; partitioning back on".into(),
                );
            }
        }
        if degraded && shared.engine.reprobe_resctrl() {
            // Healed: loop straight back so the restore (gauge, trace,
            // re-enabled partitioning) lands without waiting a tick.
            continue;
        }
        let (lock, cv) = stop;
        let stopped = lock.lock().unwrap_or_else(PoisonError::into_inner);
        if *stopped {
            break;
        }
        let (stopped, _) = cv
            .wait_timeout(stopped, shared.config.reprobe_interval)
            .unwrap_or_else(PoisonError::into_inner);
        if *stopped {
            break;
        }
    }
    // Final sync so counters recorded after the last tick (e.g. during
    // shutdown's drain) still reach the registry.
    shared.metrics.sync_resctrl_health(health, &mut published);
}

/// The reconciler's desired set: one `ccp-<tenant>-<class>` group per
/// (configured tenant ∪ default) × CUID class, programmed with the
/// paper's static class masks. Invalid tenant names in the config are a
/// startup error, not a silent skip.
fn desired_tenant_groups(
    config: &ServerConfig,
    engine: &QueryEngine,
) -> std::io::Result<Vec<DesiredGroup>> {
    let policy = engine.policy();
    let class_masks = [
        ("polluting", policy.mask_for(CacheUsageClass::Polluting)),
        ("sensitive", policy.mask_for(CacheUsageClass::Sensitive)),
        (
            "mixed",
            policy.mask_for(CacheUsageClass::Mixed {
                hot_bytes: policy.llc.size_bytes,
            }),
        ),
    ];
    let mut names: Vec<&str> = vec![ccp_resctrl::DEFAULT_TENANT];
    for name in config
        .tenant_quotas
        .iter()
        .map(|(t, _)| t.as_str())
        .chain(config.tenant_weights.iter().map(|(t, _)| t.as_str()))
    {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    let mut desired = Vec::with_capacity(names.len() * class_masks.len());
    for name in names {
        let tenant = TenantId::parse(name).map_err(|why| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("--tenant: {why}"))
        })?;
        for (class, mask) in &class_masks {
            desired.push(DesiredGroup {
                name: tenant.group_name(class),
                mask: *mask,
            });
        }
    }
    Ok(desired)
}

/// The group-reconciler loop (one thread, started whenever the engine's
/// resctrl backend is supervised).
///
/// Every `reconcile_interval` it runs one [`Reconciler::reconcile`]
/// pass — orphan sweep, desired-vs-actual diff, capacity-aware creation
/// with backoff — publishes the pass's counters into the registry
/// (delta-synced) and the per-group states into the `/stats` view, and
/// drops flight-recorder events on the interesting transitions:
/// `reconciled` when groups were created, `tenant_degraded` when CLOSID
/// exhaustion pushed tenants onto the shared class masks. After the stop
/// flag it runs the shutdown sweep; the final log line is what the smoke
/// harness greps to prove zero `ccp-` groups leaked.
fn reconcile_loop(
    shared: &Shared,
    reconciler: &mut Reconciler,
    view: &ReconcileView,
    stop: &(Mutex<bool>, Condvar),
) {
    let mut published = ReconcilePublished::default();
    let mut was_exhausted = false;
    loop {
        let outcome = reconciler.reconcile();
        let stats = reconciler.stats();
        shared.metrics.sync_reconcile(&stats, &mut published);
        {
            let mut states = view.states.lock().unwrap_or_else(PoisonError::into_inner);
            *states = reconciler
                .group_states()
                .into_iter()
                .map(|(name, state)| (name, group_state_label(state)))
                .collect();
            states.sort();
        }
        if outcome.created > 0 {
            emit_event(
                shared,
                "reconciled",
                format!(
                    "created {} tenant group(s); {} fallback, {} failed",
                    outcome.created, outcome.fallback, outcome.failed
                ),
            );
        }
        let exhausted = stats.is_exhausted();
        if exhausted != was_exhausted {
            was_exhausted = exhausted;
            if exhausted {
                emit_event(
                    shared,
                    "tenant_degraded",
                    format!(
                        "CLOSIDs exhausted; {} tenant group(s) on shared class masks",
                        outcome.fallback
                    ),
                );
            } else {
                emit_event(
                    shared,
                    "reconciled",
                    "CLOSID capacity recovered; dedicated tenant groups restored".into(),
                );
            }
        }
        let (lock, cv) = stop;
        let stopped = lock.lock().unwrap_or_else(PoisonError::into_inner);
        if *stopped {
            break;
        }
        let (stopped, _) = cv
            .wait_timeout(stopped, shared.config.reconcile_interval)
            .unwrap_or_else(PoisonError::into_inner);
        if *stopped {
            break;
        }
    }
    let (removed, remaining) = reconciler.shutdown_sweep();
    shared
        .metrics
        .sync_reconcile(&reconciler.stats(), &mut published);
    eprintln!(
        "ccp-serve: reconcile shutdown sweep: removed {removed} group(s), \
         {remaining} ccp- group(s) remain"
    );
}

/// The static paper plan the controller clamps to: the polluter mask,
/// the mixed-in-sensitive-regime mask, and the full sensitive mask.
fn static_mask_plan(engine: &QueryEngine) -> MaskPlan {
    let policy = engine.policy();
    MaskPlan::new(
        policy.mask_for(CacheUsageClass::Polluting),
        policy.mask_for(CacheUsageClass::Mixed {
            hot_bytes: policy.llc.size_bytes,
        }),
        policy.mask_for(CacheUsageClass::Sensitive),
    )
}

/// Human-readable way-count summary of a mask plan, for event details.
fn plan_detail(plan: &MaskPlan) -> String {
    format!(
        "ways polluting={} mixed={} sensitive={}",
        plan.polluting.way_count(),
        plan.mixed.way_count(),
        plan.sensitive.way_count()
    )
}

/// Applies a repartition to the resctrl backend: pre-creates (or
/// re-asserts) the group for each class mask so the schemata writes
/// happen here, on the control path — a failure leaves the live table
/// untouched and turns into a revert, never a broken bind.
fn apply_plan(shared: &Shared, plan: &MaskPlan) -> Result<(), ()> {
    if ccp_fault::should_fail(FAULT_CONTROL_APPLY) {
        return Err(());
    }
    for mask in [plan.polluting, plan.mixed, plan.sensitive] {
        shared.engine.prepare_mask(mask).map_err(|_| ())?;
    }
    Ok(())
}

/// The adaptive control loop (one thread, started only with
/// `--adaptive` and an active monitor).
///
/// Every `control_interval` it snapshots the sampler's latest readings,
/// feeds them (plus the supervisor's degraded flag) to the
/// [`Controller`], and acts on the decision: a repartition is applied to
/// the resctrl backend first and published to the live mask table only
/// on success — workers observe it on their next bind; a revert
/// republishes the static plan. Counters, per-class way-count gauges and
/// the `/stats` view are refreshed every tick.
fn control_loop(
    shared: &Shared,
    hub: &ReadingsHub,
    state: &ControlState,
    stop: &(Mutex<bool>, Condvar),
) {
    let policy = shared.engine.policy();
    let control_ms = shared.config.control_interval.as_millis().max(1) as u64;
    let monitor_ms = shared
        .config
        .monitor_interval
        .map_or(control_ms, |d| d.as_millis().max(1) as u64);
    let cfg = ControlConfig::paper_default(policy.llc.ways, policy.llc.size_bytes)
        .with_intervals(control_ms, monitor_ms);
    let mut controller = Controller::new(cfg, static_mask_plan(&shared.engine));
    let mut published = ControlPublished::default();
    let live = shared.engine.live_masks();
    let mut last_emitted = "";
    loop {
        let (seq, samples) = hub.snapshot();
        let readings: Vec<ClassReading> = samples
            .iter()
            .filter_map(|s| {
                ClassId::from_label(&s.class).map(|class| ClassReading {
                    class,
                    occupancy_bytes: s.llc_occupancy_bytes,
                    mbm_total_bytes: s.mbm_total_bytes,
                })
            })
            .collect();
        let degraded = shared
            .engine
            .resctrl_health()
            .is_some_and(|h| h.is_degraded());
        let decision = controller.tick(&TickInput {
            seq,
            readings: &readings,
            degraded,
        });
        match decision {
            Decision::Repartition(plan) => {
                if apply_plan(shared, &plan).is_ok() {
                    live.set_masks(plan.polluting, plan.mixed, plan.sensitive);
                    ccp_trace::instant(TraceCat::Bind, "control_repartition");
                    emit_event(shared, "repartition", plan_detail(&plan));
                } else {
                    let fallback = controller.note_apply_failed();
                    live.set_masks(fallback.polluting, fallback.mixed, fallback.sensitive);
                    ccp_trace::instant(TraceCat::Bind, "control_revert");
                    emit_event(
                        shared,
                        "revert",
                        format!("apply failed; back to {}", plan_detail(&fallback)),
                    );
                }
                last_emitted = "repartition";
            }
            Decision::Revert { plan, .. } => {
                live.set_masks(plan.polluting, plan.mixed, plan.sensitive);
                ccp_trace::instant(TraceCat::Bind, "control_revert");
                emit_event(shared, "revert", plan_detail(&plan));
                last_emitted = "revert";
            }
            Decision::Hold(_) => {
                // One event per run of holds, not one per tick: the
                // interesting moment is the *transition* to holding.
                if last_emitted != "hold" {
                    emit_event(shared, "hold", "controller holding current plan".into());
                    last_emitted = "hold";
                }
            }
        }
        shared
            .metrics
            .sync_control(controller.counters(), &mut published);
        for (class, ways) in controller.current_plan().way_counts() {
            shared.metrics.set_control_mask_ways(class.label(), ways);
        }
        // ORDERING: a point-in-time flag for `/stats`; no ordering needed.
        state
            .clamped
            .store(controller.is_clamped(), Ordering::Relaxed);
        *state
            .last_decision
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = controller.last_decision();
        let (lock, cv) = stop;
        let stopped = lock.lock().unwrap_or_else(PoisonError::into_inner);
        if *stopped {
            break;
        }
        let (stopped, _) = cv
            .wait_timeout(stopped, shared.config.control_interval)
            .unwrap_or_else(PoisonError::into_inner);
        if *stopped {
            break;
        }
    }
    // Leave the table on the static mapping so a restart (or the
    // remaining drain) runs the paper's well-understood configuration.
    live.reset_to(&policy);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if !shared.conns.try_acquire(shared.config.max_connections) {
            shared.metrics.connection_refused();
            let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
            let mut s = stream;
            let _ = Response::json(
                503,
                &Json::obj(vec![("error", Json::str("connection limit reached"))]),
            )
            .closing()
            .write_to(&mut s);
            continue;
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("ccp-conn".to_string())
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                conn_shared.conns.release();
            });
        if spawned.is_err() {
            shared.conns.release();
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.metrics.connection_opened();
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    // Responses are small; without TCP_NODELAY, Nagle against the
    // client's delayed ACK costs ~40ms per keep-alive round trip.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        shared.metrics.connection_closed();
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(req)) => {
                let started = Instant::now();
                let request_span = ccp_trace::span(TraceCat::Server, req.path());
                let (endpoint, mut resp) = route(shared, &req);
                drop(request_span);
                let close =
                    resp.close || req.wants_close() || shared.shutdown.load(Ordering::SeqCst);
                if close {
                    resp = resp.closing();
                }
                let status = resp.status;
                let write_ok = resp.write_to(&mut writer).is_ok();
                shared
                    .metrics
                    .record_request(endpoint, status, started.elapsed().as_secs_f64());
                if close || !write_ok {
                    break;
                }
            }
            Err(HttpError::Malformed(why)) => {
                respond_error(shared, &mut writer, 400, why);
                break;
            }
            Err(HttpError::TooLarge(why)) => {
                respond_error(shared, &mut writer, 413, why);
                break;
            }
            Err(HttpError::Io(_)) => break,
        }
    }
    shared.metrics.connection_closed();
}

fn respond_error(shared: &Shared, writer: &mut TcpStream, status: u16, why: &str) {
    let started = Instant::now();
    let body = Json::obj(vec![("error", Json::str(why))]);
    let _ = Response::json(status, &body).closing().write_to(writer);
    shared
        .metrics
        .record_request("invalid", status, started.elapsed().as_secs_f64());
}

/// Routes one request; returns the endpoint label used for metrics.
fn route(shared: &Shared, req: &Request) -> (&'static str, Response) {
    match (req.method.as_str(), req.path()) {
        ("GET", "/metrics") => (
            "/metrics",
            Response::prometheus(shared.registry.render_prometheus()),
        ),
        ("GET", "/healthz") => (
            "/healthz",
            Response::json(200, &Json::obj(vec![("status", Json::str("ok"))])),
        ),
        ("GET", "/stats") => ("/stats", Response::json(200, &stats_json(shared))),
        ("GET", "/trace") => ("/trace", handle_trace(req)),
        ("GET", "/timeline") => ("/timeline", handle_timeline(shared, req)),
        ("GET", "/dashboard") => ("/dashboard", handle_dashboard(shared)),
        ("GET", "/profile") => ("/profile", handle_profile(req)),
        ("GET", "/version") => ("/version", Response::json(200, &build_info_json())),
        ("POST", "/query") => ("/query", handle_query(shared, req)),
        ("POST", "/data/bump") => ("/data/bump", handle_data_bump(shared)),
        ("GET" | "HEAD", _) => ("other", not_found()),
        (
            _,
            "/metrics" | "/healthz" | "/stats" | "/query" | "/trace" | "/data/bump" | "/timeline"
            | "/dashboard" | "/profile" | "/version",
        ) => (
            "other",
            Response::json(
                405,
                &Json::obj(vec![("error", Json::str("method not allowed"))]),
            ),
        ),
        _ => ("other", not_found()),
    }
}

/// `true` when the request's query string sets `name=1` or `name=true`.
fn query_flag(req: &Request, name: &str) -> bool {
    query_param(req, name).is_some_and(|v| v == "1" || v == "true")
}

/// The last `name=value` pair in the request's query string, if any.
fn query_param<'r>(req: &'r Request, name: &str) -> Option<&'r str> {
    let (_, qs) = req.target.split_once('?')?;
    qs.split('&')
        .filter_map(|pair| pair.split_once('='))
        .filter(|(k, _)| *k == name)
        .map(|(_, v)| v)
        .next_back()
}

/// Serves the tracer's Chrome trace-event snapshot. `?clear=1` hides
/// exactly the records the snapshot observed — spans recorded while the
/// scrape was running stay for the next one — so a scrape-then-clear
/// loop sees each span exactly once. `?ticket=N` narrows the snapshot
/// to one query's spans (the ticket `/query` returned); combining it
/// with `clear=1` still clears the whole observed window, because the
/// snapshot is taken before the filter is applied.
fn handle_trace(req: &Request) -> Response {
    let ticket = match query_param(req, "ticket") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                return Response::json(
                    400,
                    &Json::obj(vec![(
                        "error",
                        Json::str("ticket must be an unsigned integer"),
                    )]),
                );
            }
        },
        None => None,
    };
    let snap = if query_flag(req, "clear") {
        ccp_trace::snapshot_and_clear()
    } else {
        ccp_trace::snapshot()
    };
    let snap = match ticket {
        Some(id) => snap.filter_query(id),
        None => snap,
    };
    Response::json_text(200, snap.to_chrome_json())
}

/// Version string baked in at compile time.
const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");
/// Short git SHA captured by `build.rs` ("unknown" outside a checkout).
const BUILD_GIT_SHA: &str = env!("CCP_GIT_SHA");
/// Cargo profile the binary was built under.
const BUILD_PROFILE: &str = env!("CCP_BUILD_PROFILE");

/// Registers the `ccp_build_info` gauge: constant 1 with the build
/// provenance in the labels, the Prometheus idiom for metadata.
fn register_build_info(registry: &Registry) {
    registry
        .gauge_family(
            "ccp_build_info",
            "Build provenance; the value is always 1, the labels carry version, git SHA and \
             cargo profile",
        )
        .get_or_create(&[
            ("version", BUILD_VERSION),
            ("git_sha", BUILD_GIT_SHA),
            ("profile", BUILD_PROFILE),
        ])
        .set(1.0);
}

/// `GET /version` body; bench reports embed it so every number is
/// traceable to the build that produced it.
fn build_info_json() -> Json {
    Json::obj(vec![
        ("version", Json::str(BUILD_VERSION)),
        ("git_sha", Json::str(BUILD_GIT_SHA)),
        ("profile", Json::str(BUILD_PROFILE)),
    ])
}

/// `GET /timeline`: the flight recorder's retained series and events.
/// `?since=seq` returns only points/events newer than `seq` (incremental
/// pulls); `?series=prefix` filters series by name prefix.
fn handle_timeline(shared: &Shared, req: &Request) -> Response {
    let Some(flight) = &shared.flight else {
        return Response::json(
            404,
            &Json::obj(vec![(
                "error",
                Json::str("flight recorder disabled (--no-flight)"),
            )]),
        );
    };
    let since = match query_param(req, "since") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                return Response::json(
                    400,
                    &Json::obj(vec![(
                        "error",
                        Json::str("since must be an unsigned integer"),
                    )]),
                );
            }
        },
        None => 0,
    };
    let timeline = flight.timeline(since, query_param(req, "series"));
    Response::json(200, &timeline_json(&timeline))
}

fn timeline_json(tl: &ccp_flight::Timeline) -> Json {
    let series = Json::Obj(
        tl.series
            .iter()
            .map(|(name, pts)| {
                (
                    name.clone(),
                    Json::Arr(
                        pts.iter()
                            .map(|&(seq, v)| Json::Arr(vec![Json::num(seq as f64), Json::num(v)]))
                            .collect(),
                    ),
                )
            })
            .collect(),
    );
    let events = Json::Arr(
        tl.events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("seq", Json::num(e.seq as f64)),
                    ("t_ms", Json::num(e.t_ms as f64)),
                    ("kind", Json::str(e.kind)),
                    ("detail", Json::str(&e.detail)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("tick", Json::num(tl.tick as f64)),
        ("interval_ms", Json::num(tl.interval_ms as f64)),
        ("now_ms", Json::num(tl.now_ms as f64)),
        ("started_unix_ms", Json::num(tl.started_unix_ms as f64)),
        ("dropped_series", Json::num(tl.dropped_series as f64)),
        ("dropped_events", Json::num(tl.dropped_events as f64)),
        ("events", events),
        ("series", series),
    ])
}

/// `GET /dashboard`: the timeline rendered as one self-contained HTML
/// page (inline SVG, zero external assets — it must work from an
/// air-gapped artifact store).
fn handle_dashboard(shared: &Shared) -> Response {
    let Some(flight) = &shared.flight else {
        return Response::json(
            404,
            &Json::obj(vec![(
                "error",
                Json::str("flight recorder disabled (--no-flight)"),
            )]),
        );
    };
    let timeline = flight.timeline(0, None);
    Response::html(200, crate::dashboard::render(&timeline))
}

/// `GET /profile?seconds=N` (default 2, cap 30): runs one SIGPROF
/// sampling window over every registered thread and returns collapsed
/// stacks (`thread;root;…;leaf count`), ready for `flamegraph.pl`.
/// Concurrent sessions get `409`.
fn handle_profile(req: &Request) -> Response {
    let seconds = match query_param(req, "seconds") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) if (1..=30).contains(&n) => n,
            _ => {
                return Response::json(
                    400,
                    &Json::obj(vec![(
                        "error",
                        Json::str("seconds must be an integer in 1..=30"),
                    )]),
                );
            }
        },
        None => 2,
    };
    match ccp_flight::profile(Duration::from_secs(seconds)) {
        Ok(report) => Response::text(200, report.collapsed),
        Err(ccp_flight::ProfileError::Busy) => Response::json(
            409,
            &Json::obj(vec![(
                "error",
                Json::str("a profiling session is already running"),
            )]),
        ),
        Err(err) => Response::json(500, &Json::obj(vec![("error", Json::str(err.to_string()))])),
    }
}

fn not_found() -> Response {
    let endpoints = Json::Arr(
        [
            "/metrics",
            "/healthz",
            "/stats",
            "/query",
            "/trace",
            "/data/bump",
            "/timeline",
            "/dashboard",
            "/profile",
            "/version",
        ]
        .iter()
        .map(|e| Json::str(*e))
        .collect(),
    );
    Response::json(
        404,
        &Json::obj(vec![
            ("error", Json::str("not found")),
            ("endpoints", endpoints),
        ]),
    )
}

/// `POST /data/bump`: advances the data-version epoch, so every cached
/// artifact built against the old version is (lazily) invalidated. This
/// is the server's stand-in for a data modification — the moment the
/// resident columns would change, memoized results must stop matching.
fn handle_data_bump(shared: &Shared) -> Response {
    match shared.engine.reuse_cache() {
        Some(cache) => {
            let version = cache.bump_version();
            emit_event(shared, "epoch_bump", format!("data version -> {version}"));
            Response::json(
                200,
                &Json::obj(vec![
                    ("status", Json::str("ok")),
                    ("data_version", Json::num(version as f64)),
                ]),
            )
        }
        None => Response::json(
            409,
            &Json::obj(vec![("error", Json::str("reuse cache disabled"))]),
        ),
    }
}

/// Executes the NDJSON query body line by line.
///
/// The *first* line's admission failure turns into the response status
/// (`429` queue full / `503` draining) so callers and load balancers see
/// backpressure; failures on later lines become error objects inside the
/// 200 NDJSON stream, since the status line has already been decided.
///
/// The `X-CCP-Tenant` header names the tenant the request is admitted
/// as; absent means the default tenant, a malformed name is a `400`.
fn handle_query(shared: &Shared, req: &Request) -> Response {
    let tenant = match req.header("x-ccp-tenant") {
        None => ccp_resctrl::TenantId::default_tenant(),
        Some(raw) => match ccp_resctrl::TenantId::parse(raw) {
            Ok(t) => t,
            Err(why) => {
                return Response::json(
                    400,
                    &Json::obj(vec![(
                        "error",
                        Json::str(format!("bad X-CCP-Tenant: {why}")),
                    )]),
                )
            }
        },
    };
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::json(
            400,
            &Json::obj(vec![("error", Json::str("body is not UTF-8"))]),
        );
    };
    let lines: Vec<&str> = body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if lines.is_empty() {
        return Response::json(
            400,
            &Json::obj(vec![(
                "error",
                Json::str("empty body; send one JSON object per line"),
            )]),
        );
    }
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match run_query_line(shared, line, &tenant) {
            Ok(outcome) => out.push(outcome),
            Err(QueryLineError::Parse(why)) => {
                let err = Json::obj(vec![("error", Json::str(&why))]);
                if i == 0 {
                    return Response::json(400, &err);
                }
                out.push(err.to_string());
            }
            Err(QueryLineError::Admission(err)) => {
                let status = match err {
                    AdmissionError::QueueFull | AdmissionError::QuotaExceeded => 429,
                    AdmissionError::ShuttingDown | AdmissionError::TimedOut => 503,
                };
                let msg = Json::obj(vec![("error", Json::str(err.to_string()))]);
                if i == 0 {
                    let resp = Response::json(status, &msg);
                    return if err == AdmissionError::TimedOut {
                        resp.retry_after(retry_after_secs(shared))
                    } else {
                        resp
                    };
                }
                out.push(msg.to_string());
            }
        }
    }
    let mut body = out.join("\n");
    body.push('\n');
    Response::ndjson(200, body)
}

enum QueryLineError {
    Parse(String),
    Admission(AdmissionError),
}

/// Seconds a timed-out client should wait before retrying: the admission
/// deadline itself (the queue needs about that long to move), at least 1.
fn retry_after_secs(shared: &Shared) -> u64 {
    shared
        .config
        .queue_deadline
        .map_or(1, |d| d.as_secs().max(1))
}

fn run_query_line(
    shared: &Shared,
    line: &str,
    tenant: &ccp_resctrl::TenantId,
) -> Result<String, QueryLineError> {
    let value = Json::parse(line).map_err(|e| QueryLineError::Parse(format!("bad JSON: {e}")))?;
    let spec =
        parse_query(&value, shared.config.enable_sleep_workload).map_err(QueryLineError::Parse)?;
    // Reuse is consulted *before* classification: a scan whose memoized
    // result is resident is admitted as sensitive-light, not held back
    // behind the polluter limits it no longer deserves.
    let (cuid, predicted_hit) = shared.engine.classify_for_admission(&spec);
    let permit = shared
        .admission
        .acquire_tenant(cuid, tenant.as_str(), shared.config.queue_deadline)
        .map_err(QueryLineError::Admission)?;
    shared
        .metrics
        .record_tenant_request(tenant.as_str(), ccp_engine::class_label(cuid));
    // The admission ticket doubles as the trace query id: every span this
    // query emits downstream (scheduler, bind, operators) carries it.
    let ticket = permit.ticket();
    let ctx = QueryCtx::new(ticket);
    let name = spec.name();
    let query_span = ccp_trace::span_id(TraceCat::Query, &name, ticket);
    let exec_started = Instant::now();
    let outcome = with_query_ctx(Arc::clone(&ctx), || {
        shared.engine.execute_admitted(&spec, cuid)
    });
    if predicted_hit && outcome.reuse != "hit" {
        // The entry vanished (eviction, version bump, fault) between
        // admission and execution: the query ran under a class it no
        // longer earned. Counted so the CI gate can see how often the
        // prediction lies.
        if let Some(cache) = shared.engine.reuse_cache() {
            cache.note_misprediction();
        }
    }
    let exec_total_us = exec_started.elapsed().as_micros() as u64;
    drop(query_span);
    let bind_us = ctx.bind_ns() / 1_000;
    let breakdown = Breakdown {
        queue_us: permit.queue_us(),
        schedule_us: permit.schedule_us(),
        bind_us,
        exec_us: exec_total_us.saturating_sub(bind_us),
    };
    drop(permit);
    let mut json = outcome.to_json_with(&breakdown);
    if let Json::Obj(ref mut fields) = json {
        // The ticket lets a client pull exactly this query's spans with
        // `GET /trace?ticket=N`.
        fields.push(("ticket".to_string(), Json::num(ticket as f64)));
    }
    Ok(json.to_string())
}

fn pool_json(ex: &JobExecutor) -> Json {
    let m = ex.metrics();
    Json::obj(vec![
        ("jobs_executed", Json::num(m.jobs_executed() as f64)),
        ("jobs_panicked", Json::num(m.jobs_panicked() as f64)),
        ("mask_switches", Json::num(m.mask_switches() as f64)),
        ("bind_failures", Json::num(m.bind_failures() as f64)),
    ])
}

fn stats_json(shared: &Shared) -> Json {
    let (queued, running) = shared.admission.occupancy();
    Json::obj(vec![
        (
            "uptime_secs",
            Json::num(shared.started.elapsed().as_secs_f64()),
        ),
        ("cat_live", Json::Bool(shared.engine.cat_live())),
        (
            "pools",
            Json::obj(vec![
                ("olap", pool_json(shared.engine.pools().olap())),
                ("oltp", pool_json(shared.engine.pools().oltp())),
            ]),
        ),
        (
            "admission",
            Json::obj(vec![
                ("queued", Json::num(queued as f64)),
                ("running", Json::num(running as f64)),
                ("capacity", Json::num(shared.admission.capacity() as f64)),
                ("slots", Json::num(shared.admission.slots() as f64)),
                (
                    "rejections",
                    Json::num(shared.metrics.admission_rejections() as f64),
                ),
                (
                    "timeouts",
                    Json::num(shared.metrics.admission_timeouts() as f64),
                ),
                ("deferrals", Json::num(shared.admission.deferrals() as f64)),
                ("classes", admission_classes_json(shared)),
            ]),
        ),
        (
            "connections",
            Json::obj(vec![
                ("active", Json::num(shared.metrics.active_connections())),
                (
                    "total",
                    Json::num(shared.metrics.connections_total() as f64),
                ),
                ("max", Json::num(shared.config.max_connections as f64)),
            ]),
        ),
        ("resctrl", resctrl_json(shared)),
        ("control", control_json(shared)),
        ("tenants", tenants_json(shared)),
        ("reconciler", reconcile_json(shared)),
        ("reuse", reuse_json(shared)),
        ("trace", trace_json()),
    ])
}

/// Per-tenant view for `/stats`: configured quota and weight, current
/// waiting/running occupancy, cumulative grants and quota rejections,
/// and — when the reconciler runs — the state of each of the tenant's
/// `ccp-<tenant>-<class>` groups.
fn tenants_json(shared: &Shared) -> Json {
    let limits = shared.admission.tenant_limits().clone();
    let waiting = shared.admission.waiting_by_tenant();
    let running = shared.admission.running_by_tenant();
    let grants = shared.admission.grants_by_tenant();
    let mut names: Vec<String> = vec![ccp_resctrl::DEFAULT_TENANT.to_string()];
    for name in limits
        .tenants()
        .into_iter()
        .map(str::to_string)
        .chain(grants.iter().map(|(t, _)| t.clone()))
        .chain(waiting.iter().map(|(t, _)| t.clone()))
        .chain(running.iter().map(|(t, _)| t.clone()))
    {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    let group_states = shared.reconcile.as_ref().map(|view| {
        view.states
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    });
    let count = |list: &[(String, usize)], name: &str| {
        list.iter().find(|(t, _)| t == name).map_or(0, |&(_, n)| n)
    };
    let fields = names
        .into_iter()
        .map(|name| {
            let mut obj = vec![
                (
                    "quota",
                    limits
                        .quota_for(&name)
                        .map_or(Json::Null, |q| Json::num(q as f64)),
                ),
                ("weight", Json::num(f64::from(limits.weight_for(&name)))),
                ("waiting", Json::num(count(&waiting, &name) as f64)),
                ("running", Json::num(count(&running, &name) as f64)),
                (
                    "grants",
                    Json::num(
                        grants
                            .iter()
                            .find(|(t, _)| *t == name)
                            .map_or(0.0, |&(_, g)| g as f64),
                    ),
                ),
                (
                    "rejections",
                    Json::num(shared.metrics.tenant_rejections(&name) as f64),
                ),
            ];
            if let Some(states) = &group_states {
                let groups: Vec<(&str, Json)> = states
                    .iter()
                    .filter_map(|(group, state)| {
                        let (tenant, class) = ccp_resctrl::parse_group_name(group)?;
                        (tenant.as_str() == name).then_some((class, Json::str(*state)))
                    })
                    .collect();
                obj.push(("groups", Json::obj(groups)));
            }
            (name, Json::obj(obj))
        })
        .collect::<Vec<_>>();
    Json::obj(
        fields
            .iter()
            .map(|(name, json)| (name.as_str(), json.clone()))
            .collect(),
    )
}

/// Group-reconciler view for `/stats`: cumulative pass counters, the
/// convergence gauges (`failed` must return to 0 after faults heal;
/// `fallback` counts tenants degraded to the shared class masks) and
/// whether the last pass saw CLOSID exhaustion.
fn reconcile_json(shared: &Shared) -> Json {
    let Some(view) = shared.reconcile.as_ref() else {
        return Json::obj(vec![("enabled", Json::Bool(false))]);
    };
    let s = &view.stats;
    Json::obj(vec![
        ("enabled", Json::Bool(true)),
        (
            "interval_ms",
            Json::num(shared.config.reconcile_interval.as_millis() as f64),
        ),
        ("sweeps", Json::num(s.sweeps() as f64)),
        ("reconciled", Json::num(s.reconciled() as f64)),
        ("retried", Json::num(s.retried() as f64)),
        ("orphans_removed", Json::num(s.orphans_removed() as f64)),
        ("failures", Json::num(s.failed_total() as f64)),
        ("failed", Json::num(s.failed() as f64)),
        ("fallback", Json::num(s.fallback() as f64)),
        ("exhausted", Json::Bool(s.is_exhausted())),
    ])
}

/// Reuse-cache view for `/stats`: budget and residency, the hit/miss
/// counters (including coalesced single-flight waits), invalidation and
/// misprediction totals, and the current data-version epoch.
fn reuse_json(shared: &Shared) -> Json {
    let Some(cache) = shared.engine.reuse_cache() else {
        return Json::obj(vec![("enabled", Json::Bool(false))]);
    };
    let s = cache.stats();
    Json::obj(vec![
        ("enabled", Json::Bool(true)),
        ("budget_bytes", Json::num(s.budget_bytes as f64)),
        ("bytes", Json::num(s.bytes as f64)),
        ("entries", Json::num(s.entries as f64)),
        ("data_version", Json::num(s.data_version as f64)),
        ("hits", Json::num(s.hits as f64)),
        ("misses", Json::num(s.misses as f64)),
        ("inserts", Json::num(s.inserts as f64)),
        ("evictions", Json::num(s.evictions as f64)),
        ("invalidations", Json::num(s.invalidations as f64)),
        ("coalesced", Json::num(s.coalesced as f64)),
        ("mispredictions", Json::num(s.mispredictions as f64)),
    ])
}

/// Adaptive-control view for `/stats`: whether the loop runs, whether it
/// is currently clamped to the static plan, its last decision, the
/// cumulative decision counters and the live per-class way counts.
fn control_json(shared: &Shared) -> Json {
    let Some(state) = shared.control.as_ref() else {
        return Json::obj(vec![("enabled", Json::Bool(false))]);
    };
    let live = shared.engine.live_masks();
    let ways = |bits: u32| Json::num(f64::from(bits.count_ones()));
    Json::obj(vec![
        ("enabled", Json::Bool(true)),
        (
            "interval_ms",
            Json::num(shared.config.control_interval.as_millis() as f64),
        ),
        (
            "clamped",
            // ORDERING: point-in-time snapshot for reporting.
            Json::Bool(state.clamped.load(Ordering::Relaxed)),
        ),
        (
            "last_decision",
            Json::str(
                *state
                    .last_decision
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            ),
        ),
        (
            "decisions",
            Json::num(shared.metrics.control_decisions() as f64),
        ),
        (
            "repartitions",
            Json::num(shared.metrics.control_repartitions() as f64),
        ),
        ("holds", Json::num(shared.metrics.control_holds() as f64)),
        (
            "reverts",
            Json::num(shared.metrics.control_reverts() as f64),
        ),
        (
            "mask_ways",
            Json::obj(vec![
                ("polluting", ways(live.polluting_bits())),
                ("mixed", ways(live.mixed_bits())),
                ("sensitive", ways(live.sensitive_bits())),
            ]),
        ),
    ])
}

/// Supervisor health for `/stats`: whether the engine currently runs
/// degraded (unpartitioned) and the supervisor's cumulative counters.
/// Backends without failure modes (noop, recording) report
/// `supervised: false` and are never degraded.
fn resctrl_json(shared: &Shared) -> Json {
    match shared.engine.resctrl_health() {
        Some(h) => Json::obj(vec![
            ("supervised", Json::Bool(true)),
            ("degraded", Json::Bool(h.is_degraded())),
            ("retries", Json::num(h.retries() as f64)),
            ("op_failures", Json::num(h.failures() as f64)),
            ("breaker_trips", Json::num(h.trips() as f64)),
            ("reprobes", Json::num(h.reprobes() as f64)),
            ("restores", Json::num(h.restores() as f64)),
        ]),
        None => Json::obj(vec![
            ("supervised", Json::Bool(false)),
            ("degraded", Json::Bool(false)),
        ]),
    }
}

/// Per-class admission view for `/stats`: the configured waiting cap
/// (`null` = bounded only by the global queue), how many queries of the
/// class wait right now, and how many were 429'd at the class cap.
fn admission_classes_json(shared: &Shared) -> Json {
    let limits = shared.admission.class_limits();
    let waiting = shared.admission.waiting_by_class();
    let class = |label: &'static str, limit: Option<usize>| {
        let waiting_now = waiting
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0, |&(_, n)| n);
        (
            label,
            Json::obj(vec![
                ("limit", limit.map_or(Json::Null, |n| Json::num(n as f64))),
                ("waiting", Json::num(waiting_now as f64)),
                (
                    "rejections",
                    Json::num(shared.metrics.class_rejections(label) as f64),
                ),
            ]),
        )
    };
    Json::obj(vec![
        class("polluting", limits.polluting),
        class("sensitive", limits.sensitive),
        class("mixed", limits.mixed),
    ])
}

/// Tracer ring health for `/stats`: a rising `dropped` means `/trace`
/// timelines have holes (scrape with `clear=1` more often or raise the
/// ring capacity).
fn trace_json() -> Json {
    let t = ccp_trace::stats();
    Json::obj(vec![
        ("enabled", Json::Bool(t.enabled)),
        ("rings", Json::num(t.rings as f64)),
        ("dropped", Json::num(t.dropped as f64)),
    ])
}

// ---------------------------------------------------------------------------
// SIGINT flag
// ---------------------------------------------------------------------------

static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sigint {
    use super::SIGINT_SEEN;
    use std::sync::atomic::Ordering;

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work here: flip the flag; the serve loop
        // polls it.
        SIGINT_SEEN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // libc is always linked on unix; `signal` keeps us dependency-free.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        // SAFETY: `signal(2)` is async-signal-safe to install, the handler
        // only stores to a static atomic (no allocation, locking, or
        // formatting), and registration happens once from `main` before
        // any connection threads exist.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// Installs a SIGINT handler that only flips a flag readable through
/// [`sigint_requested`]. No-op on non-unix platforms.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    sigint::install();
}

/// Whether SIGINT arrived since [`install_sigint_handler`].
pub fn sigint_requested() -> bool {
    SIGINT_SEEN.load(Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Scrape-only server
// ---------------------------------------------------------------------------

/// A minimal scrape endpoint over an *existing* registry: `/metrics` and
/// `/healthz` only, no executor, no admission. This is what
/// `examples/metrics_dump.rs` serves — any application that already fills
/// a [`Registry`] can expose it with two lines.
pub struct ScrapeServer {
    inner: Server,
}

impl ScrapeServer {
    /// Serves `registry` on `addr` (port 0 for ephemeral).
    ///
    /// The caller's registry is served verbatim, with this server's
    /// `ccp_server_*` request accounting registered into it. A tiny
    /// placeholder engine backs `/query` (noop allocator, 64-row data
    /// set, one slot) so the router stays uniform.
    pub fn start(registry: &Registry, addr: &str) -> std::io::Result<ScrapeServer> {
        let config = ServerConfig {
            addr: addr.to_string(),
            olap_workers: 1,
            oltp_workers: 1,
            scheduler_slots: 1,
            queue_capacity: 1,
            dataset_rows: 64,
            ..ServerConfig::default()
        };
        let metrics = ServerMetrics::new(registry);
        let engine = QueryEngine::with_allocator(
            config.olap_workers,
            config.oltp_workers,
            config.dataset_rows,
            Arc::new(ccp_engine::NoopAllocator),
            false,
        );
        let scheduler = CacheAwareScheduler::new(engine.policy(), config.scheduler_slots);
        let admission = Arc::new(AdmissionQueue::new(
            scheduler,
            config.queue_capacity,
            SchedulerMetrics::new(),
            metrics.clone(),
        ));
        let listener = TcpListener::bind(&config.addr)?;
        let bound = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            registry: registry.clone(),
            metrics,
            admission,
            engine,
            shutdown: AtomicBool::new(false),
            conns: ConnTracker::new(),
            started: Instant::now(),
            sampler: Mutex::new(None),
            control: None,
            flight: None,
            reconcile: None,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ccp-scrape".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ScrapeServer {
            inner: Server {
                shared,
                addr: bound,
                accept: Some(accept),
                supervise: None,
                control: None,
                reconcile: None,
                recorder: None,
            },
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Graceful stop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}
