//! A minimal JSON value type with a hand-rolled parser and renderer.
//!
//! The server speaks newline-delimited JSON on `/query` and emits JSON on
//! `/stats`; the workspace keeps its dependency set to the offline-audited
//! list, so this is a deliberately small recursive-descent implementation
//! (objects, arrays, strings with escapes, f64 numbers, booleans, null)
//! rather than a serde integration. Parsing is depth-limited and never
//! panics on malformed input.

use std::fmt;

/// Maximum nesting depth accepted by the parser; deeper documents are
/// rejected rather than risking stack exhaustion on hostile input.
const MAX_DEPTH: usize = 32;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for a number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, lit: &str, reason: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self
                .literal("true", "expected 'true'")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected 'false'")
                .map(|_| Json::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits of a `\u` escape (after `\u` was consumed),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            self.literal("\\u", "expected low surrogate")?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_query_request_shape() {
        let j = Json::parse(r#"{"workload":"q1","threshold":25000}"#).unwrap();
        assert_eq!(j.get("workload").and_then(Json::as_str), Some("q1"));
        assert_eq!(j.get("threshold").and_then(Json::as_i64), Some(25_000));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn round_trips_nested_documents() {
        let src = r#"{"a":[1,2.5,null,true],"b":{"c":"x\"y"},"d":-3}"#;
        let j = Json::parse(src).unwrap();
        let rendered = j.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), j);
    }

    #[test]
    fn escapes_render_correctly() {
        let j = Json::Str("line\nbreak \"quoted\" \\slash\u{1}".to_string());
        assert_eq!(j.to_string(), r#""line\nbreak \"quoted\" \\slash\u0001""#);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        let j = Json::parse(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(j.as_str(), Some("A\u{1F600}"));
        assert!(Json::parse(r#""\ud83d""#).is_err()); // unpaired high
        assert!(Json::parse(r#""\ude00""#).is_err()); // unpaired low
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "tru",
            "01x",
            "1e",
            "\"unterminated",
            "{\"a\":1}trailing",
            "nan",
            "inf",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn integral_and_float_accessors() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-42").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(Json::parse("4.5").unwrap().as_i64(), None);
        assert_eq!(Json::parse("4.5").unwrap().as_f64(), Some(4.5));
    }
}
