//! Property tests for the HTTP/1.1 request reader: arbitrary and
//! adversarial byte streams must never panic, and every rejection must
//! land in the right status class — syntax errors map to 400
//! ([`HttpError::Malformed`]), limit violations to 413
//! ([`HttpError::TooLarge`]).

use ccp_server::http::{
    read_request, HttpError, MAX_BODY_BYTES, MAX_HEADERS, MAX_HEADER_BYTES, MAX_REQUEST_LINE,
};
use proptest::prelude::*;
use std::io::BufReader;

fn parse(raw: &[u8]) -> Result<Option<ccp_server::Request>, HttpError> {
    read_request(&mut BufReader::new(raw))
}

/// Drains a whole byte stream as a pipelined connection, counting parsed
/// requests; panics are the only failure mode under test.
fn drain(raw: &[u8]) -> usize {
    let mut r = BufReader::new(raw);
    let mut parsed = 0;
    loop {
        match read_request(&mut r) {
            Ok(Some(_)) => parsed += 1,
            Ok(None) | Err(_) => return parsed,
        }
    }
}

proptest! {
    /// Arbitrary bytes never panic the reader, in single-request or
    /// pipelined use.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..600)) {
        let _ = parse(&bytes);
        let _ = drain(&bytes);
    }

    /// Mostly-printable noise (likelier to pass the early syntax checks
    /// and reach header/body handling) never panics either.
    #[test]
    fn printable_noise_never_panics(bytes in proptest::collection::vec(32u8..127, 0..600)) {
        let _ = parse(&bytes);
        let _ = drain(&bytes);
    }

    /// A structurally valid request survives arbitrary header values and
    /// bodies: it either parses back exactly or is cleanly rejected.
    #[test]
    fn roundtrip_with_arbitrary_body(
        body in proptest::collection::vec(0u8..=255, 0..300),
        value in proptest::collection::vec(33u8..127, 0..40),
    ) {
        let value = String::from_utf8(value).unwrap();
        let mut raw = format!(
            "POST /query HTTP/1.1\r\nX-Noise: {value}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let req = parse(&raw).expect("valid framing must parse").expect("not EOF");
        prop_assert_eq!(req.body, body);
        prop_assert_eq!(req.header("x-noise").unwrap_or(""), value.trim());
    }

    /// Truncating a valid request at any point never panics: the reader
    /// answers clean-EOF, a 400-class error, or (for a cut inside the
    /// body with enough bytes) a shorter parse — never a hang or crash.
    #[test]
    fn truncation_at_every_point_is_safe(cut in 0usize..=73) {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 20\r\n\r\n0123456789abcdefghij";
        prop_assert!(raw.len() == 73, "keep `cut` range in sync");
        match parse(&raw[..cut.min(raw.len())]) {
            Ok(None) | Ok(Some(_)) | Err(HttpError::Malformed(_)) => {}
            other => prop_assert!(false, "unexpected outcome at cut {}: {:?}", cut, other),
        }
    }

    /// Oversized request lines are always 413, regardless of how far
    /// past the limit they go.
    #[test]
    fn oversized_request_line_is_413(extra in 1usize..4096) {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + extra));
        prop_assert!(matches!(parse(raw.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    /// Oversized header blocks are always 413 — whether via one huge
    /// value or via many fields.
    #[test]
    fn oversized_headers_are_413(extra in 1usize..4096, split in 1usize..32) {
        let chunk = (MAX_HEADER_BYTES + extra) / split + 1;
        let fields: String = (0..split)
            .map(|i| format!("X-{i}: {}\r\n", "h".repeat(chunk)))
            .collect();
        let raw = format!("GET /x HTTP/1.1\r\n{fields}\r\n");
        prop_assert!(matches!(parse(raw.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    /// Declared bodies beyond the limit are rejected before any body
    /// byte is read.
    #[test]
    fn oversized_body_is_413(extra in 1u64..1_000_000) {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES as u64 + extra
        );
        prop_assert!(matches!(parse(raw.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    /// Pipelined well-formed requests all parse, in order, for any
    /// count the header-field limit allows.
    #[test]
    fn pipelining_parses_every_request(n in 1usize..20) {
        let raw: Vec<u8> = (0..n)
            .flat_map(|i| {
                format!("POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{i:02}").into_bytes()
            })
            .collect();
        prop_assert_eq!(drain(&raw), n);
    }

    /// The field-count limit holds exactly: MAX_HEADERS parse, one more
    /// is 413.
    #[test]
    fn header_count_limit_is_exact(over in 0usize..2) {
        let n = MAX_HEADERS + over;
        let fields: String = (0..n).map(|i| format!("X-{i}: v\r\n")).collect();
        let raw = format!("GET /x HTTP/1.1\r\n{fields}\r\n");
        match parse(raw.as_bytes()) {
            Ok(Some(req)) => prop_assert!(over == 0 && req.headers.len() == MAX_HEADERS),
            Err(HttpError::TooLarge(_)) => prop_assert!(over > 0),
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
    }
}
