//! End-to-end reuse integration over real sockets: a repeated query is
//! served from the cache and *admitted* under the non-polluting class,
//! `POST /data/bump` invalidates, and a fault-injected `reuse.lookup`
//! exercises the misprediction counter — admission predicted a hit, the
//! entry vanished by execution time, and the server noticed.

use ccp_server::{fetch, Json, Server, ServerConfig};
use std::net::SocketAddr;

/// Clears the process-global fault plan even when the test panics, so a
/// failure here cannot leak an armed failpoint into other tests.
struct PlanGuard;
impl Drop for PlanGuard {
    fn drop(&mut self) {
        ccp_fault::clear();
    }
}

fn query(addr: SocketAddr, body: &str) -> Json {
    let resp = fetch(addr, "POST", "/query", Some(body)).expect("query");
    assert_eq!(resp.status, 200, "query failed: {}", resp.body);
    Json::parse(resp.body.trim()).expect("query response parses")
}

fn reuse_stats(addr: SocketAddr) -> Json {
    let resp = fetch(addr, "GET", "/stats", None).expect("stats");
    let stats = Json::parse(resp.body.trim()).expect("stats parse");
    stats.get("reuse").expect("stats.reuse present").clone()
}

fn field<'j>(j: &'j Json, name: &str) -> &'j Json {
    j.get(name)
        .unwrap_or_else(|| panic!("missing field {name}"))
}

#[test]
fn repeat_hits_reclassify_bump_invalidates_and_faults_count_mispredictions() {
    let _plan = PlanGuard;
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 1,
        oltp_workers: 1,
        dataset_rows: 4_096,
        monitor_interval: None,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();
    let q1 = r#"{"workload":"q1","threshold":25000}"#;

    // Cold: the scan is the paper's polluter and misses the cache.
    let first = query(addr, q1);
    assert_eq!(field(&first, "reuse").as_str(), Some("miss"));
    assert_eq!(field(&first, "class").as_str(), Some("polluting"));

    // Warm: predicted hit -> admitted sensitive-light, served cached.
    let second = query(addr, q1);
    assert_eq!(field(&second, "reuse").as_str(), Some("hit"));
    assert_eq!(
        field(&second, "class").as_str(),
        Some("sensitive"),
        "a predicted hit must be admitted under the non-polluting class"
    );
    assert_eq!(
        field(&second, "result").as_f64(),
        field(&first, "result").as_f64(),
        "cached result matches the computed one"
    );

    // Equivalent predicate spelling lands on the same entry.
    let spaced = query(addr, r#"{"workload":"q1","threshold":  25000}"#);
    assert_eq!(field(&spaced, "reuse").as_str(), Some("hit"));

    // Bump the data version: the entry is invalidated, q1 rebuilds
    // (admitted as the polluter again), then the cache refills.
    let bump = fetch(addr, "POST", "/data/bump", None).expect("bump");
    assert_eq!(bump.status, 200, "bump failed: {}", bump.body);
    let bumped = Json::parse(bump.body.trim()).expect("bump parses");
    assert_eq!(field(&bumped, "data_version").as_f64(), Some(1.0));
    let rebuilt = query(addr, q1);
    assert_eq!(field(&rebuilt, "reuse").as_str(), Some("miss"));
    assert_eq!(field(&rebuilt, "class").as_str(), Some("polluting"));
    let refilled = query(addr, q1);
    assert_eq!(field(&refilled, "reuse").as_str(), Some("hit"));
    let s = reuse_stats(addr);
    assert!(
        field(&s, "invalidations").as_f64() >= Some(1.0),
        "stats: {s}"
    );
    assert_eq!(field(&s, "mispredictions").as_f64(), Some(0.0));

    // Fault-inject the exec-time lookup: admission still predicts a hit
    // (predict() takes no failpoint), but the armed lookup makes the
    // entry vanish mid-flight — the query runs under sensitive-light
    // without earning it, and the misprediction counter says so.
    ccp_fault::install_str("reuse.lookup=err@1").expect("plan parses");
    let mispredicted = query(addr, q1);
    assert_eq!(field(&mispredicted, "reuse").as_str(), Some("miss"));
    assert_eq!(
        field(&mispredicted, "class").as_str(),
        Some("sensitive"),
        "admission had already decided before the entry vanished"
    );
    ccp_fault::clear();
    let s = reuse_stats(addr);
    assert!(
        field(&s, "mispredictions").as_f64() >= Some(1.0),
        "stats: {s}"
    );
    let scrape = fetch(addr, "GET", "/metrics", None).expect("scrape").body;
    let mispredictions = scrape
        .lines()
        .find_map(|l| l.strip_prefix("ccp_reuse_mispredictions_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("ccp_reuse_mispredictions_total in scrape");
    assert!(mispredictions >= 1.0);

    // The forced miss rebuilt and re-published: next lookup hits again.
    let recovered = query(addr, q1);
    assert_eq!(field(&recovered, "reuse").as_str(), Some("hit"));

    server.shutdown();
}

#[test]
fn no_reuse_disables_endpoint_and_bypasses() {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 1,
        oltp_workers: 1,
        dataset_rows: 1_024,
        monitor_interval: None,
        no_reuse: true,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();
    let q1 = r#"{"workload":"q1"}"#;
    for _ in 0..2 {
        let out = query(addr, q1);
        assert_eq!(field(&out, "reuse").as_str(), Some("bypass"));
        assert_eq!(field(&out, "class").as_str(), Some("polluting"));
    }
    let bump = fetch(addr, "POST", "/data/bump", None).expect("bump");
    assert_eq!(bump.status, 409, "bump without a cache: {}", bump.body);
    let s = reuse_stats(addr);
    assert_eq!(*field(&s, "enabled"), Json::Bool(false));
    server.shutdown();
}
