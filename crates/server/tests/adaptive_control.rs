//! End-to-end adaptive control over real sockets: a scripted occupancy
//! trace drives the controller to repartition the live mask table, the
//! episode is visible in `/stats` and `/metrics`, and an armed
//! `control.apply` failpoint turns the first repartition into a clean
//! revert followed by a successful retry.

use ccp_server::{fetch, Json, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Clears the process-global fault plan even when the test panics.
struct PlanGuard;
impl Drop for PlanGuard {
    fn drop(&mut self) {
        ccp_fault::clear();
    }
}

const SHRINK_SCRIPT: &str = "sensitive:0.95x6,0.12;polluting:0.08;mixed:0.02";

fn adaptive_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 1,
        oltp_workers: 1,
        scheduler_slots: 2,
        dataset_rows: 64,
        fake_resctrl: true,
        adaptive: true,
        control_interval: Duration::from_millis(10),
        monitor_interval: Some(Duration::from_millis(20)),
        occupancy_script: Some(SHRINK_SCRIPT.to_string()),
        ..ServerConfig::default()
    }
}

fn control_stats(addr: SocketAddr) -> Json {
    let body = fetch(addr, "GET", "/stats", None).expect("stats").body;
    let json = Json::parse(&body).expect("stats is JSON");
    json.get("control").expect("control object").clone()
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing number {key:?} in {v}"))
}

#[test]
fn scripted_shrink_repartitions_and_reports_everywhere() {
    let mut server = Server::start(adaptive_config()).expect("start");
    let addr = server.addr();

    let first = control_stats(addr);
    assert_eq!(first.get("enabled"), Some(&Json::Bool(true)));

    // The scripted sensitive working set collapses after 6 monitor
    // ticks; the controller must notice and shrink the live mask.
    let deadline = Instant::now() + Duration::from_secs(15);
    let control = loop {
        let c = control_stats(addr);
        if num(&c, "repartitions") >= 1.0 {
            break c;
        }
        assert!(
            Instant::now() < deadline,
            "controller never repartitioned: {c}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    let ways = control.get("mask_ways").expect("mask_ways");
    assert!(
        num(ways, "sensitive") < 20.0,
        "sensitive mask did not shrink: {control}"
    );
    assert!(num(ways, "polluting") >= 2.0, "polluter starved: {control}");

    // The repartition shows up in the Prometheus scrape too.
    let scrape = fetch(addr, "GET", "/metrics", None).expect("metrics").body;
    assert!(
        scrape
            .lines()
            .any(|l| l.starts_with("ccp_control_repartitions_total") && !l.ends_with(" 0")),
        "no repartitions in scrape"
    );
    assert!(scrape.contains("ccp_control_mask_ways{class=\"sensitive\"}"));

    // Queries keep flowing, and a sensitive query's reported mask is the
    // live (shrunken) one, not the static full mask.
    let r = fetch(addr, "POST", "/query", Some(r#"{"workload":"q2"}"#)).expect("query");
    assert_eq!(r.status, 200, "{}", r.body);
    let outcome = Json::parse(r.body.lines().next().expect("one line")).expect("outcome");
    let mask = outcome.get("mask").and_then(Json::as_str).expect("mask");
    assert_ne!(mask, "0xfffff", "live mask not applied to the query path");

    server.shutdown();
}

#[test]
fn apply_fault_reverts_cleanly_then_retries() {
    let _plan = PlanGuard;
    // The first apply fails; every later one succeeds.
    ccp_fault::install_str("control.apply=err@1+1").expect("plan");
    let mut server = Server::start(adaptive_config()).expect("start");
    let addr = server.addr();

    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let c = control_stats(addr);
        // The first Repartition decision counts, then fails its apply
        // (one revert); the retry is the second repartition.
        if num(&c, "reverts") >= 1.0 && num(&c, "repartitions") >= 2.0 {
            // Reverted once on the injected failure, then landed the
            // adaptive plan on a retry.
            let ways = c.get("mask_ways").expect("mask_ways");
            assert!(num(ways, "sensitive") < 20.0, "retry never landed: {c}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "revert/retry never observed: {c}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    server.shutdown();
}
