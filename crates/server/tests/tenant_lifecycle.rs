//! Multi-tenant lifecycle over real sockets: the `X-CCP-Tenant` header
//! routes each query to a per-tenant admission quota (429 on breach,
//! 400 on a hostile header, default tenant when absent), the reconciler
//! mints `ccp-<tenant>-<class>` groups and publishes its state through
//! `/stats` and `/metrics`, and a bounded `tenant.create_group` ENOSPC
//! fault window plus a 4-CLOSID cap degrade tenants to shared class
//! masks (fallback, not failure) while every query keeps succeeding.

use ccp_server::{fetch, fetch_with_headers, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Clears the process-global fault plan even when the test panics, so a
/// failure here cannot leak an armed failpoint into other tests.
struct PlanGuard;
impl Drop for PlanGuard {
    fn drop(&mut self) {
        ccp_fault::clear();
    }
}

fn stats(addr: SocketAddr) -> String {
    fetch(addr, "GET", "/stats", None).expect("stats").body
}

/// Value of the first `"key":<number>` occurrence in a JSON blob.
fn stat_num(body: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing from {body}"));
    let rest = &body[at + needle.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("{key} not numeric in {body}"))
}

/// First sample of `name` in a Prometheus scrape (exact match on the
/// full series name including labels).
fn scrape_value(scrape: &str, name: &str) -> f64 {
    scrape
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let (metric, value) = l.split_once(' ')?;
            (metric == name).then(|| value.parse().ok())?
        })
        .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
}

#[test]
fn tenant_header_routes_quotas_and_stats() {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 2,
        oltp_workers: 1,
        scheduler_slots: 4,
        dataset_rows: 64,
        enable_sleep_workload: true,
        fake_resctrl: true,
        monitor_interval: None,
        no_reuse: true,
        tenant_quotas: vec![("acme".to_string(), 1)],
        tenant_weights: vec![("acme".to_string(), 3)],
        reconcile_interval: Duration::from_millis(25),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // A hostile tenant header is rejected before touching admission.
    let r = fetch_with_headers(
        addr,
        "POST",
        "/query",
        &[("X-CCP-Tenant", "No/Such..Tenant")],
        Some(r#"{"workload":"q1"}"#),
    )
    .expect("bad tenant");
    assert_eq!(r.status, 400, "hostile tenant id: {}", r.body);
    assert!(
        r.body.contains("bad X-CCP-Tenant"),
        "names the header: {}",
        r.body
    );

    // Absent header → default tenant; the request lands in the default
    // tenant's counters.
    let r = fetch(addr, "POST", "/query", Some(r#"{"workload":"q1"}"#)).expect("default query");
    assert_eq!(r.status, 200, "default tenant serves: {}", r.body);

    // Park a long sleep under tenant `acme` (quota 1), then show the
    // second acme arrival is quota-rejected while the default tenant
    // keeps flowing through the very same queue.
    let holder = std::thread::spawn(move || {
        fetch_with_headers(
            addr,
            "POST",
            "/query",
            &[("X-CCP-Tenant", "acme")],
            Some(r#"{"workload":"sleep","ms":1500}"#),
        )
        .expect("holder")
    });
    // Wait until the holder is visibly in flight for acme.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = stats(addr);
        let at = s.find("\"acme\"").expect("acme in tenants");
        if stat_num(&s[at..], "running") + stat_num(&s[at..], "waiting") >= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "holder never admitted: {s}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let r = fetch_with_headers(
        addr,
        "POST",
        "/query",
        &[("X-CCP-Tenant", "acme")],
        Some(r#"{"workload":"q1"}"#),
    )
    .expect("over quota");
    assert_eq!(r.status, 429, "acme quota of 1 is enforced: {}", r.body);
    assert!(
        r.body.contains("quota"),
        "429 names the quota, not the queue: {}",
        r.body
    );

    // The default tenant has no quota and is not collateral damage.
    let r = fetch(addr, "POST", "/query", Some(r#"{"workload":"q1"}"#)).expect("default query");
    assert_eq!(
        r.status, 200,
        "default unaffected by acme quota: {}",
        r.body
    );

    let hold = holder.join().expect("holder thread");
    assert_eq!(hold.status, 200, "holder completes: {}", hold.body);

    // /stats carries the whole tenant ledger: quota, weight, grants,
    // rejections, and the reconciler's per-class group states.
    let s = stats(addr);
    assert!(s.contains("\"tenants\""), "tenants section: {s}");
    assert!(s.contains("\"reconciler\""), "reconciler section: {s}");
    let at = s.find("\"acme\"").expect("acme entry");
    assert_eq!(stat_num(&s[at..], "quota"), 1.0, "acme quota in stats: {s}");
    assert_eq!(
        stat_num(&s[at..], "weight"),
        3.0,
        "acme weight in stats: {s}"
    );
    assert!(stat_num(&s[at..], "grants") >= 1.0, "acme grants: {s}");
    assert!(
        stat_num(&s[at..], "rejections") >= 1.0,
        "acme rejections: {s}"
    );
    let rec = &s[s.find("\"reconciler\"").unwrap()..];
    assert!(rec.contains("\"enabled\":true"), "reconciler enabled: {s}");

    // The reconciler converges: with ample fake CLOSIDs every desired
    // `ccp-<tenant>-<class>` group ends up satisfied and none failed.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = stats(addr);
        let rec = &s[s.find("\"reconciler\"").unwrap()..];
        if stat_num(rec, "reconciled") >= 6.0 && stat_num(rec, "failed") == 0.0 {
            assert!(s.contains("\"satisfied\""), "group states surfaced: {s}");
            break;
        }
        assert!(Instant::now() < deadline, "reconciler never converged: {s}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // One scrape shows the per-tenant labelled families next to the
    // reconciler counters (label keys render sorted: class then tenant).
    let scrape = fetch(addr, "GET", "/metrics", None).expect("scrape").body;
    assert!(
        scrape.contains("ccp_server_tenant_requests_total{class=\"polluting\",tenant=\"default\"}"),
        "default tenant request family: {scrape}"
    );
    assert!(
        scrape_value(
            &scrape,
            "ccp_server_tenant_rejections_total{tenant=\"acme\"}"
        ) >= 1.0,
        "acme rejection family: {scrape}"
    );
    assert!(scrape_value(&scrape, "ccp_reconcile_sweeps_total") >= 1.0);
    assert_eq!(scrape_value(&scrape, "ccp_reconcile_failed_groups"), 0.0);

    server.shutdown();
}

#[test]
fn closid_exhaustion_chaos_degrades_to_fallback_and_heals() {
    let _plan = PlanGuard;
    // A bounded ENOSPC window on tenant group creation, armed before
    // the server boots so even the first reconcile passes hit it.
    ccp_fault::install_str("tenant.create_group=err:enospc@1+20").expect("plan");

    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 2,
        oltp_workers: 1,
        scheduler_slots: 4,
        dataset_rows: 64,
        // 4 CLOSIDs = 3 usable groups for 4 tenants × 3 classes of
        // demand: permanent scarcity even after the fault heals.
        fake_closids: Some(4),
        monitor_interval: None,
        no_reuse: true,
        tenant_quotas: vec![
            ("alpha".to_string(), 8),
            ("beta".to_string(), 8),
            ("gamma".to_string(), 8),
        ],
        tenant_weights: vec![
            ("alpha".to_string(), 5),
            ("beta".to_string(), 3),
            ("gamma".to_string(), 2),
        ],
        reconcile_interval: Duration::from_millis(25),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // Queries keep succeeding for every tenant while the fault window
    // is live — partition groups are an optimization, never a gate.
    for i in 0..12 {
        let tenant = ["alpha", "beta", "gamma"][i % 3];
        let r = fetch_with_headers(
            addr,
            "POST",
            "/query",
            &[("X-CCP-Tenant", tenant)],
            Some(r#"{"workload":"q1"}"#),
        )
        .expect("query");
        assert_eq!(r.status, 200, "{tenant} survives the window: {}", r.body);
    }

    // The capacity-aware retry burns through the 20-hit window (backoff
    // means one attempt every few passes) and then lands on genuine
    // CLOSID scarcity: some groups reconcile, the rest settle as
    // fallback onto shared class masks — and *none* count as failed,
    // so the failure gauge converges to zero under permanent scarcity.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = stats(addr);
        let rec = &s[s.find("\"reconciler\"").unwrap()..];
        let retried = stat_num(rec, "retried");
        let fallback = stat_num(rec, "fallback");
        if retried >= 3.0 && fallback >= 9.0 && rec.contains("\"exhausted\":true") {
            assert_eq!(
                stat_num(rec, "failed"),
                0.0,
                "exhaustion is not failure: {s}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "window never burned down to steady scarcity: {s}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Still serving everyone after the heal, on shared masks.
    for tenant in ["alpha", "beta", "gamma"] {
        let r = fetch_with_headers(
            addr,
            "POST",
            "/query",
            &[("X-CCP-Tenant", tenant)],
            Some(r#"{"workload":"q1"}"#),
        )
        .expect("query");
        assert_eq!(r.status, 200, "{tenant} serves under scarcity: {}", r.body);
    }

    // The episode is visible in one scrape: retries counted, zero
    // failed groups, the exhaustion gauge up, and per-tenant traffic
    // labelled — with no worker panics through any of it.
    let scrape = fetch(addr, "GET", "/metrics", None).expect("scrape").body;
    assert!(scrape_value(&scrape, "ccp_reconcile_retried_total") >= 3.0);
    assert_eq!(scrape_value(&scrape, "ccp_reconcile_failed_groups"), 0.0);
    assert!(scrape_value(&scrape, "ccp_reconcile_fallback_groups") >= 9.0);
    assert_eq!(scrape_value(&scrape, "ccp_reconcile_exhausted"), 1.0);
    for tenant in ["alpha", "beta", "gamma"] {
        assert!(
            scrape_value(
                &scrape,
                &format!(
                    "ccp_server_tenant_requests_total{{class=\"polluting\",tenant=\"{tenant}\"}}"
                )
            ) >= 1.0,
            "{tenant} traffic labelled: {scrape}"
        );
    }
    let panicked = scrape
        .lines()
        .filter(|l| l.starts_with("ccp_executor_jobs_panicked_total"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>();
    assert_eq!(panicked, 0.0, "no worker panics during the episode");

    server.shutdown();
}
