//! Flight recorder endpoints over real sockets: `/timeline` serves the
//! retained series with a working `since` cursor and prefix filter,
//! `/dashboard` is one self-contained HTML page, `/version` reports the
//! baked-in build provenance, `/profile` runs a SIGPROF window, and
//! `--no-flight` turns the recorder endpoints into clean 404s.

use ccp_server::{fetch, Json, Server, ServerConfig};
use std::time::{Duration, Instant};

fn flight_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 1,
        oltp_workers: 1,
        scheduler_slots: 2,
        dataset_rows: 64,
        fake_resctrl: true,
        flight: true,
        flight_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    }
}

fn timeline(addr: std::net::SocketAddr, path: &str) -> Json {
    let resp = fetch(addr, "GET", path, None).expect("timeline fetch");
    assert_eq!(resp.status, 200, "{path} -> {}", resp.body);
    Json::parse(&resp.body).expect("timeline is JSON")
}

#[test]
fn timeline_dashboard_and_version_serve_recorder_state() {
    let mut server = Server::start(flight_config()).expect("start");
    let addr = server.addr();

    // Drive one query through so request/queue series have real data.
    let q = fetch(
        addr,
        "POST",
        "/query",
        Some(r#"{"workload":"oltp","key":16}"#),
    )
    .expect("query");
    assert_eq!(q.status, 200, "{}", q.body);

    // Wait until the recorder has taken a few snapshots.
    let deadline = Instant::now() + Duration::from_secs(10);
    let tl = loop {
        let tl = timeline(addr, "/timeline");
        let tick = tl.get("tick").and_then(Json::as_f64).unwrap_or(0.0);
        if tick >= 3.0 {
            break tl;
        }
        assert!(Instant::now() < deadline, "recorder never ticked: {tl}");
        std::thread::sleep(Duration::from_millis(20));
    };

    let series = match tl.get("series") {
        Some(Json::Obj(entries)) => entries.clone(),
        other => panic!("series must be an object, got {other:?}"),
    };
    assert!(
        series
            .iter()
            .any(|(name, _)| name.starts_with("ccp_server_admission_queue_depth")),
        "admission depth series missing from timeline"
    );
    assert!(
        series
            .iter()
            .all(|(_, pts)| matches!(pts, Json::Arr(a) if !a.is_empty())),
        "every reported series carries points"
    );

    // The since cursor only returns strictly newer points.
    let tick = tl.get("tick").and_then(Json::as_f64).expect("tick") as u64;
    let newer = timeline(addr, &format!("/timeline?since={tick}"));
    if let Some(Json::Obj(entries)) = newer.get("series") {
        for (name, pts) in entries {
            let Json::Arr(pts) = pts else {
                panic!("series {name} must be an array")
            };
            for p in pts {
                let seq = match p {
                    Json::Arr(pair) => pair.first().and_then(Json::as_f64),
                    _ => None,
                }
                .unwrap_or_else(|| panic!("bad point in {name}"));
                assert!(seq > tick as f64, "stale point seq {seq} <= since {tick}");
            }
        }
    }

    // The prefix filter narrows to the requested family.
    let filtered = timeline(addr, "/timeline?series=ccp_server_");
    if let Some(Json::Obj(entries)) = filtered.get("series") {
        assert!(!entries.is_empty(), "prefix filter dropped everything");
        for (name, _) in entries {
            assert!(name.starts_with("ccp_server_"), "leaked series {name}");
        }
    }

    // Bad cursor is a 400, not a panic.
    let bad = fetch(addr, "GET", "/timeline?since=xyz", None).expect("bad since");
    assert_eq!(bad.status, 400);

    // Dashboard: one page, inline SVG, zero external references.
    let dash = fetch(addr, "GET", "/dashboard", None).expect("dashboard");
    assert_eq!(dash.status, 200);
    assert!(dash.body.contains("<svg"));
    let lower = dash.body.to_ascii_lowercase();
    for forbidden in ["http", "src=", "url(", "@import", "<script", "<link"] {
        assert!(
            !lower.contains(forbidden),
            "dashboard must be self-contained, found {forbidden:?}"
        );
    }

    // Build provenance: /version mirrors the ccp_build_info gauge.
    let version = fetch(addr, "GET", "/version", None).expect("version");
    assert_eq!(version.status, 200);
    let info = Json::parse(&version.body).expect("version JSON");
    for key in ["version", "git_sha", "profile"] {
        let value = info
            .get(key)
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("missing {key} in {info}"));
        assert!(!value.is_empty(), "{key} must be non-empty");
    }
    let scrape = fetch(addr, "GET", "/metrics", None).expect("metrics").body;
    assert!(
        scrape.contains("ccp_build_info{"),
        "build info gauge missing from scrape"
    );

    server.shutdown();
}

#[test]
fn profile_endpoint_samples_and_validates_input() {
    let mut server = Server::start(flight_config()).expect("start");
    let addr = server.addr();

    let bad = fetch(addr, "GET", "/profile?seconds=99", None).expect("bad seconds");
    assert_eq!(bad.status, 400);

    // Keep the worker threads busy so the sampler has something to see.
    let busy = std::thread::spawn(move || {
        for _ in 0..6 {
            let _ = fetch(addr, "POST", "/query", Some(r#"{"workload":"q1"}"#));
        }
    });
    let resp = fetch(addr, "GET", "/profile?seconds=1", None).expect("profile");
    busy.join().expect("busy client");
    assert_eq!(resp.status, 200, "{}", resp.body);
    // Collapsed stack lines are `thread;frame;... count`; without forced
    // frame pointers the stacks may be shallow, but each line must still
    // parse and end in a positive count.
    for line in resp.body.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("collapsed line shape");
        assert!(!stack.is_empty());
        assert!(count.parse::<u64>().expect("count parses") > 0);
    }

    server.shutdown();
}

#[test]
fn no_flight_disables_recorder_endpoints() {
    let config = ServerConfig {
        flight: false,
        ..flight_config()
    };
    let mut server = Server::start(config).expect("start");
    let addr = server.addr();

    for path in ["/timeline", "/dashboard"] {
        let resp = fetch(addr, "GET", path, None).expect("fetch");
        assert_eq!(resp.status, 404, "{path} must 404 with --no-flight");
    }
    // /version does not depend on the recorder.
    let version = fetch(addr, "GET", "/version", None).expect("version");
    assert_eq!(version.status, 200);

    server.shutdown();
}
