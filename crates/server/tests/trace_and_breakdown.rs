//! End-to-end tests of the observability surface over real sockets:
//! the per-query latency breakdown's arithmetic, the Chrome trace-event
//! export on `/trace`, per-CUID-class occupancy gauges on `/metrics`,
//! and deadline-based load shedding with `Retry-After`.

use ccp_server::{fetch, HttpClient, Json, Server, ServerConfig};
use std::sync::{Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// The tracer is process-global, so tests that emit or clear spans must
/// not interleave (`?clear=1` in one would erase another's events).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 1,
        oltp_workers: 1,
        scheduler_slots: 2,
        queue_capacity: 4,
        dataset_rows: 2_000,
        monitor_interval: Some(Duration::from_millis(10)),
        ..ServerConfig::default()
    }
}

fn breakdown_field(outcome: &Json, field: &str) -> u64 {
    outcome
        .get("breakdown")
        .and_then(|b| b.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("breakdown field {field} missing in {outcome:?}"))
}

/// The four breakdown phases never add up to more than the wall time the
/// client observed for the whole request — the invariant that makes the
/// breakdown trustworthy for "where did my latency go" questions.
#[test]
fn breakdown_sums_to_at_most_total_latency() {
    let _guard = serial();
    let mut server = Server::start(config()).expect("start");
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    for body in [
        r#"{"workload":"q1","threshold":100}"#,
        r#"{"workload":"q2","agg":"sum"}"#,
        r#"{"workload":"oltp","ops":200}"#,
    ] {
        let started = Instant::now();
        let resp = client.request("POST", "/query", Some(body)).expect("query");
        let total_us = started.elapsed().as_micros() as u64;
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let outcome = Json::parse(resp.body.trim()).expect("outcome JSON");
        let sum = breakdown_field(&outcome, "queue_us")
            + breakdown_field(&outcome, "schedule_us")
            + breakdown_field(&outcome, "bind_us")
            + breakdown_field(&outcome, "exec_us");
        assert!(
            sum <= total_us,
            "breakdown sum {sum}us exceeds client-observed total {total_us}us ({body})"
        );
    }
    server.shutdown();
}

/// `/trace` serves one self-contained Chrome trace-event document whose
/// spans cover every layer a query passes through: server routing,
/// admission, mask binding and the operator itself, all correlated by
/// the admission ticket in `args.query`.
#[test]
fn trace_endpoint_covers_all_layers() {
    let _guard = serial();
    let mut server = Server::start(config()).expect("start");
    let addr = server.addr();
    let resp = fetch(
        addr,
        "POST",
        "/query",
        Some(r#"{"workload":"q1","threshold":100}"#),
    )
    .expect("query");
    assert_eq!(resp.status, 200);

    let trace = fetch(addr, "GET", "/trace", None).expect("trace");
    assert_eq!(trace.status, 200);
    let doc = Json::parse(&trace.body).expect("/trace is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    let mut cats = Vec::new();
    let mut names = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph present");
        assert!(
            matches!(ph, "B" | "E" | "i" | "M"),
            "unexpected phase {ph:?}"
        );
        assert!(ev.get("tid").is_some(), "tid present");
        if ph == "M" {
            continue; // metadata events carry no cat/ts
        }
        assert!(ev.get("ts").and_then(Json::as_u64).is_some(), "ts numeric");
        if let Some(cat) = ev.get("cat").and_then(Json::as_str) {
            cats.push(cat.to_string());
        }
        if let Some(name) = ev.get("name").and_then(Json::as_str) {
            names.push(name.to_string());
        }
    }
    for layer in ["server", "admission", "bind", "op", "query"] {
        assert!(
            cats.iter().any(|c| c == layer),
            "no {layer:?} events in {cats:?}"
        );
    }
    assert!(
        names.iter().any(|n| n == "admission_wait"),
        "admission wait span present: {names:?}"
    );

    // `?clear=1` snapshots then resets: a second scrape has no query spans.
    let _ = fetch(addr, "GET", "/trace?clear=1", None).expect("clear");
    let after = fetch(addr, "GET", "/trace", None).expect("trace after clear");
    let doc = Json::parse(&after.body).expect("still valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing after clear");
    };
    assert!(
        !events
            .iter()
            .any(|e| { e.get("cat").and_then(Json::as_str) == Some("op") }),
        "operator spans survived ?clear=1"
    );
    server.shutdown();
}

/// Every `Connection: close` client costs the server one short-lived
/// handler thread; the tracer must recycle those threads' span rings
/// instead of registering a fresh 256 KiB ring per connection forever
/// (a scrape loop would otherwise OOM a long-running server).
#[test]
fn connection_churn_does_not_accumulate_trace_rings() {
    let _guard = serial();
    let mut server = Server::start(config()).expect("start");
    let addr = server.addr();
    const CONNS: usize = 40;
    for _ in 0..CONNS {
        // `fetch` opens a fresh connection and asks the server to close
        // it — exactly the per-request-thread churn pattern.
        let resp = fetch(addr, "GET", "/healthz", None).expect("healthz");
        assert_eq!(resp.status, 200);
    }
    let trace = fetch(addr, "GET", "/trace", None).expect("trace");
    let doc = Json::parse(&trace.body).expect("valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    // One `thread_name` metadata event per registered ring. Workers,
    // accept loop and a few overlapping connection handlers are fine;
    // one ring per connection ever handled is the leak this guards.
    let rings = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .count();
    assert!(
        rings < CONNS,
        "{rings} rings registered after {CONNS} sequential connections — \
         dead connection threads' rings are not being recycled"
    );
    server.shutdown();
}

/// The background sampler publishes per-CUID-class occupancy gauges into
/// the same registry `/metrics` scrapes — simulator-backed here, since
/// CI has no CMT hardware.
#[test]
fn metrics_expose_per_class_occupancy_gauges() {
    let _guard = serial();
    let mut server = Server::start(config()).expect("start");
    let addr = server.addr();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let scrape = fetch(addr, "GET", "/metrics", None).expect("scrape").body;
        let all_present = ["polluting", "sensitive", "mixed"]
            .iter()
            .all(|class| scrape.contains(&format!("ccp_llc_occupancy_bytes{{class=\"{class}\"}}")));
        if all_present {
            assert!(
                scrape.contains("ccp_mbm_total_bytes{class="),
                "bandwidth gauges ride along"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "occupancy gauges never appeared:\n{scrape}"
        );
        thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// A query that cannot get a slot before the configured deadline is
/// dequeued with `503` and told when to come back.
#[test]
fn deadline_sheds_load_with_retry_after() {
    let _guard = serial();
    let mut server = Server::start(ServerConfig {
        scheduler_slots: 1,
        queue_capacity: 4,
        enable_sleep_workload: true,
        queue_deadline: Some(Duration::from_millis(100)),
        dataset_rows: 64,
        ..config()
    })
    .expect("start");
    let addr = server.addr();
    let holder = thread::spawn(move || {
        fetch(
            addr,
            "POST",
            "/query",
            Some(r#"{"workload":"sleep","ms":800}"#),
        )
        .expect("holder")
    });
    thread::sleep(Duration::from_millis(250));

    let shed = fetch(
        addr,
        "POST",
        "/query",
        Some(r#"{"workload":"sleep","ms":10}"#),
    )
    .expect("shed");
    assert_eq!(shed.status, 503, "deadline expired -> 503: {}", shed.body);
    assert_eq!(
        shed.header("retry-after"),
        Some("1"),
        "Retry-After accompanies the 503"
    );
    assert!(shed.body.contains("timed out"), "body names the cause");

    assert_eq!(holder.join().unwrap().status, 200);
    let scrape = fetch(addr, "GET", "/metrics", None).expect("scrape").body;
    assert!(
        scrape.contains("ccp_admission_timeouts_total 1"),
        "timeout counted:\n{scrape}"
    );
    server.shutdown();
}

/// `/query` returns the admission ticket, and `/trace?ticket=N` narrows
/// the trace to exactly that query's spans: every remaining non-metadata
/// event carries `args.query == N`, and other queries' spans are gone.
#[test]
fn trace_ticket_filter_isolates_one_query() {
    let _guard = serial();
    let mut server = Server::start(config()).expect("start");
    let addr = server.addr();
    // Two queries → two distinct tickets in the rings.
    let first = fetch(
        addr,
        "POST",
        "/query",
        Some(r#"{"workload":"q1","threshold":100}"#),
    )
    .expect("first query");
    assert_eq!(first.status, 200);
    let second = fetch(
        addr,
        "POST",
        "/query",
        Some(r#"{"workload":"q1","threshold":100}"#),
    )
    .expect("second query");
    let outcome = Json::parse(&second.body).expect("query response is JSON");
    let ticket = outcome
        .get("ticket")
        .and_then(Json::as_u64)
        .expect("response carries the admission ticket");

    let trace = fetch(addr, "GET", &format!("/trace?ticket={ticket}"), None).expect("trace");
    assert_eq!(trace.status, 200);
    let doc = Json::parse(&trace.body).expect("filtered trace is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    let mut span_events = 0;
    for ev in events {
        // `B` and `i` events carry `args.query`; `E` closes its `B` and
        // `M` is thread metadata — neither repeats the id.
        if !matches!(ev.get("ph").and_then(Json::as_str), Some("B" | "i")) {
            continue;
        }
        span_events += 1;
        let id = ev
            .get("args")
            .and_then(|a| a.get("query"))
            .and_then(Json::as_u64);
        assert_eq!(id, Some(ticket), "foreign event in filtered trace: {ev:?}");
    }
    assert!(span_events > 0, "filter kept the query's own spans");

    // A malformed ticket is a clean 400, not a panic or a full dump.
    let bad = fetch(addr, "GET", "/trace?ticket=abc", None).expect("bad ticket");
    assert_eq!(bad.status, 400);
    server.shutdown();
}

/// `/stats` surfaces tracer ring health (satellite of the verify work:
/// the drop counter the model checker guards is now observable) and the
/// per-class admission view with its configured limits.
#[test]
fn stats_expose_trace_health_and_class_limits() {
    let _guard = serial();
    let mut cfg = config();
    cfg.class_queue_limits = ccp_server::ClassQueueLimits {
        polluting: Some(3),
        ..Default::default()
    };
    let mut server = Server::start(cfg).expect("start");
    let addr = server.addr();
    let resp = fetch(addr, "GET", "/stats", None).expect("stats");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.body).expect("/stats is valid JSON");

    let trace = doc.get("trace").expect("trace section present");
    assert!(
        matches!(trace.get("enabled"), Some(Json::Bool(true))),
        "tracer on by default: {trace:?}"
    );
    assert!(
        trace.get("rings").and_then(Json::as_u64).is_some(),
        "ring count numeric"
    );
    assert!(
        trace.get("dropped").and_then(Json::as_u64).is_some(),
        "drop counter numeric"
    );

    let classes = doc
        .get("admission")
        .and_then(|a| a.get("classes"))
        .expect("admission.classes present");
    let polluting = classes.get("polluting").expect("polluting class");
    assert_eq!(
        polluting.get("limit").and_then(Json::as_u64),
        Some(3),
        "configured cap surfaced"
    );
    assert_eq!(polluting.get("rejections").and_then(Json::as_u64), Some(0));
    let sensitive = classes.get("sensitive").expect("sensitive class");
    assert!(
        matches!(sensitive.get("limit"), Some(Json::Null)),
        "unlimited class renders null, got {sensitive:?}"
    );
    server.shutdown();
}
