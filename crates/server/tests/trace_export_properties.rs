//! Property test: whatever spans, instants and hostile names are pushed
//! through the tracer, `/trace`'s payload — the tracer's Chrome
//! trace-event export — must stay a valid, balanced JSON document that
//! this crate's own strict parser accepts (Perfetto is stricter still,
//! so this is a necessary condition for loadability).

use ccp_server::Json;
use ccp_trace::{TraceCat, TraceConfig};
use proptest::prelude::*;
use std::collections::HashMap;

const CATS: [TraceCat; 6] = [
    TraceCat::Server,
    TraceCat::Admission,
    TraceCat::Sched,
    TraceCat::Bind,
    TraceCat::Op,
    TraceCat::Query,
];

/// One randomized tracer interaction.
#[derive(Debug, Clone)]
enum Op {
    Open { cat: usize, name: String, id: u64 },
    Close,
    Instant { cat: usize, name: String, id: u64 },
}

/// Names built from arbitrary bytes: lossy decoding yields every
/// JSON-hostile shape — quotes, backslashes, control characters,
/// multi-byte code points, U+FFFD replacements — plus lengths past the
/// tracer's name truncation.
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..=255, 0..48)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..CATS.len(), name_strategy(), 0u64..u64::MAX).prop_map(|(cat, name, id)| Op::Open {
            cat,
            name,
            id
        }),
        Just(Op::Close),
        (0..CATS.len(), name_strategy(), 0u64..u64::MAX).prop_map(|(cat, name, id)| Op::Instant {
            cat,
            name,
            id
        }),
    ]
}

proptest! {
    #[test]
    fn export_is_valid_balanced_chrome_json(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        ccp_trace::enable(TraceConfig::default());
        ccp_trace::clear();
        let mut open = Vec::new();
        for op in ops {
            match op {
                Op::Open { cat, name, id } => {
                    open.push(ccp_trace::span_id(CATS[cat], &name, id));
                }
                Op::Close => {
                    open.pop();
                }
                Op::Instant { cat, name, id } => {
                    ccp_trace::instant_id(CATS[cat], &name, id);
                }
            }
        }
        drop(open); // close whatever is still running

        let json = ccp_trace::snapshot().to_chrome_json();
        let doc = Json::parse(&json).expect("export parses under the strict JSON parser");
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("traceEvents array missing in {json}");
        };
        prop_assert!(doc.get("otherData").is_some());

        // Per-tid B/E nesting must be balanced: never a close without an
        // open, nothing left open at the end of the document.
        let mut depth: HashMap<u64, i64> = HashMap::new();
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
            let tid = ev.get("tid").and_then(Json::as_u64).expect("tid");
            match ph {
                "B" => *depth.entry(tid).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(tid).or_insert(0);
                    *d -= 1;
                    prop_assert!(*d >= 0, "E without matching B on tid {}", tid);
                }
                "i" | "M" => {}
                other => panic!("unexpected phase {other:?}"),
            }
            if ph != "M" {
                prop_assert!(ev.get("ts").and_then(Json::as_u64).is_some());
                let cat = ev.get("cat").and_then(Json::as_str).expect("cat");
                prop_assert!(
                    ["server", "admission", "sched", "bind", "op", "query"].contains(&cat)
                );
            }
        }
        for (tid, d) in depth {
            prop_assert!(d == 0, "tid {} ended at depth {}", tid, d);
        }
    }
}
