//! Chaos integration over real sockets: with a bounded
//! `resctrl.write_schemata` fault window armed, the supervised
//! fake-resctrl engine keeps serving queries while binds fail, trips
//! its circuit breaker into degraded unpartitioned mode, and heals back
//! to partitioned once the background re-probe burns through the
//! window — with the whole episode visible in `/stats` and `/metrics`.

use ccp_server::{fetch, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Clears the process-global fault plan even when the test panics, so a
/// failure here cannot leak an armed failpoint into other tests.
struct PlanGuard;
impl Drop for PlanGuard {
    fn drop(&mut self) {
        ccp_fault::clear();
    }
}

fn stats(addr: SocketAddr) -> String {
    fetch(addr, "GET", "/stats", None).expect("stats").body
}

/// First sample of `name` in a Prometheus scrape.
fn scrape_value(scrape: &str, name: &str) -> f64 {
    scrape
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let (metric, value) = l.split_once(' ')?;
            (metric == name).then(|| value.parse().ok())?
        })
        .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
}

#[test]
fn write_faults_trip_degraded_mode_and_reprobe_heals() {
    let _plan = PlanGuard;
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 1,
        oltp_workers: 1,
        scheduler_slots: 2,
        dataset_rows: 64,
        fake_resctrl: true,
        reprobe_interval: Duration::from_millis(20),
        monitor_interval: None,
        // The repeated q1 must actually scan (and bind) every time;
        // with reuse on, repeats would be served from the cache and
        // the bind-fault window would never be consumed.
        no_reuse: true,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    let s = stats(addr);
    assert!(s.contains("\"supervised\":true"), "fake resctrl: {s}");
    assert!(s.contains("\"degraded\":false"), "healthy at start: {s}");

    // A window of 40 schemata-write failures: enough for three exhausted
    // ops (3 attempts each) to trip the breaker, small enough that the
    // 20ms re-probe loop (3 hits per probe) exhausts it within a second.
    ccp_fault::install_str("resctrl.write_schemata=err@1+40").expect("plan");

    // Queries keep succeeding while their binds fail — partitioning is
    // an optimization, never a gate — and the breaker eventually trips.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let r = fetch(addr, "POST", "/query", Some(r#"{"workload":"q1"}"#)).expect("query");
        assert_eq!(
            r.status, 200,
            "queries must survive bind faults: {}",
            r.body
        );
        if stats(addr).contains("\"degraded\":true") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker never tripped: {}",
            stats(addr)
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Degraded mode still serves queries (full cache, no binds).
    let r = fetch(addr, "POST", "/query", Some(r#"{"workload":"q1"}"#)).expect("query");
    assert_eq!(r.status, 200, "degraded mode serves queries: {}", r.body);

    // The re-probe loop burns through the fault window and restores
    // partitioned mode on the first genuine write success.
    let deadline = Instant::now() + Duration::from_secs(15);
    while stats(addr).contains("\"degraded\":true") {
        assert!(
            Instant::now() < deadline,
            "re-probe never healed: {}",
            stats(addr)
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Queries still succeed after the restore.
    let r = fetch(addr, "POST", "/query", Some(r#"{"workload":"q1"}"#)).expect("query");
    assert_eq!(r.status, 200, "restored mode serves queries: {}", r.body);

    // The whole episode is visible in one scrape: the gauge is back to
    // 0, and every stage left its counter trail.
    let scrape = fetch(addr, "GET", "/metrics", None).expect("scrape").body;
    assert_eq!(scrape_value(&scrape, "ccp_resctrl_degraded"), 0.0);
    assert!(scrape_value(&scrape, "ccp_resctrl_retries_total") >= 1.0);
    assert!(scrape_value(&scrape, "ccp_resctrl_op_failures_total") >= 3.0);
    assert!(scrape_value(&scrape, "ccp_resctrl_breaker_trips_total") >= 1.0);
    assert!(scrape_value(&scrape, "ccp_resctrl_reprobes_total") >= 1.0);
    assert!(scrape_value(&scrape, "ccp_resctrl_restores_total") >= 1.0);
    // No worker died through any of it.
    let panicked = scrape
        .lines()
        .filter(|l| l.starts_with("ccp_executor_jobs_panicked_total"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>();
    assert_eq!(panicked, 0.0, "no worker panics during the episode");

    server.shutdown();
}
