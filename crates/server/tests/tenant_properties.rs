//! Property tests for the tenant admission layer: quotas are arrival
//! gates that in-flight work can never exceed, and the weighted-fair
//! grant order both satisfies its local invariant (the picked tenant
//! minimizes virtual finish time `(grants+1)/weight`) and converges to
//! proportional shares (±1 grant) when every tenant stays backlogged.

use ccp_cachesim::HierarchyConfig;
use ccp_engine::{CacheAwareScheduler, CacheUsageClass, PartitionPolicy, SchedulerMetrics};
use ccp_obs::Registry;
use ccp_server::{
    AdmissionError, AdmissionQueue, FairShare, RunPermit, ServerMetrics, TenantLimits,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Fixed tenant universe — names are irrelevant to the properties, the
/// indices into this table are what the strategies generate.
const TENANTS: [&str; 3] = ["apex", "blue", "coral"];

fn queue_with(limits: TenantLimits) -> Arc<AdmissionQueue> {
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
    // Slots and capacity far above any generated stream so tenant
    // quotas are the only binding constraint.
    let scheduler = CacheAwareScheduler::new(policy, 128);
    let registry = Registry::new();
    Arc::new(
        AdmissionQueue::new(
            scheduler,
            128,
            SchedulerMetrics::new(),
            ServerMetrics::new(&registry),
        )
        .with_tenant_limits(limits),
    )
}

/// One step of an arrival stream: a tenant arrives wanting a permit, or
/// one of its in-flight permits completes.
#[derive(Clone, Copy, Debug)]
enum Op {
    Arrive(usize),
    Depart(usize),
}

fn op_strategy() -> BoxedStrategy<Op> {
    (0usize..TENANTS.len(), 0u32..2)
        .prop_map(|(t, arrive)| {
            if arrive == 1 {
                Op::Arrive(t)
            } else {
                Op::Depart(t)
            }
        })
        .boxed()
}

/// Per-tenant quota strategy: `0..=4` is a real quota, `5` means the
/// tenant runs unlimited (the vendored proptest has no `option::of`).
fn quota_of(raw: usize) -> Option<usize> {
    (raw < 5).then_some(raw)
}

proptest! {
    /// Grants never exceed quota: for every prefix of an arbitrary
    /// arrival/departure stream, each tenant's in-flight permit count
    /// stays at or under its quota, and an arrival is rejected with
    /// `QuotaExceeded` exactly when the tenant is at quota.
    #[test]
    fn quota_bounds_in_flight_under_arbitrary_streams(
        raw_quotas in proptest::collection::vec(0usize..6, 3..4),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let quotas: Vec<Option<usize>> = raw_quotas.iter().map(|&q| quota_of(q)).collect();
        let mut limits = TenantLimits::new();
        for (i, q) in quotas.iter().enumerate() {
            if let Some(q) = q {
                limits = limits.with_quota(TENANTS[i], *q);
            }
        }
        let queue = queue_with(limits);
        let mut held: Vec<Vec<RunPermit>> = vec![Vec::new(), Vec::new(), Vec::new()];

        for op in ops {
            match op {
                Op::Arrive(t) => {
                    let at_quota = quotas[t].is_some_and(|q| held[t].len() >= q);
                    // Polluting is always co-runnable, so with slots
                    // free the only thing that can say no is the quota.
                    let got = queue.acquire_tenant(
                        CacheUsageClass::Polluting,
                        TENANTS[t],
                        Some(Duration::ZERO),
                    );
                    match got {
                        Ok(permit) => {
                            prop_assert!(
                                !at_quota,
                                "{} admitted at quota {:?} with {} in flight",
                                TENANTS[t], quotas[t], held[t].len()
                            );
                            prop_assert_eq!(permit.tenant(), TENANTS[t]);
                            held[t].push(permit);
                        }
                        Err(AdmissionError::QuotaExceeded) => {
                            prop_assert!(
                                at_quota,
                                "{} rejected below quota {:?} with {} in flight",
                                TENANTS[t], quotas[t], held[t].len()
                            );
                        }
                        Err(e) => prop_assert!(false, "unexpected admission error: {e}"),
                    }
                }
                Op::Depart(t) => {
                    held[t].pop();
                }
            }
            // The queue's own ledger agrees with the model and never
            // shows a tenant above quota.
            for (i, permits) in held.iter().enumerate() {
                let running = queue
                    .running_by_tenant()
                    .into_iter()
                    .find(|(t, _)| t == TENANTS[i])
                    .map_or(0, |(_, n)| n);
                prop_assert_eq!(running, permits.len());
                if let Some(q) = quotas[i] {
                    prop_assert!(running <= q, "{} over quota {}", TENANTS[i], q);
                }
            }
        }
    }

    /// Local fairness invariant under arbitrary candidate sets: the
    /// winner is always drawn from the offered candidates, and no other
    /// candidate has a strictly smaller virtual finish time
    /// `(grants+1)/weight` (compared exactly via cross-multiplication).
    #[test]
    fn pick_minimizes_virtual_finish_time(
        weights in proptest::collection::vec(1u32..=5, 3..4),
        rounds in proptest::collection::vec(
            proptest::collection::vec(0usize..TENANTS.len(), 1..4), 1..80),
    ) {
        let mut fair = FairShare::new();
        for (round, present) in rounds.into_iter().enumerate() {
            let candidates: Vec<(u64, &str)> = present
                .iter()
                .map(|&t| ((round * TENANTS.len() + t) as u64, TENANTS[t]))
                .collect();
            let winner = fair.pick(&candidates, |t| {
                weights[TENANTS.iter().position(|&n| n == t).unwrap()]
            });
            let ticket = winner.expect("nonempty candidate set always yields a winner");
            let (_, name) = *candidates
                .iter()
                .find(|(tk, _)| *tk == ticket)
                .expect("winner must be one of the candidates");
            let wi = TENANTS.iter().position(|&n| n == name).unwrap();
            let wg = u128::from(fair.grants(name) + 1);
            let ww = u128::from(weights[wi]);
            for &(_, other) in &candidates {
                let oi = TENANTS.iter().position(|&n| n == other).unwrap();
                let og = u128::from(fair.grants(other) + 1);
                let ow = u128::from(weights[oi]);
                prop_assert!(
                    og * ww >= wg * ow,
                    "{} (g+1={}, w={}) beat winner {} (g+1={}, w={})",
                    other, og, ow, name, wg, ww
                );
            }
            fair.record_grant(name);
        }
    }

    /// Proportional convergence when everyone is backlogged: grants
    /// proceed in sorted virtual-finish order, so after any whole
    /// number of periods (`G = m * W`, `W = Σw`) the split is *exact*
    /// (`m * w` each), and mid-period each tenant's count stays inside
    /// `[m*w, (m+1)*w]` — i.e. never deviates from the ideal
    /// `G * w / W` by more than its own weight.
    #[test]
    fn backlogged_weights_converge_to_proportional_shares(
        weights in proptest::collection::vec(1u32..=5, 3..4),
        total in 1u64..=120,
    ) {
        let mut fair = FairShare::new();
        let period: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        for g in 0..total {
            let candidates: Vec<(u64, &str)> = TENANTS
                .iter()
                .enumerate()
                .map(|(i, &t)| (g * TENANTS.len() as u64 + i as u64, t))
                .collect();
            let ticket = fair
                .pick(&candidates, |t| {
                    weights[TENANTS.iter().position(|&n| n == t).unwrap()]
                })
                .expect("backlogged candidates always yield a winner");
            let (_, name) = *candidates.iter().find(|(tk, _)| *tk == ticket).unwrap();
            fair.record_grant(name);

            let granted = g + 1;
            for (i, &t) in TENANTS.iter().enumerate() {
                let got = fair.grants(t);
                let w = u64::from(weights[i]);
                let ideal_num = granted * w; // ideal = ideal_num / period
                // |got - ideal| <= w  ⇔  |got * period - ideal_num| <= w * period
                let dev = (got * period) as i128 - ideal_num as i128;
                prop_assert!(
                    dev.unsigned_abs() <= u128::from(w * period),
                    "after {} grants {} holds {}, ideal {}/{}",
                    granted, t, got, ideal_num, period
                );
                if granted % period == 0 {
                    prop_assert_eq!(
                        got,
                        granted / period * u64::from(weights[i]),
                        "whole periods split exactly"
                    );
                }
            }
        }
    }
}
