//! Admission-control integration test over real sockets: saturate the
//! bounded queue with slow queries and watch the server push back with
//! `429`, count every rejection in the scrape, and still drain cleanly
//! on shutdown.

use ccp_server::{fetch, Server, ServerConfig};
use std::thread;
use std::time::Duration;

fn backpressure_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        olap_workers: 1,
        oltp_workers: 1,
        // One query runs, two wait, everything else bounces.
        scheduler_slots: 1,
        queue_capacity: 2,
        dataset_rows: 64,
        enable_sleep_workload: true,
        ..ServerConfig::default()
    }
}

#[test]
fn saturated_queue_returns_429_and_counts_rejections() {
    let mut server = Server::start(backpressure_config()).expect("start");
    let addr = server.addr();

    // Occupy the single slot with a long sleep, then give the handler
    // time to take it.
    let holder = thread::spawn(move || {
        fetch(
            addr,
            "POST",
            "/query",
            Some(r#"{"workload":"sleep","ms":1200}"#),
        )
        .expect("holder")
    });
    thread::sleep(Duration::from_millis(300));

    // Ten more slow queries compete for 2 queue seats: at most two can
    // wait, the rest must be rejected immediately with 429.
    let mut clients = Vec::new();
    for _ in 0..10 {
        clients.push(thread::spawn(move || {
            fetch(
                addr,
                "POST",
                "/query",
                Some(r#"{"workload":"sleep","ms":50}"#),
            )
            .expect("client")
            .status
        }));
    }
    let mut statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    statuses.push(holder.join().unwrap().status);

    let rejected = statuses.iter().filter(|&&s| s == 429).count();
    let served = statuses.iter().filter(|&&s| s == 200).count();
    assert!(
        rejected >= 8,
        "queue of 2 cannot absorb 10 concurrent arrivals: {statuses:?}"
    );
    assert!(served >= 3, "holder + queued queries succeed: {statuses:?}");
    assert_eq!(
        rejected + served,
        statuses.len(),
        "only 200/429: {statuses:?}"
    );

    // Backpressure is visible in the Prometheus scrape.
    let scrape = fetch(addr, "GET", "/metrics", None).expect("scrape").body;
    let rejections: u64 = scrape
        .lines()
        .find(|l| l.starts_with("ccp_server_admission_rejections_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("rejection counter present");
    assert_eq!(rejections, rejected as u64, "every 429 counted");
    assert!(
        scrape.contains("ccp_server_requests_total{endpoint=\"/query\",status=\"429\"}"),
        "429s labeled on the request counter"
    );
    assert!(
        scrape.contains("ccp_server_requests_total{endpoint=\"/query\",status=\"200\"}"),
        "successes labeled too"
    );

    // Shutdown drains cleanly (bounded wait inside) even right after a
    // saturation burst.
    server.shutdown();
}

#[test]
fn draining_server_rejects_with_503() {
    let mut server = Server::start(backpressure_config()).expect("start");
    let addr = server.addr();

    // Hold the slot, then a waiter occupies a queue seat.
    let holder = thread::spawn(move || {
        fetch(
            addr,
            "POST",
            "/query",
            Some(r#"{"workload":"sleep","ms":900}"#),
        )
        .expect("holder")
    });
    thread::sleep(Duration::from_millis(250));
    let waiter = thread::spawn(move || {
        fetch(
            addr,
            "POST",
            "/query",
            Some(r#"{"workload":"sleep","ms":10}"#),
        )
        .expect("waiter")
    });
    thread::sleep(Duration::from_millis(150));

    // Shutdown from another thread while queries are in flight: the
    // holder finishes, the queued waiter is woken with 503, and
    // `shutdown()` only returns once connections have drained.
    server.shutdown();
    let holder_status = holder.join().unwrap().status;
    let waiter_status = waiter.join().unwrap().status;
    assert_eq!(holder_status, 200, "running query finishes during drain");
    assert_eq!(waiter_status, 503, "queued query is released with 503");
}
