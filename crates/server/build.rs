//! Bakes build provenance into the binary for `ccp_build_info` and
//! `GET /version`: the short git SHA (or "unknown" outside a checkout)
//! and the cargo profile. Benchmark reports embed both, so a p95 number
//! can always be traced back to the exact build that produced it.

use std::process::Command;

fn main() {
    let sha = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=CCP_GIT_SHA={sha}");
    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".to_string());
    println!("cargo:rustc-env=CCP_BUILD_PROFILE={profile}");
    // Re-run when HEAD moves so the SHA stays honest.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=build.rs");
}
