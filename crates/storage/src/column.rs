//! Dictionary-encoded columns.
//!
//! A [`DictColumn`] is the unit of storage: an order-preserving
//! [`Dictionary`] plus a [`PackedCodeVector`] of per-row codes. Range scans
//! run on the packed codes without decompression; materializing operators
//! decode through the dictionary.

use crate::bitpack::PackedCodeVector;
use crate::dict::{DictEntrySize, Dictionary};
use std::ops::Bound;

/// One dictionary-encoded column.
#[derive(Debug, Clone)]
pub struct DictColumn<T: Ord> {
    dict: Dictionary<T>,
    codes: PackedCodeVector,
}

impl<T: Ord + Clone> DictColumn<T> {
    /// Encodes `values` into a fresh column.
    pub fn build(values: &[T]) -> Self {
        let dict = Dictionary::build(values.to_vec());
        let bits = dict.code_bits();
        let mut codes = PackedCodeVector::with_capacity(bits, values.len());
        for v in values {
            let code = dict
                .encode(v)
                .expect("dictionary was built from these values");
            codes.push(code);
        }
        DictColumn { dict, codes }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The column's dictionary.
    pub fn dict(&self) -> &Dictionary<T> {
        &self.dict
    }

    /// The packed code vector.
    pub fn codes(&self) -> &PackedCodeVector {
        &self.codes
    }

    /// Dictionary code of row `idx`.
    pub fn code_at(&self, idx: usize) -> u32 {
        self.codes.get(idx)
    }

    /// Decoded value of row `idx`.
    pub fn value_at(&self, idx: usize) -> &T {
        self.dict.decode(self.codes.get(idx))
    }

    /// Counts rows whose value lies in the given bounds, operating entirely
    /// on compressed data (the paper's Query 1 kernel).
    pub fn count_range(&self, lo: Bound<&T>, hi: Bound<&T>) -> u64 {
        let code_range = self.dict.code_range(lo, hi);
        self.codes.count_in_range(code_range)
    }
}

impl<T: Ord + Clone + DictEntrySize> DictColumn<T> {
    /// Dictionary footprint in bytes.
    pub fn dict_bytes(&self) -> u64 {
        self.dict.size_bytes()
    }

    /// Packed data footprint in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.codes.packed_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_roundtrip() {
        let values = vec![5i64, 3, 9, 3, 5, 1];
        let col = DictColumn::build(&values);
        assert_eq!(col.len(), 6);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(col.value_at(i), v);
        }
    }

    #[test]
    fn count_range_on_compressed_data() {
        let values: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let col = DictColumn::build(&values);
        // value > 49  -> 50 distinct values x 10 rows each.
        assert_eq!(col.count_range(Bound::Excluded(&49), Bound::Unbounded), 500);
        // 10 <= value < 20 -> 100 rows.
        assert_eq!(
            col.count_range(Bound::Included(&10), Bound::Excluded(&20)),
            100
        );
        // Out-of-domain predicate.
        assert_eq!(col.count_range(Bound::Excluded(&99), Bound::Unbounded), 0);
    }

    #[test]
    fn compression_uses_code_bits() {
        // 100 distinct values -> 7 bits/code; 1000 rows ~ 875 bytes,
        // far below the 8000 bytes of raw i64 storage.
        let values: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let col = DictColumn::build(&values);
        assert_eq!(col.codes().bits(), 7);
        assert!(col.data_bytes() < 1000);
        assert_eq!(col.dict_bytes(), 800);
    }

    #[test]
    fn code_at_matches_dictionary_order() {
        let col = DictColumn::build(&[30i64, 10, 20]);
        assert_eq!(col.code_at(0), 2);
        assert_eq!(col.code_at(1), 0);
        assert_eq!(col.code_at(2), 1);
    }

    #[test]
    fn string_columns_work() {
        let values: Vec<String> = ["cherry", "apple", "banana", "apple"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let col = DictColumn::build(&values);
        assert_eq!(col.value_at(1), "apple");
        assert_eq!(
            col.count_range(
                Bound::Included(&"apple".to_string()),
                Bound::Excluded(&"c".to_string())
            ),
            3
        );
    }
}
