//! Seeded data generators reproducing the paper's data sets (Section III-B).
//!
//! All generators take an explicit seed and use `StdRng`, so every
//! experiment is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// `n` integers drawn uniformly from `1..=max` — the paper's Query 1 column
/// (`10⁹` values in `1..=10⁶`) and Query 2 columns use this distribution.
pub fn uniform_ints(n: usize, max: i64, seed: u64) -> Vec<i64> {
    assert!(max >= 1, "max must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(1..=max)).collect()
}

/// A shuffled permutation of `1..=n` — the paper's Query 3 primary-key
/// column (distinct keys covering the full range).
pub fn primary_keys(n: usize, seed: u64) -> Vec<i64> {
    let mut keys: Vec<i64> = (1..=n as i64).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    keys
}

/// `n` foreign keys referencing a primary-key domain `1..=pk_max` —
/// the paper's Query 3 probe column (`10⁹` keys referencing `P`).
pub fn foreign_keys(n: usize, pk_max: i64, seed: u64) -> Vec<i64> {
    uniform_ints(n, pk_max, seed)
}

/// Strings of the given byte length with `distinct` distinct values —
/// models the NVARCHAR dictionaries of the S/4HANA ACDOCA table. Values
/// are zero-padded decimals so lexicographic order matches numeric order.
pub fn string_values(n: usize, distinct: usize, value_len: usize, seed: u64) -> Vec<String> {
    assert!(distinct >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let v = rng.gen_range(0..distinct);
            format!("{v:0value_len$}")
        })
        .collect()
}

/// The number of distinct values that makes an `i64` dictionary occupy
/// roughly `bytes` bytes (8 bytes per entry) — used to hit the paper's
/// 4 MiB / 40 MiB / 400 MiB dictionary sizes exactly.
pub fn distinct_for_dict_bytes(bytes: u64) -> usize {
    (bytes / 8).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_seed_deterministic_and_in_range() {
        let a = uniform_ints(1000, 100, 42);
        let b = uniform_ints(1000, 100, 42);
        let c = uniform_ints(1000, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (1..=100).contains(&v)));
    }

    #[test]
    fn uniform_covers_domain() {
        let v = uniform_ints(10_000, 10, 7);
        for d in 1..=10i64 {
            assert!(v.contains(&d), "value {d} never drawn");
        }
    }

    #[test]
    fn primary_keys_are_a_permutation() {
        let pk = primary_keys(1000, 1);
        let mut sorted = pk.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=1000).collect::<Vec<i64>>());
        // Shuffled, not identity.
        assert_ne!(pk, sorted);
    }

    #[test]
    fn foreign_keys_reference_domain() {
        let fk = foreign_keys(5000, 100, 3);
        assert!(fk.iter().all(|&v| (1..=100).contains(&v)));
    }

    #[test]
    fn string_values_have_bounded_cardinality() {
        let s = string_values(1000, 10, 20, 5);
        let mut distinct: Vec<&String> = s.iter().collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() <= 10);
        assert!(s.iter().all(|v| v.len() == 20));
    }

    #[test]
    fn dict_sizing_matches_paper() {
        // 4 MiB dictionary of i64 -> ~half a million entries... the paper's
        // 10^6 distinct 4-byte ints give 4 MB; with 8-byte entries we halve
        // the count to keep the byte size identical.
        assert_eq!(distinct_for_dict_bytes(4 * 1024 * 1024), 524_288);
        assert_eq!(distinct_for_dict_bytes(8), 1);
    }
}
