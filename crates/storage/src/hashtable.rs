//! Open-addressing aggregation hash table.
//!
//! The paper's *aggregation with grouping* keeps one such table per worker
//! thread for local pre-aggregation plus a global table for the merge
//! (Section II, Section III-A Query 2). Keys are dictionary codes of the
//! grouping column; each slot carries the running aggregate. Linear probing
//! over a power-of-two table keeps the probe sequence short and the memory
//! layout flat, so the table's cache footprint is simply
//! `capacity × slot size` — the quantity the paper relates to the LLC size.

/// Aggregate functions supported by the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Running maximum (the paper's Query 2 uses `MAX(B.V)`).
    Max,
    /// Running minimum.
    Min,
    /// Sum of values.
    Sum,
    /// Row count per group.
    Count,
}

/// One slot: group key (dictionary code), aggregate accumulator, row count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    key: u32,
    acc: i64,
    count: u64,
}

const EMPTY_KEY: u32 = u32::MAX;

/// Open-addressing (linear probing) hash table keyed by `u32` group codes.
#[derive(Debug, Clone)]
pub struct AggHashTable {
    slots: Vec<Slot>,
    mask: usize,
    len: usize,
    agg: Aggregate,
}

/// Fibonacci hashing: cheap, good spread for dense dictionary codes.
#[inline]
fn hash(key: u32) -> u64 {
    u64::from(key).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl AggHashTable {
    /// Creates a table able to hold `expected_groups` without resizing
    /// (capacity = next power of two ≥ 2 × expected, for ≤ 50 % load).
    pub fn new(agg: Aggregate, expected_groups: usize) -> Self {
        let cap = (expected_groups.max(8) * 2).next_power_of_two();
        AggHashTable {
            slots: vec![
                Slot {
                    key: EMPTY_KEY,
                    acc: 0,
                    count: 0
                };
                cap
            ],
            mask: cap - 1,
            len: 0,
            agg,
        }
    }

    /// Number of distinct groups present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no group has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Table footprint in bytes — what competes for the LLC.
    pub fn size_bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<Slot>()) as u64
    }

    /// The slot index `key` hashes to (before probing). Exposed so the
    /// simulated operator can model the table's access pattern faithfully.
    #[inline]
    pub fn home_slot(&self, key: u32) -> usize {
        (hash(key) as usize) & self.mask
    }

    /// Size of one slot in bytes.
    pub const fn slot_bytes() -> usize {
        std::mem::size_of::<Slot>()
    }

    /// Folds `value` into group `key`, inserting the group if new.
    /// Grows the table when load exceeds 50 %.
    pub fn update(&mut self, key: u32, value: i64) {
        debug_assert!(key != EMPTY_KEY, "key {EMPTY_KEY:#x} is reserved");
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let agg = self.agg;
        let mask = self.mask;
        let mut idx = self.home_slot(key);
        loop {
            let slot = &mut self.slots[idx];
            if slot.key == key {
                slot.acc = Self::fold(agg, slot.acc, value);
                slot.count += 1;
                return;
            }
            if slot.key == EMPTY_KEY {
                *slot = Slot {
                    key,
                    acc: Self::init(agg, value),
                    count: 1,
                };
                self.len += 1;
                return;
            }
            idx = (idx + 1) & mask;
        }
    }

    #[inline]
    fn init(agg: Aggregate, value: i64) -> i64 {
        match agg {
            Aggregate::Max | Aggregate::Min | Aggregate::Sum => value,
            Aggregate::Count => 1,
        }
    }

    #[inline]
    fn fold(agg: Aggregate, acc: i64, value: i64) -> i64 {
        match agg {
            Aggregate::Max => acc.max(value),
            Aggregate::Min => acc.min(value),
            Aggregate::Sum => acc + value,
            Aggregate::Count => acc + 1,
        }
    }

    /// Looks up the aggregate of group `key`.
    pub fn get(&self, key: u32) -> Option<i64> {
        let mut idx = self.home_slot(key);
        loop {
            let slot = &self.slots[idx];
            if slot.key == key {
                return Some(slot.acc);
            }
            if slot.key == EMPTY_KEY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Iterates over `(group key, aggregate, count)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, i64, u64)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.key != EMPTY_KEY)
            .map(|s| (s.key, s.acc, s.count))
    }

    /// Merges `other` into `self` — the paper's global merge step after
    /// thread-local pre-aggregation.
    pub fn merge(&mut self, other: &AggHashTable) {
        debug_assert_eq!(self.agg, other.agg, "cannot merge different aggregates");
        for (key, acc, count) in other.iter() {
            self.merge_one(key, acc, count);
        }
    }

    fn merge_one(&mut self, key: u32, acc: i64, count: u64) {
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let agg = self.agg;
        let mut idx = self.home_slot(key);
        loop {
            let slot = &mut self.slots[idx];
            if slot.key == key {
                slot.acc = match agg {
                    Aggregate::Max => slot.acc.max(acc),
                    Aggregate::Min => slot.acc.min(acc),
                    Aggregate::Sum | Aggregate::Count => slot.acc + acc,
                };
                slot.count += count;
                return;
            }
            if slot.key == EMPTY_KEY {
                *slot = Slot { key, acc, count };
                self.len += 1;
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    key: EMPTY_KEY,
                    acc: 0,
                    count: 0
                };
                new_cap
            ],
        );
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for s in old {
            if s.key != EMPTY_KEY {
                self.merge_one(s.key, s.acc, s.count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_aggregation() {
        let mut t = AggHashTable::new(Aggregate::Max, 4);
        t.update(1, 10);
        t.update(1, 30);
        t.update(1, 20);
        t.update(2, -5);
        assert_eq!(t.get(1), Some(30));
        assert_eq!(t.get(2), Some(-5));
        assert_eq!(t.get(3), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sum_min_count() {
        let mut sum = AggHashTable::new(Aggregate::Sum, 4);
        let mut min = AggHashTable::new(Aggregate::Min, 4);
        let mut cnt = AggHashTable::new(Aggregate::Count, 4);
        for v in [5i64, -3, 8] {
            sum.update(0, v);
            min.update(0, v);
            cnt.update(0, v);
        }
        assert_eq!(sum.get(0), Some(10));
        assert_eq!(min.get(0), Some(-3));
        assert_eq!(cnt.get(0), Some(3));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = AggHashTable::new(Aggregate::Sum, 8);
        let initial_cap = t.capacity();
        for k in 0..10_000u32 {
            t.update(k, 1);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.capacity() > initial_cap);
        // Every group is still reachable after growth rehashing.
        for k in (0..10_000).step_by(97) {
            assert_eq!(t.get(k), Some(1), "group {k} lost in rehash");
        }
    }

    #[test]
    fn merge_combines_thread_local_tables() {
        let mut global = AggHashTable::new(Aggregate::Max, 16);
        let mut local_a = AggHashTable::new(Aggregate::Max, 16);
        let mut local_b = AggHashTable::new(Aggregate::Max, 16);
        local_a.update(1, 10);
        local_a.update(2, 20);
        local_b.update(2, 25);
        local_b.update(3, 30);
        global.merge(&local_a);
        global.merge(&local_b);
        assert_eq!(global.get(1), Some(10));
        assert_eq!(global.get(2), Some(25));
        assert_eq!(global.get(3), Some(30));
        assert_eq!(global.len(), 3);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = AggHashTable::new(Aggregate::Sum, 4);
        let mut b = AggHashTable::new(Aggregate::Sum, 4);
        a.update(7, 1);
        a.update(7, 1);
        b.update(7, 3);
        a.merge(&b);
        let (_, acc, count) = a.iter().find(|(k, _, _)| *k == 7).unwrap();
        assert_eq!(acc, 5);
        assert_eq!(count, 3);
    }

    #[test]
    fn footprint_scales_with_capacity() {
        // The paper's rule of thumb: footprint ∝ number of groups.
        let small = AggHashTable::new(Aggregate::Max, 100);
        let large = AggHashTable::new(Aggregate::Max, 100_000);
        assert!(large.size_bytes() > 500 * small.size_bytes());
        assert_eq!(AggHashTable::slot_bytes(), 24);
    }

    #[test]
    fn iter_yields_all_groups() {
        let mut t = AggHashTable::new(Aggregate::Count, 4);
        for k in 0..100u32 {
            t.update(k, 0);
        }
        let mut keys: Vec<u32> = t.iter().map(|(k, _, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }
}
