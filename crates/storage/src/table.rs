//! Column tables: named collections of dictionary-encoded columns.

use crate::column::DictColumn;
use crate::invindex::InvertedIndex;

/// A column of either integer or string type.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integer column.
    Int(DictColumn<i64>),
    /// String column (models the paper's NVARCHAR attributes).
    Str(DictColumn<String>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(c) => c.len(),
            Column::Str(c) => c.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dictionary footprint in bytes.
    pub fn dict_bytes(&self) -> u64 {
        match self {
            Column::Int(c) => c.dict_bytes(),
            Column::Str(c) => c.dict_bytes(),
        }
    }

    /// Packed data footprint in bytes.
    pub fn data_bytes(&self) -> u64 {
        match self {
            Column::Int(c) => c.data_bytes(),
            Column::Str(c) => c.data_bytes(),
        }
    }

    /// Builds an inverted index over this column's codes.
    pub fn build_index(&self) -> InvertedIndex {
        match self {
            Column::Int(c) => InvertedIndex::build(c.codes().iter(), c.dict().len()),
            Column::Str(c) => InvertedIndex::build(c.codes().iter(), c.dict().len()),
        }
    }
}

/// A named table of columns, all with the same row count.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    columns: Vec<(String, Column)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a column.
    ///
    /// # Panics
    /// Panics when the row count differs from existing columns or the name
    /// is duplicated — schema construction errors.
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> &mut Self {
        let name = name.into();
        assert!(
            self.columns.iter().all(|(n, _)| *n != name),
            "duplicate column name {name:?} in table {:?}",
            self.name
        );
        if let Some((_, first)) = self.columns.first() {
            assert_eq!(
                first.len(),
                col.len(),
                "column {name:?} row count mismatch in table {:?}",
                self.name
            );
        }
        self.columns.push((name, col));
        self
    }

    /// Number of rows (0 for a table without columns).
    pub fn row_count(&self) -> usize {
        self.columns.first().map(|(_, c)| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Looks a column up by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Iterates `(name, column)` in insertion order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Total dictionary bytes across all columns (the OLTP working-set
    /// metric of Section VI-E).
    pub fn total_dict_bytes(&self) -> u64 {
        self.columns.iter().map(|(_, c)| c.dict_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(values: &[i64]) -> Column {
        Column::Int(DictColumn::build(values))
    }

    #[test]
    fn schema_construction() {
        let mut t = Table::new("A");
        t.add_column("X", int_col(&[1, 2, 3]));
        t.add_column("Y", int_col(&[4, 5, 6]));
        assert_eq!(t.name(), "A");
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 2);
        assert!(t.column("X").is_some());
        assert!(t.column("Z").is_none());
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_row_counts_rejected() {
        let mut t = Table::new("A");
        t.add_column("X", int_col(&[1, 2, 3]));
        t.add_column("Y", int_col(&[4]));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        let mut t = Table::new("A");
        t.add_column("X", int_col(&[1]));
        t.add_column("X", int_col(&[2]));
    }

    #[test]
    fn string_columns_and_dict_totals() {
        let mut t = Table::new("ACDOCA-mini");
        t.add_column("K", int_col(&[1, 2, 3]));
        t.add_column(
            "TXT",
            Column::Str(DictColumn::build(&[
                "aaa".to_string(),
                "bbb".to_string(),
                "aaa".to_string(),
            ])),
        );
        assert!(t.total_dict_bytes() > 0);
        let idx = t.column("TXT").unwrap().build_index();
        assert_eq!(idx.lookup(0), &[0, 2]); // "aaa" rows
    }
}
