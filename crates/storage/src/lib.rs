//! # ccp-storage
//!
//! The in-memory column-store substrate beneath the execution engine,
//! implementing the data structures the paper's Section II describes as the
//! cache-relevant core of SAP HANA's engine:
//!
//! * **Order-preserving dictionaries** ([`dict`]) — every column stores
//!   small integer *codes* instead of values; because the dictionary is
//!   sorted, range predicates can be evaluated entirely on compressed data.
//! * **Bit-packed code vectors** ([`bitpack`]) — codes are packed into
//!   ⌈log₂ |dict|⌉ bits each (the paper's 10⁶-value column packs into
//!   20 bits), scanned word-at-a-time.
//! * **Aggregation hash tables** ([`hashtable`]) — open-addressing tables
//!   used per worker thread and for the global merge.
//! * **Join bit vectors** ([`bitvec`]) — the compact primary-key
//!   representation of the OLAP foreign-key join.
//! * **Inverted indexes** ([`invindex`]) — code → row-id postings used by
//!   the OLTP point query.
//! * **Column tables and generators** ([`mod@column`], [`table`], [`gen`]) —
//!   the glue plus the paper's exact data-set distributions.

pub mod bitpack;
pub mod bitvec;
pub mod column;
pub mod dict;
pub mod gen;
pub mod hashtable;
pub mod invindex;
pub mod rle;
pub mod table;

pub use bitpack::PackedCodeVector;
pub use bitvec::BitVec;
pub use column::DictColumn;
pub use dict::Dictionary;
pub use hashtable::{AggHashTable, Aggregate};
pub use invindex::InvertedIndex;
pub use rle::RleVector;
pub use table::{Column, Table};
