//! Join bit vectors.
//!
//! The OLAP-optimized foreign-key join (paper Section II/III-A, Query 3)
//! maps the primary-key range `1..=N` to a bit vector of `N` bits: bit `i`
//! is set when primary key `i` qualifies. Probing a foreign key is a single
//! random bit test — the data structure whose size relative to the LLC
//! decides whether the join is cache-polluting or cache-sensitive.

/// A fixed-size bit vector backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: u64,
}

impl BitVec {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: u64) -> Self {
        BitVec {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes — 10⁸ primary keys cost 12.5 MB, the paper's
    /// "comparable to the LLC" case.
    pub fn size_bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics on out-of-range `i`.
    #[inline]
    pub fn set(&mut self, i: u64) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics on out-of-range `i`.
    #[inline]
    pub fn clear(&mut self, i: u64) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    /// Panics on out-of-range `i`.
    #[inline]
    pub fn get(&self, i: u64) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Byte offset (into the backing storage) of the word containing bit
    /// `i` — used by the simulated join to compute the address it touches.
    #[inline]
    pub fn byte_of_bit(&self, i: u64) -> u64 {
        (i / 64) * 8
    }

    /// Raw words (read-only).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitVec::zeros(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        b.clear(64);
        assert!(!b.get(64));
    }

    #[test]
    fn count_ones() {
        let mut b = BitVec::zeros(1000);
        for i in (0..1000).step_by(3) {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 334);
    }

    #[test]
    fn size_matches_paper_cases() {
        // 10^8 keys -> 12.5 MB (paper Section IV-C).
        let b = BitVec::zeros(100_000_000);
        assert_eq!(b.size_bytes(), 12_500_000);
        // 10^6 keys -> 125 KB, "almost fits in the L2 cache".
        let b = BitVec::zeros(1_000_000);
        assert_eq!(b.size_bytes(), 125_000);
    }

    #[test]
    fn byte_of_bit_addresses_words() {
        let b = BitVec::zeros(256);
        assert_eq!(b.byte_of_bit(0), 0);
        assert_eq!(b.byte_of_bit(63), 0);
        assert_eq!(b.byte_of_bit(64), 8);
        assert_eq!(b.byte_of_bit(255), 24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn empty_vector() {
        let b = BitVec::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.size_bytes(), 0);
    }
}
