//! Run-length encoding over dictionary codes.
//!
//! The paper notes (Section II) that beyond dictionary encoding "each
//! column can be further compressed using different compression methods".
//! Run-length encoding is the workhorse for sorted or low-cardinality
//! columns: consecutive equal codes collapse into `(code, run length)`
//! pairs, and range predicates are evaluated per *run* instead of per row
//! — a scan over an RLE column touches orders of magnitude less memory,
//! changing its cache/bandwidth profile entirely.

/// A run-length encoded sequence of dictionary codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleVector {
    /// `(code, run length)` pairs in row order.
    runs: Vec<(u32, u32)>,
    len: usize,
}

impl RleVector {
    /// Encodes a code sequence.
    pub fn from_codes(codes: impl IntoIterator<Item = u32>) -> Self {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        let mut len = 0usize;
        for c in codes {
            len += 1;
            match runs.last_mut() {
                Some((code, run)) if *code == c && *run < u32::MAX => *run += 1,
                _ => runs.push((c, 1)),
            }
        }
        RleVector { runs, len }
    }

    /// Number of rows represented.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (the compressed length).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> u64 {
        (self.runs.len() * std::mem::size_of::<(u32, u32)>()) as u64
    }

    /// Compression ratio versus 4-byte codes (higher is better).
    pub fn compression_ratio(&self) -> f64 {
        if self.runs.is_empty() {
            return 1.0;
        }
        (self.len * 4) as f64 / self.compressed_bytes() as f64
    }

    /// The code at row `idx` (O(log runs) via prefix sums would be better
    /// for hot paths; scans never need it).
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    pub fn get(&self, idx: usize) -> u32 {
        assert!(idx < self.len, "row {idx} out of bounds (len {})", self.len);
        let mut remaining = idx;
        for &(code, run) in &self.runs {
            if remaining < run as usize {
                return code;
            }
            remaining -= run as usize;
        }
        unreachable!("runs sum to len")
    }

    /// Iterates all codes, expanded.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs
            .iter()
            .flat_map(|&(code, run)| std::iter::repeat_n(code, run as usize))
    }

    /// Counts rows whose code lies in `[lo, hi)` — per *run*, which is the
    /// whole point: a predicate over a billion-row RLE column costs one
    /// comparison per run.
    pub fn count_in_range(&self, range: std::ops::Range<u32>) -> u64 {
        self.runs
            .iter()
            .filter(|(code, _)| range.contains(code))
            .map(|&(_, run)| u64::from(run))
            .sum()
    }

    /// The runs, raw.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }
}

impl FromIterator<u32> for RleVector {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Self::from_codes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_sequence() {
        let codes = vec![1u32, 1, 1, 2, 2, 7, 7, 7, 7, 0];
        let rle = RleVector::from_codes(codes.clone());
        assert_eq!(rle.len(), 10);
        assert_eq!(rle.run_count(), 4);
        assert_eq!(rle.iter().collect::<Vec<_>>(), codes);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(rle.get(i), c);
        }
    }

    #[test]
    fn sorted_data_compresses_massively() {
        // A sorted column of 100k rows over 10 values: 10 runs.
        let codes = (0..100_000u32).map(|i| i / 10_000);
        let rle = RleVector::from_codes(codes);
        assert_eq!(rle.run_count(), 10);
        assert!(rle.compression_ratio() > 4_000.0);
    }

    #[test]
    fn random_data_does_not_compress() {
        let codes: Vec<u32> = (0..1000)
            .map(|i| (i * 2_654_435_761u64 % 97) as u32)
            .collect();
        let rle = RleVector::from_codes(codes.clone());
        assert!(rle.run_count() as f64 > 0.9 * codes.len() as f64);
        assert!(rle.compression_ratio() < 1.0); // pairs cost more than raw
    }

    #[test]
    fn count_in_range_matches_naive() {
        let codes: Vec<u32> = (0..5000).map(|i| (i / 7) % 50).collect();
        let rle = RleVector::from_codes(codes.clone());
        for range in [0..50u32, 10..20, 49..50, 25..25] {
            let naive = codes.iter().filter(|c| range.contains(c)).count() as u64;
            assert_eq!(rle.count_in_range(range.clone()), naive, "range {range:?}");
        }
    }

    #[test]
    fn empty_vector() {
        let rle = RleVector::from_codes(std::iter::empty());
        assert!(rle.is_empty());
        assert_eq!(rle.count_in_range(0..100), 0);
        assert_eq!(rle.run_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        RleVector::from_codes([1u32]).get(1);
    }
}
