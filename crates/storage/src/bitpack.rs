//! Bit-packed code vectors.
//!
//! Dictionary codes are stored in fixed-width bit fields packed back to
//! back into `u64` words (the paper's 10⁹-row column of 10⁶ distinct values
//! packs each 32-bit integer into 20 bits). The scan kernel
//! ([`PackedCodeVector::count_in_range`]) works directly on the packed
//! representation, several codes per word, without materializing values —
//! the software analogue of HANA's SIMD scan.

/// A vector of unsigned integers, each `bits` wide, packed into `u64`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCodeVector {
    words: Vec<u64>,
    bits: u32,
    len: usize,
}

impl PackedCodeVector {
    /// Creates an empty vector of `bits`-wide codes.
    ///
    /// # Panics
    /// `bits` must be in `1..=32` (codes are `u32`).
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=32).contains(&bits),
            "code width must be 1..=32, got {bits}"
        );
        PackedCodeVector {
            words: Vec::new(),
            bits,
            len: 0,
        }
    }

    /// Creates a vector with capacity for `n` codes.
    pub fn with_capacity(bits: u32, n: usize) -> Self {
        let mut v = Self::new(bits);
        v.words.reserve((n * bits as usize).div_ceil(64));
        v
    }

    /// Builds directly from a slice of codes.
    ///
    /// # Panics
    /// Panics if any code needs more than `bits` bits.
    pub fn from_codes(bits: u32, codes: &[u32]) -> Self {
        let mut v = Self::with_capacity(bits, codes.len());
        for &c in codes {
            v.push(c);
        }
        v
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of codes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes (the size a scan streams from memory).
    pub fn packed_bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }

    #[inline]
    fn mask(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Appends a code.
    ///
    /// # Panics
    /// Panics when `code` does not fit in the configured width.
    pub fn push(&mut self, code: u32) {
        assert!(
            u64::from(code) <= self.mask(),
            "code {code} does not fit in {} bits",
            self.bits
        );
        let bit_pos = self.len * self.bits as usize;
        let word = bit_pos / 64;
        let off = (bit_pos % 64) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= u64::from(code) << off;
        let spill = off + self.bits;
        if spill > 64 {
            self.words.push(u64::from(code) >> (64 - off));
        }
        self.len += 1;
    }

    /// Reads the code at `idx`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        let bit_pos = idx * self.bits as usize;
        let word = bit_pos / 64;
        let off = (bit_pos % 64) as u32;
        let mut v = self.words[word] >> off;
        let spill = off + self.bits;
        if spill > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        (v & self.mask()) as u32
    }

    /// Iterates over all codes.
    pub fn iter(&self) -> impl Iterator<Item = u32> + Clone + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Unpacks the codes of rows `[rows.start, rows.end)` into `out`
    /// (cleared first), walking the packed words sequentially with a
    /// rolling bit buffer instead of recomputing word/offset per element —
    /// the scalar skeleton of the SIMD-Scan technique (Willhalm et al.,
    /// cited by the paper as the engine's scan kernel).
    pub fn unpack_rows(&self, rows: std::ops::Range<usize>, out: &mut Vec<u32>) {
        out.clear();
        let hi = rows.end.min(self.len);
        if rows.start >= hi {
            return;
        }
        out.reserve(hi - rows.start);
        let bits = self.bits as usize;
        let mask = self.mask();
        let mut bit_pos = rows.start * bits;
        // Rolling 128-bit window over the packed words: `cur` always holds
        // at least `bits` valid bits starting at `cur_off`.
        for _ in rows.start..hi {
            let word = bit_pos / 64;
            let off = (bit_pos % 64) as u32;
            let mut v = self.words[word] >> off;
            if off as usize + bits > 64 {
                v |= self.words[word + 1] << (64 - off);
            }
            out.push((v & mask) as u32);
            bit_pos += bits;
        }
    }

    /// Counts codes in the half-open range `[lo, hi)` — the compressed-scan
    /// kernel behind the paper's Query 1 (`WHERE A.X > ?` after the
    /// predicate constant has been dictionary-encoded). Processes the
    /// column block-wise: unpack a block with the sequential kernel, then
    /// a branch-free compare loop the compiler auto-vectorizes.
    pub fn count_in_range(&self, range: std::ops::Range<u32>) -> u64 {
        self.count_in_range_rows(range, 0..self.len)
    }

    /// Rows per scan block; fits the unpack buffer in L1.
    const SCAN_BLOCK: usize = 4096;

    /// Like [`PackedCodeVector::count_in_range`] but restricted to the rows
    /// `[rows.start, rows.end)` — lets callers process the column in chunks.
    pub fn count_in_range_rows(
        &self,
        range: std::ops::Range<u32>,
        rows: std::ops::Range<usize>,
    ) -> u64 {
        let hi = rows.end.min(self.len);
        let mut count = 0u64;
        let mut block = Vec::new();
        let mut lo = rows.start;
        while lo < hi {
            let end = (lo + Self::SCAN_BLOCK).min(hi);
            self.unpack_rows(lo..end, &mut block);
            // Branch-free: `contains` over a block of u32s vectorizes.
            count += block
                .iter()
                .map(|c| u64::from(*c >= range.start && *c < range.end))
                .sum::<u64>();
            lo = end;
        }
        count
    }

    /// Collects the row ids whose code lies in `[lo, hi)` — the
    /// materializing variant of the scan, used for selective predicates.
    pub fn matching_rows(&self, range: std::ops::Range<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        let mut block = Vec::new();
        let mut lo = 0usize;
        while lo < self.len {
            let end = (lo + Self::SCAN_BLOCK).min(self.len);
            self.unpack_rows(lo..end, &mut block);
            for (i, &c) in block.iter().enumerate() {
                if c >= range.start && c < range.end {
                    out.push((lo + i) as u32);
                }
            }
            lo = end;
        }
        out
    }

    /// Raw packed words (read-only) — used by operators that model memory
    /// traffic per word.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let codes: Vec<u32> = (0..100).collect();
        let v = PackedCodeVector::from_codes(7, &codes);
        assert_eq!(v.len(), 100);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(v.get(i), c);
        }
    }

    #[test]
    fn roundtrip_word_straddling_widths() {
        // Widths that do not divide 64 force codes to straddle words.
        for bits in [3u32, 5, 7, 11, 13, 17, 20, 23, 29, 31] {
            let max = (1u64 << bits) - 1;
            let codes: Vec<u32> = (0..1000u64)
                .map(|i| ((i * 2_654_435_761) % (max + 1)) as u32)
                .collect();
            let v = PackedCodeVector::from_codes(bits, &codes);
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(v.get(i), c, "width {bits}, index {i}");
            }
        }
    }

    #[test]
    fn width_32_works() {
        let codes = vec![u32::MAX, 0, 123_456_789];
        let v = PackedCodeVector::from_codes(32, &codes);
        assert_eq!(v.iter().collect::<Vec<_>>(), codes);
    }

    #[test]
    fn packed_bytes_matches_compression() {
        // 1,000 codes at 20 bits = 20,000 bits = 2,500 bytes -> 313 words.
        let v = PackedCodeVector::from_codes(20, &vec![0u32; 1000]);
        assert_eq!(v.packed_bytes(), 2504); // 313 u64 words
    }

    #[test]
    fn count_in_range_counts() {
        let codes: Vec<u32> = (0..1000).collect();
        let v = PackedCodeVector::from_codes(10, &codes);
        assert_eq!(v.count_in_range(0..1000), 1000);
        assert_eq!(v.count_in_range(500..1000), 500);
        assert_eq!(v.count_in_range(0..0), 0);
        assert_eq!(v.count_in_range(999..1000), 1);
    }

    #[test]
    fn count_in_range_rows_chunks() {
        let codes: Vec<u32> = (0..100).collect();
        let v = PackedCodeVector::from_codes(7, &codes);
        let total: u64 = (0..10)
            .map(|c| v.count_in_range_rows(50..100, c * 10..(c + 1) * 10))
            .sum();
        assert_eq!(total, v.count_in_range(50..100));
        // Out-of-bounds chunk end is clamped.
        assert_eq!(v.count_in_range_rows(0..100, 90..1000), 10);
    }

    #[test]
    fn unpack_rows_matches_get() {
        let codes: Vec<u32> = (0..10_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % (1 << 17))
            .collect();
        let v = PackedCodeVector::from_codes(17, &codes);
        let mut block = Vec::new();
        for range in [0..100usize, 4090..4200, 9_990..10_000, 0..10_000] {
            v.unpack_rows(range.clone(), &mut block);
            assert_eq!(block.len(), range.len());
            for (off, &c) in block.iter().enumerate() {
                assert_eq!(c, v.get(range.start + off));
            }
        }
        // Out-of-bounds end is clamped; inverted range yields nothing.
        v.unpack_rows(9_999..20_000, &mut block);
        assert_eq!(block.len(), 1);
        v.unpack_rows(5..5, &mut block);
        assert!(block.is_empty());
    }

    #[test]
    fn matching_rows_collects_selected_ids() {
        let codes: Vec<u32> = (0..1000).map(|i| i % 10).collect();
        let v = PackedCodeVector::from_codes(4, &codes);
        let rows = v.matching_rows(7..9); // codes 7 and 8
        assert_eq!(rows.len(), 200);
        for &r in &rows {
            let c = v.get(r as usize);
            assert!((7..9).contains(&c));
        }
        // Sorted ascending by construction.
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_rejects_oversized_code() {
        let mut v = PackedCodeVector::new(4);
        v.push(16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_rejects_out_of_bounds() {
        let v = PackedCodeVector::from_codes(4, &[1, 2, 3]);
        v.get(3);
    }

    #[test]
    #[should_panic(expected = "code width")]
    fn rejects_zero_width() {
        let _ = PackedCodeVector::new(0);
    }
}
