//! Inverted indexes: dictionary code → posting list of row ids.
//!
//! The paper's S/4HANA OLTP query locates rows through the inverted indexes
//! of five primary-key columns before projecting (Section VI-E). Lookups
//! random-access the postings directory, making the index part of the OLTP
//! query's cache working set.

/// An inverted index over one dictionary-encoded column.
///
/// Layout is CSR-like: `offsets[code]..offsets[code+1]` delimits the slice
/// of `postings` holding the row ids whose column value has `code`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvertedIndex {
    offsets: Vec<u64>,
    postings: Vec<u32>,
}

impl InvertedIndex {
    /// Builds the index from a column of codes with `dict_len` distinct
    /// values (codes must be `< dict_len`).
    ///
    /// # Panics
    /// Panics when a code is out of range.
    pub fn build(codes: impl Iterator<Item = u32> + Clone, dict_len: usize) -> Self {
        let mut counts = vec![0u64; dict_len + 1];
        let mut n_rows = 0u64;
        for c in codes.clone() {
            assert!(
                (c as usize) < dict_len,
                "code {c} out of dictionary range {dict_len}"
            );
            counts[c as usize + 1] += 1;
            n_rows += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut postings = vec![0u32; n_rows as usize];
        for (row, c) in codes.enumerate() {
            let slot = cursor[c as usize];
            postings[slot as usize] = row as u32;
            cursor[c as usize] += 1;
        }
        InvertedIndex { offsets, postings }
    }

    /// Row ids whose value has dictionary code `code`.
    ///
    /// # Panics
    /// Panics when `code` exceeds the dictionary length.
    pub fn lookup(&self, code: u32) -> &[u32] {
        let lo = self.offsets[code as usize] as usize;
        let hi = self.offsets[code as usize + 1] as usize;
        &self.postings[lo..hi]
    }

    /// Number of distinct codes the index covers.
    pub fn dict_len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total rows indexed.
    pub fn row_count(&self) -> u64 {
        *self
            .offsets
            .last()
            .expect("offsets always has dict_len+1 entries")
    }

    /// Index footprint in bytes (offsets directory + postings).
    pub fn size_bytes(&self) -> u64 {
        (self.offsets.len() * 8 + self.postings.len() * 4) as u64
    }

    /// Byte offset of `code`'s directory entry — used by the simulated OLTP
    /// operator to model index probes.
    pub fn byte_of_code(&self, code: u32) -> u64 {
        u64::from(code) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        // codes: rows 0..6 with values a,b,a,c,b,a (a=0,b=1,c=2)
        let codes = [0u32, 1, 0, 2, 1, 0];
        let idx = InvertedIndex::build(codes.iter().copied(), 3);
        assert_eq!(idx.lookup(0), &[0, 2, 5]);
        assert_eq!(idx.lookup(1), &[1, 4]);
        assert_eq!(idx.lookup(2), &[3]);
        assert_eq!(idx.row_count(), 6);
        assert_eq!(idx.dict_len(), 3);
    }

    #[test]
    fn postings_are_sorted_by_row() {
        let codes: Vec<u32> = (0..1000).map(|i| i % 7).collect();
        let idx = InvertedIndex::build(codes.iter().copied(), 7);
        for c in 0..7 {
            let p = idx.lookup(c);
            assert!(
                p.windows(2).all(|w| w[0] < w[1]),
                "postings of {c} must ascend"
            );
            assert_eq!(p.len(), if c < 6 { 143 } else { 142 });
        }
    }

    #[test]
    fn codes_with_no_rows_have_empty_postings() {
        let idx = InvertedIndex::build([5u32].iter().copied(), 10);
        assert_eq!(idx.lookup(0), &[] as &[u32]);
        assert_eq!(idx.lookup(5), &[0]);
        assert_eq!(idx.lookup(9), &[] as &[u32]);
    }

    #[test]
    fn size_accounts_directory_and_postings() {
        let codes: Vec<u32> = (0..100).collect();
        let idx = InvertedIndex::build(codes.iter().copied(), 100);
        assert_eq!(idx.size_bytes(), 101 * 8 + 100 * 4);
    }

    #[test]
    #[should_panic(expected = "out of dictionary range")]
    fn rejects_out_of_range_codes() {
        let _ = InvertedIndex::build([3u32].iter().copied(), 3);
    }
}
