//! Order-preserving dictionary encoding.
//!
//! The dictionary maps the sorted domain of a column to a dense range of
//! integer codes `0..n`. Because the mapping is monotone, a range predicate
//! on *values* translates to a range predicate on *codes*, so scans never
//! need to decompress (paper Section IV-A) — while operators that
//! materialize values (aggregation output, projections) perform random
//! lookups into the dictionary, which is exactly the cache-sensitive access
//! pattern the paper analyzes.

use std::ops::Bound;

/// A sorted, deduplicated value domain with O(log n) encode and O(1) decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary<T: Ord> {
    values: Vec<T>,
}

impl<T: Ord + Clone> Dictionary<T> {
    /// Builds a dictionary from an arbitrary (unsorted, possibly repeating)
    /// collection of values.
    pub fn build(mut values: Vec<T>) -> Self {
        values.sort_unstable();
        values.dedup();
        Dictionary { values }
    }

    /// Builds from values already sorted and deduplicated.
    ///
    /// # Panics
    /// Debug-asserts sortedness; building from unsorted data is a caller
    /// bug.
    pub fn from_sorted(values: Vec<T>) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "values must be sorted+unique"
        );
        Dictionary { values }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Code of `value`, if present.
    pub fn encode(&self, value: &T) -> Option<u32> {
        self.values.binary_search(value).ok().map(|i| i as u32)
    }

    /// Value of `code`.
    ///
    /// # Panics
    /// Panics when `code` is out of range — codes come from this
    /// dictionary, so that is a logic error.
    pub fn decode(&self, code: u32) -> &T {
        &self.values[code as usize]
    }

    /// Translates a value range into the equivalent *code* range
    /// `[lo, hi)`, exploiting order preservation. Returns an empty range
    /// when no stored value falls inside.
    pub fn code_range(&self, lo: Bound<&T>, hi: Bound<&T>) -> std::ops::Range<u32> {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => self.values.partition_point(|x| x < v),
            Bound::Excluded(v) => self.values.partition_point(|x| x <= v),
        } as u32;
        let end = match hi {
            Bound::Unbounded => self.values.len(),
            Bound::Included(v) => self.values.partition_point(|x| x <= v),
            Bound::Excluded(v) => self.values.partition_point(|x| x < v),
        } as u32;
        start..end.max(start)
    }

    /// Bits needed to store one code: ⌈log₂ n⌉, minimum 1.
    pub fn code_bits(&self) -> u32 {
        let n = self.values.len().max(2) as u64;
        64 - (n - 1).leading_zeros()
    }

    /// Iterates over the sorted values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.values.iter()
    }
}

impl<T: Ord + Clone> Dictionary<T>
where
    T: DictEntrySize,
{
    /// Estimated in-memory size of the dictionary in bytes — what the
    /// paper's experiments vary between 4 MiB and 400 MiB.
    pub fn size_bytes(&self) -> u64 {
        self.values.iter().map(|v| v.entry_bytes()).sum()
    }
}

/// Per-entry memory footprint used for dictionary sizing.
pub trait DictEntrySize {
    /// Bytes this entry occupies in the dictionary storage.
    fn entry_bytes(&self) -> u64;
}

impl DictEntrySize for i64 {
    fn entry_bytes(&self) -> u64 {
        std::mem::size_of::<i64>() as u64
    }
}

impl DictEntrySize for i32 {
    fn entry_bytes(&self) -> u64 {
        std::mem::size_of::<i32>() as u64
    }
}

impl DictEntrySize for String {
    fn entry_bytes(&self) -> u64 {
        // String payload plus the Vec<String> slot (ptr/len/cap), matching
        // how a real engine would account variable-size dictionary entries.
        self.len() as u64 + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Dictionary<i64> {
        Dictionary::build(vec![30, 10, 20, 10, 40, 30])
    }

    #[test]
    fn build_sorts_and_dedups() {
        let d = dict();
        assert_eq!(d.len(), 4);
        let values: Vec<i64> = d.iter().copied().collect();
        assert_eq!(values, vec![10, 20, 30, 40]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = dict();
        for (i, v) in [(0u32, 10i64), (1, 20), (2, 30), (3, 40)] {
            assert_eq!(d.encode(&v), Some(i));
            assert_eq!(*d.decode(i), v);
        }
        assert_eq!(d.encode(&25), None);
    }

    #[test]
    fn encoding_preserves_order() {
        let d = Dictionary::build((0..1000).map(|i| i * 7 % 997).collect());
        let mut prev = None;
        for v in d.iter() {
            let c = d.encode(v).unwrap();
            if let Some(p) = prev {
                assert!(c > p);
            }
            prev = Some(c);
        }
    }

    #[test]
    fn code_range_translates_predicates() {
        let d = dict(); // values 10,20,30,40 -> codes 0..4
                        // value > 20  <=>  code in [2, 4)
        assert_eq!(d.code_range(Bound::Excluded(&20), Bound::Unbounded), 2..4);
        // value >= 20 <=> code in [1, 4)
        assert_eq!(d.code_range(Bound::Included(&20), Bound::Unbounded), 1..4);
        // value < 15  <=> code in [0, 1)
        assert_eq!(d.code_range(Bound::Unbounded, Bound::Excluded(&15)), 0..1);
        // 20 <= value <= 30 <=> [1, 3)
        assert_eq!(
            d.code_range(Bound::Included(&20), Bound::Included(&30)),
            1..3
        );
        // Empty range for out-of-domain predicates.
        assert!(d
            .code_range(Bound::Excluded(&40), Bound::Unbounded)
            .is_empty());
    }

    #[test]
    fn code_bits_matches_paper_example() {
        // 10^6 distinct values need 20 bits (paper Section III-B).
        let d = Dictionary::from_sorted((0..1_000_000i64).collect());
        assert_eq!(d.code_bits(), 20);
        let d = Dictionary::from_sorted(vec![1i64]);
        assert_eq!(d.code_bits(), 1);
        let d = Dictionary::from_sorted((0..256i64).collect());
        assert_eq!(d.code_bits(), 8);
        let d = Dictionary::from_sorted((0..257i64).collect());
        assert_eq!(d.code_bits(), 9);
    }

    #[test]
    fn size_bytes_for_ints_and_strings() {
        let d = Dictionary::from_sorted((0..1000i64).collect());
        assert_eq!(d.size_bytes(), 8000);
        let s = Dictionary::build(vec!["alpha".to_string(), "be".to_string()]);
        assert_eq!(s.size_bytes(), 5 + 24 + 2 + 24);
    }

    #[test]
    fn empty_dictionary() {
        let d: Dictionary<i64> = Dictionary::build(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.encode(&1), None);
        assert!(d.code_range(Bound::Unbounded, Bound::Unbounded).is_empty());
    }
}
