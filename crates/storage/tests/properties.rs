//! Property-based tests for the column-store substrate.

use ccp_storage::{
    AggHashTable, Aggregate, BitVec, DictColumn, Dictionary, InvertedIndex, PackedCodeVector,
    RleVector,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

proptest! {
    /// Dictionary encode/decode is a bijection over the distinct inputs.
    #[test]
    fn dict_bijection(values in proptest::collection::vec(-1000i64..1000, 1..300)) {
        let d = Dictionary::build(values.clone());
        for v in &values {
            let code = d.encode(v).expect("input value must be encodable");
            prop_assert_eq!(d.decode(code), v);
        }
        // Codes are dense 0..len.
        let codes: BTreeSet<u32> = values.iter().map(|v| d.encode(v).unwrap()).collect();
        prop_assert!(codes.iter().all(|&c| (c as usize) < d.len()));
    }

    /// Order preservation: v1 < v2 ⟹ code(v1) < code(v2).
    #[test]
    fn dict_order_preserving(values in proptest::collection::btree_set(-5000i64..5000, 2..200)) {
        let vals: Vec<i64> = values.into_iter().collect();
        let d = Dictionary::build(vals.clone());
        for w in vals.windows(2) {
            prop_assert!(d.encode(&w[0]).unwrap() < d.encode(&w[1]).unwrap());
        }
    }

    /// count_range on compressed data agrees with a naive scan of raw data.
    #[test]
    fn scan_matches_naive(
        values in proptest::collection::vec(0i64..500, 1..400),
        threshold in -10i64..510,
    ) {
        let col = DictColumn::build(&values);
        let naive = values.iter().filter(|&&v| v > threshold).count() as u64;
        let fast = col.count_range(Bound::Excluded(&threshold), Bound::Unbounded);
        prop_assert_eq!(fast, naive);
    }

    /// Bit-packing round-trips any width/values combination.
    #[test]
    fn bitpack_roundtrip(bits in 1u32..=32, n in 1usize..500, seed in 0u64..1000) {
        let max = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        let mut x = seed;
        let codes: Vec<u32> = (0..n).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 32) as u32) & max
        }).collect();
        let v = PackedCodeVector::from_codes(bits, &codes);
        prop_assert_eq!(v.iter().collect::<Vec<u32>>(), codes);
    }

    /// Hash-table aggregation agrees with a BTreeMap reference.
    #[test]
    fn hashtable_matches_reference(pairs in proptest::collection::vec((0u32..200, -100i64..100), 1..500)) {
        let mut t = AggHashTable::new(Aggregate::Max, 16);
        let mut reference: BTreeMap<u32, i64> = BTreeMap::new();
        for &(k, v) in &pairs {
            t.update(k, v);
            reference.entry(k).and_modify(|a| *a = (*a).max(v)).or_insert(v);
        }
        prop_assert_eq!(t.len(), reference.len());
        for (&k, &v) in &reference {
            prop_assert_eq!(t.get(k), Some(v));
        }
    }

    /// Split-merge equivalence: aggregating a split input through local
    /// tables then merging equals aggregating everything in one table —
    /// the correctness property of the paper's two-phase aggregation.
    #[test]
    fn hashtable_merge_equivalence(
        pairs in proptest::collection::vec((0u32..100, -50i64..50), 1..300),
        split in 0usize..300,
    ) {
        let split = split.min(pairs.len());
        let mut single = AggHashTable::new(Aggregate::Sum, 16);
        for &(k, v) in &pairs {
            single.update(k, v);
        }
        let mut a = AggHashTable::new(Aggregate::Sum, 16);
        let mut b = AggHashTable::new(Aggregate::Sum, 16);
        for &(k, v) in &pairs[..split] {
            a.update(k, v);
        }
        for &(k, v) in &pairs[split..] {
            b.update(k, v);
        }
        a.merge(&b);
        prop_assert_eq!(a.len(), single.len());
        for (k, acc, count) in single.iter() {
            let (_, acc2, count2) = a.iter().find(|(k2, _, _)| *k2 == k).expect("group present");
            prop_assert_eq!(acc, acc2);
            prop_assert_eq!(count, count2);
        }
    }

    /// BitVec set/get agrees with a BTreeSet reference.
    #[test]
    fn bitvec_matches_reference(bits in proptest::collection::btree_set(0u64..2000, 0..200)) {
        let mut bv = BitVec::zeros(2000);
        for &b in &bits {
            bv.set(b);
        }
        for i in 0..2000 {
            prop_assert_eq!(bv.get(i), bits.contains(&i));
        }
        prop_assert_eq!(bv.count_ones(), bits.len() as u64);
    }

    /// Inverted index partitions the row ids: every row appears in exactly
    /// one posting list, the one of its code.
    #[test]
    fn invindex_partitions_rows(codes in proptest::collection::vec(0u32..50, 1..400)) {
        let idx = InvertedIndex::build(codes.iter().copied(), 50);
        let mut seen = vec![false; codes.len()];
        for c in 0..50u32 {
            for &row in idx.lookup(c) {
                prop_assert_eq!(codes[row as usize], c);
                prop_assert!(!seen[row as usize], "row listed twice");
                seen[row as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// RLE round-trips any code sequence, and its range count matches the
    /// packed vector's on the same data.
    #[test]
    fn rle_equivalent_to_packed(
        codes in proptest::collection::vec(0u32..64, 0..400),
        lo in 0u32..64,
        span in 0u32..64,
    ) {
        let rle = RleVector::from_codes(codes.iter().copied());
        prop_assert_eq!(rle.iter().collect::<Vec<u32>>(), codes.clone());
        prop_assert!(rle.run_count() <= codes.len().max(1));
        if !codes.is_empty() {
            let packed = PackedCodeVector::from_codes(6, &codes);
            let range = lo..(lo + span).min(64);
            prop_assert_eq!(
                rle.count_in_range(range.clone()),
                packed.count_in_range(range)
            );
        }
    }

    /// matching_rows returns exactly the rows a naive filter selects.
    #[test]
    fn matching_rows_matches_naive(
        codes in proptest::collection::vec(0u32..100, 1..500),
        lo in 0u32..100,
        span in 1u32..100,
    ) {
        let v = PackedCodeVector::from_codes(7, &codes);
        let range = lo..(lo + span).min(100);
        let got = v.matching_rows(range.clone());
        let expected: Vec<u32> = codes
            .iter()
            .enumerate()
            .filter(|(_, c)| range.contains(c))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// A foreign-key join via bit vector equals a naive nested validation:
    /// every probe of a key in the PK set hits, others miss.
    #[test]
    fn bitvec_join_semantics(
        pks in proptest::collection::btree_set(1u64..1000, 1..100),
        probes in proptest::collection::vec(1u64..1000, 1..200),
    ) {
        let mut bv = BitVec::zeros(1001);
        for &p in &pks {
            bv.set(p);
        }
        let matches = probes.iter().filter(|p| bv.get(**p)).count();
        let naive = probes.iter().filter(|p| pks.contains(p)).count();
        prop_assert_eq!(matches, naive);
    }
}
