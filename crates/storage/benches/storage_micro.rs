//! Criterion microbenchmarks for the column-store substrate: compressed
//! scan throughput, dictionary encode/decode, hash-table update and
//! bit-vector probe rates. These are the native (non-simulated) kernels
//! that would run under resctrl on CAT hardware.

use ccp_storage::{
    gen, AggHashTable, Aggregate, BitVec, DictColumn, InvertedIndex, PackedCodeVector,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::ops::Bound;

const ROWS: usize = 1 << 16;

fn bench_compressed_scan(c: &mut Criterion) {
    let values = gen::uniform_ints(ROWS, 1_000_000, 1);
    let col = DictColumn::build(&values);
    let mut g = c.benchmark_group("storage/scan");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("count_range_20bit", |b| {
        b.iter(|| col.count_range(Bound::Excluded(&500_000i64), Bound::Unbounded));
    });
    g.finish();
}

fn bench_dictionary(c: &mut Criterion) {
    let values = gen::uniform_ints(ROWS, 100_000, 2);
    let col = DictColumn::build(&values);
    let dict = col.dict();
    let mut g = c.benchmark_group("storage/dict");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("encode_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in values.iter().take(1024) {
                acc += u64::from(dict.encode(v).unwrap());
            }
            acc
        });
    });
    g.bench_function("decode_1k", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..1024 {
                acc += *dict.decode(col.code_at(i));
            }
            acc
        });
    });
    g.finish();
}

fn bench_hashtable(c: &mut Criterion) {
    let keys: Vec<u32> = gen::uniform_ints(ROWS, 100_000, 3)
        .into_iter()
        .map(|v| v as u32)
        .collect();
    let mut g = c.benchmark_group("storage/hashtable");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("update_100k_groups", |b| {
        b.iter_batched_ref(
            || AggHashTable::new(Aggregate::Max, 100_000),
            |t| {
                for (i, &k) in keys.iter().enumerate() {
                    t.update(k, i as i64);
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_bitvec_probe(c: &mut Criterion) {
    let mut bv = BitVec::zeros(1_000_000);
    for i in (0..1_000_000).step_by(2) {
        bv.set(i);
    }
    let probes = gen::foreign_keys(ROWS, 999_999, 4);
    let mut g = c.benchmark_group("storage/bitvec");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("probe_1m_bits", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &k in &probes {
                if bv.get(k as u64) {
                    hits += 1;
                }
            }
            hits
        });
    });
    g.finish();
}

fn bench_inverted_index(c: &mut Criterion) {
    let codes: Vec<u32> = (0..ROWS as u32).map(|i| i % 1000).collect();
    let idx = InvertedIndex::build(codes.iter().copied(), 1000);
    let mut g = c.benchmark_group("storage/invindex");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("lookup_1k_codes", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for c in 0..1000u32 {
                total += idx.lookup(c).len();
            }
            total
        });
    });
    g.finish();
}

fn bench_bitpack(c: &mut Criterion) {
    let codes: Vec<u32> = (0..ROWS as u32).map(|i| i % (1 << 20)).collect();
    let mut g = c.benchmark_group("storage/bitpack");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("pack_20bit", |b| {
        b.iter(|| PackedCodeVector::from_codes(20, &codes));
    });
    let packed = PackedCodeVector::from_codes(20, &codes);
    g.bench_function("unpack_20bit", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..packed.len() {
                acc += u64::from(packed.get(i));
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compressed_scan,
    bench_dictionary,
    bench_hashtable,
    bench_bitvec_probe,
    bench_inverted_index,
    bench_bitpack
);
criterion_main!(benches);
