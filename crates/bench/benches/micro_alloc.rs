//! Criterion microbenchmarks for the cache-allocation fast path.
//!
//! The paper (Section V-C) measures that associating a thread with a new
//! CAT bitmask through the kernel costs < 100 µs, and that the engine's
//! old-vs-new comparison makes repeated identical binds free. These
//! benchmarks quantify both paths of our implementation (against the
//! in-memory fake resctrl tree — the kernel round-trip is hardware-bound).

use ccp_cachesim::WayMask;
use ccp_engine::alloc::{CacheAllocator, ResctrlAllocator};
use ccp_resctrl::fs::FakeFs;
use ccp_resctrl::CacheController;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn allocator() -> ResctrlAllocator {
    let fs = FakeFs::broadwell();
    let ctl = CacheController::open_with(Box::new(fs), "/sys/fs/resctrl")
        .expect("fake tree always mounts");
    ResctrlAllocator::new(ctl, vec![0])
}

fn bench_bind_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc/fast_path");
    // Repeated identical bind: should be a cache lookup, no fs write.
    g.bench_function("rebind_same_mask", |b| {
        let a = allocator();
        let mask = WayMask::new(0x3).expect("valid");
        a.bind(42, mask).expect("first bind");
        b.iter(|| a.bind(42, mask).expect("cached bind"));
    });
    g.finish();
}

fn bench_bind_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc/switch");
    // Alternating masks: a real schemata write each time (worst case).
    g.bench_function("alternate_masks", |b| {
        b.iter_batched_ref(
            allocator,
            |a| {
                a.bind(1, WayMask::new(0x3).expect("valid")).expect("bind");
                a.bind(1, WayMask::new(0xfffff).expect("valid"))
                    .expect("bind");
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_group_creation(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc/group_create");
    g.bench_function("first_bind_creates_group", |b| {
        b.iter_batched_ref(
            allocator,
            |a| {
                a.bind(7, WayMask::new(0xfff).expect("valid"))
                    .expect("bind")
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bind_fast_path,
    bench_bind_switch,
    bench_group_creation
);
criterion_main!(benches);
