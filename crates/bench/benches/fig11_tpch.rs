//! Figure 11: normalized throughput of Query 1 (column scan) and each
//! TPC-H query (SF 100 profiles) when executed concurrently, with and
//! without partitioning (scan confined to `0x3`).
//!
//! Paper result: TPC-H throughput degrades to 74–93 % (scan to 65–96 %);
//! partitioning improves TPC-H queries by up to +5 %, most visibly Q1, Q7,
//! Q8 and Q9 (they aggregate through the ≈ 29 MiB `L_EXTENDEDPRICE`
//! dictionary); the scan itself gains up to +5 % (e.g. with Q18).

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, WayMask};
use ccp_engine::sim::{run_concurrent, SimWorkload};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper;

fn main() {
    let e = experiment_from_env();
    banner("Figure 11", "Q1 (scan) ∥ TPC-H 1..22, ±partitioning", &e);

    let scan_build: OpBuilder = Box::new(paper::q1_scan);
    let scan_iso = e.run_isolated("q1", &scan_build).throughput;
    let mask = WayMask::new(0x3).expect("valid mask");

    println!(
        "{:>5} {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>7}",
        "query", "TPCH base", "Q1 base", "TPCH part", "Q1 part", "ΔTPCH", "ΔQ1"
    );
    let mut rows = Vec::new();
    let mut best_gain = (0u8, 0.0f64);
    for id in ccp_tpch::query_ids() {
        let q_build: OpBuilder = Box::new(move |s| ccp_tpch::build_query(s, id));
        let q_iso = e.run_isolated("tpch", &q_build).throughput;

        let run_pair = |m: Option<WayMask>| {
            let mut space = AddrSpace::new();
            let w = vec![
                SimWorkload::unpartitioned("tpch", q_build(&mut space)),
                SimWorkload {
                    name: "q1".into(),
                    op: scan_build(&mut space),
                    mask: m,
                },
            ];
            let out = run_concurrent(&e.cfg, w, e.warm_cycles, e.measure_cycles);
            (
                out.streams[0].throughput / q_iso,
                out.streams[1].throughput / scan_iso,
            )
        };

        let (t_base, s_base) = run_pair(None);
        let (t_part, s_part) = run_pair(Some(mask));
        let gain = t_part / t_base - 1.0;
        if gain > best_gain.1 {
            best_gain = (id, gain);
        }
        println!(
            "{:>5} {:>9} {:>9} | {:>9} {:>9} | {:>6.1}% {:>6.1}%",
            format!("Q{id}"),
            pct(t_base),
            pct(s_base),
            pct(t_part),
            pct(s_part),
            gain * 100.0,
            (s_part / s_base - 1.0) * 100.0,
        );
        for (series, v) in [
            ("tpch baseline", t_base),
            ("q1 baseline", s_base),
            ("tpch partitioned", t_part),
            ("q1 partitioned", s_part),
        ] {
            rows.push(ResultRow {
                config: format!("Q{id}"),
                series: series.into(),
                x: f64::from(id),
                normalized: v,
                llc_hit_ratio: None,
                llc_mpi: None,
            });
        }
    }
    save_json("fig11_tpch", &rows);
    println!(
        "\npaper: gains concentrated in Q1/Q7/Q8/Q9 (L_EXTENDEDPRICE dictionary), up to +5%; \
         measured best: Q{} {:+.1}%",
        best_gain.0,
        best_gain.1 * 100.0
    );
}
