//! Figure 12 (a/b) and the Section VI-E column sweep: normalized throughput
//! of Query 1 (column scan) and the S/4HANA OLTP point query when executed
//! concurrently, ±partitioning (scan at `0x3`).
//!
//! Paper result: the OLTP query drops to 66 % (13-column projection) /
//! 68 % (6 columns) while the scan barely suffers (95/96 %); partitioning
//! lifts the OLTP query by +13 % / +9 %. The extra sweep (2..13 projected
//! columns) shows degradation growing with the working set, with gains
//! +8..13 %.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, WayMask};
use ccp_engine::sim::{run_concurrent, SimWorkload};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::{paper, s4hana};

fn main() {
    let e = experiment_from_env();
    banner(
        "Figure 12",
        "Q1 (scan) ∥ S/4HANA OLTP point query, ±partitioning",
        &e,
    );

    let scan_build: OpBuilder = Box::new(paper::q1_scan);
    let scan_iso = e.run_isolated("q1", &scan_build).throughput;
    let mask = WayMask::new(0x3).expect("valid mask");
    let mut rows = Vec::new();

    let mut run_config = |label: &str, oltp_build: OpBuilder<'_>| -> (f64, f64, f64, f64) {
        let oltp_iso = e.run_isolated("oltp", &oltp_build).throughput;
        let run_pair = |m: Option<WayMask>| {
            let mut space = AddrSpace::new();
            let w = vec![
                SimWorkload::unpartitioned("oltp", oltp_build(&mut space)),
                SimWorkload {
                    name: "q1".into(),
                    op: scan_build(&mut space),
                    mask: m,
                },
            ];
            let out = run_concurrent(&e.cfg, w, e.warm_cycles, e.measure_cycles);
            (
                out.streams[0].throughput / oltp_iso,
                out.streams[1].throughput / scan_iso,
            )
        };
        let (o_base, s_base) = run_pair(None);
        let (o_part, s_part) = run_pair(Some(mask));
        for (series, v) in [
            ("oltp baseline", o_base),
            ("q1 baseline", s_base),
            ("oltp partitioned", o_part),
            ("q1 partitioned", s_part),
        ] {
            rows.push(ResultRow {
                config: label.to_string(),
                series: series.into(),
                x: 0.0,
                normalized: v,
                llc_hit_ratio: None,
                llc_mpi: None,
            });
        }
        (o_base, s_base, o_part, s_part)
    };

    println!(
        "{:>14} {:>10} {:>9} | {:>10} {:>9} | {:>7}",
        "projection", "OLTP base", "Q1 base", "OLTP part", "Q1 part", "ΔOLTP"
    );
    for (label, build) in [
        ("12a: 13 cols", Box::new(s4hana::oltp_13col) as OpBuilder),
        ("12b: 6 cols", Box::new(s4hana::oltp_6col) as OpBuilder),
    ] {
        let (ob, sb, op, sp) = run_config(label, build);
        println!(
            "{:>14} {:>10} {:>9} | {:>10} {:>9} | {:>6.1}%",
            label,
            pct(ob),
            pct(sb),
            pct(op),
            pct(sp),
            (op / ob - 1.0) * 100.0
        );
    }

    println!("\n--- Section VI-E sweep: k projected columns (biggest dictionaries) ---");
    println!(
        "{:>4} {:>10} {:>10} {:>7}",
        "k", "OLTP base", "OLTP part", "ΔOLTP"
    );
    for k in [2usize, 4, 6, 8, 10, 13] {
        let build: OpBuilder = Box::new(move |s| s4hana::oltp_k_cols(s, k));
        let (ob, _sb, op, _sp) = run_config(&format!("k={k}"), build);
        println!(
            "{:>4} {:>10} {:>10} {:>6.1}%",
            k,
            pct(ob),
            pct(op),
            (op / ob - 1.0) * 100.0
        );
    }
    save_json("fig12_oltp", &rows);
    println!("\npaper: 13 cols -> 66% base, +13% partitioned; 6 cols -> 68% base, +9%; sweep gains +8..13%");
}
