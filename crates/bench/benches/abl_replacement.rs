//! Ablation: LLC replacement policy.
//!
//! The paper's Broadwell LLC uses an adaptive RRIP-family policy, not
//! strict LRU; scan-resistant replacement is one reason the paper's
//! *unpartitioned* co-run degradation is milder than a strict-LRU model
//! predicts (see EXPERIMENTS.md). This ablation re-runs the Figure 9
//! scan ∥ aggregation pair under LRU, SRRIP and Random LLC replacement:
//! SRRIP narrows the unpartitioned gap exactly as that explanation
//! predicts, while the *partitioned* numbers are policy-insensitive —
//! the masks, not the replacement policy, protect the working set.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, ReplacementPolicy, WayMask};
use ccp_engine::sim::{run_concurrent, run_isolated, SimWorkload};
use ccp_workloads::paper::{self, DICT_40MIB};
use ccp_workloads::Experiment;

fn main() {
    let base = experiment_from_env();
    banner(
        "Ablation",
        "LLC replacement policy vs. the Figure 9 effect",
        &base,
    );

    let groups = 10_000;
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12}",
        "policy", "Q2 base", "Q1 base", "Q2 part.", "Q1 part."
    );
    let mut rows = Vec::new();
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Srrip,
        ReplacementPolicy::Random,
    ] {
        let mut cfg = base.cfg;
        cfg.llc_policy = policy;
        let e = Experiment { cfg, ..base };

        let mut space = AddrSpace::new();
        let agg_iso = run_isolated(
            &e.cfg,
            "q2",
            paper::q2_aggregation(&mut space, DICT_40MIB, groups),
            e.warm_cycles,
            e.measure_cycles,
        )
        .throughput;
        let mut space = AddrSpace::new();
        let scan_iso = run_isolated(
            &e.cfg,
            "q1",
            paper::q1_scan(&mut space),
            e.warm_cycles,
            e.measure_cycles,
        )
        .throughput;

        let run_pair = |mask: Option<WayMask>| {
            let mut space = AddrSpace::new();
            let w = vec![
                SimWorkload::unpartitioned(
                    "q2",
                    paper::q2_aggregation(&mut space, DICT_40MIB, groups),
                ),
                SimWorkload {
                    name: "q1".into(),
                    op: paper::q1_scan(&mut space),
                    mask,
                },
            ];
            let out = run_concurrent(&e.cfg, w, e.warm_cycles, e.measure_cycles);
            (
                out.streams[0].throughput / agg_iso,
                out.streams[1].throughput / scan_iso,
            )
        };
        let (a_base, s_base) = run_pair(None);
        let (a_part, s_part) = run_pair(Some(WayMask::new(0x3).expect("valid mask")));
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>12}",
            format!("{policy:?}"),
            pct(a_base),
            pct(s_base),
            pct(a_part),
            pct(s_part)
        );
        for (series, v) in [
            ("q2 baseline", a_base),
            ("q1 baseline", s_base),
            ("q2 partitioned", a_part),
            ("q1 partitioned", s_part),
        ] {
            rows.push(ResultRow {
                config: format!("{policy:?}"),
                series: series.into(),
                x: 0.0,
                normalized: v,
                llc_hit_ratio: None,
                llc_mpi: None,
            });
        }
    }
    save_json("abl_replacement", &rows);
    println!(
        "\nexpected: SRRIP lifts the unpartitioned Q2 baseline toward the paper's measured \
         values; partitioned results are policy-insensitive"
    );
}
