//! Ablation: how small can the polluter's slice be?
//!
//! The paper confines polluters to 2 of 20 ways (10 %) and explicitly notes
//! that a single way (`0x1`) degrades performance severely even for the
//! scan itself. This ablation sweeps the scan's way count in the Q1 ∥ Q2
//! pair and reports both queries — the "knee" shows how many ways the
//! polluter actually needs.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, WayMask};
use ccp_engine::sim::{run_concurrent, SimWorkload};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper::{self, DICT_40MIB};

fn main() {
    let e = experiment_from_env();
    banner("Ablation", "polluter mask width in the Q1 ∥ Q2 pair", &e);

    let groups = 100_000;
    let agg_build: OpBuilder = Box::new(move |s| paper::q2_aggregation(s, DICT_40MIB, groups));
    let scan_build: OpBuilder = Box::new(paper::q1_scan);
    let agg_iso = e.run_isolated("q2", &agg_build).throughput;
    let scan_iso = e.run_isolated("q1", &scan_build).throughput;

    println!("{:>10} {:>10} {:>10}", "scan ways", "Q2 norm", "Q1 norm");
    let mut rows = Vec::new();
    for ways in [1u32, 2, 4, 8, 12, 20] {
        let mut space = AddrSpace::new();
        let w = vec![
            SimWorkload::unpartitioned("q2", agg_build(&mut space)),
            SimWorkload::masked(
                "q1",
                scan_build(&mut space),
                WayMask::from_ways(ways).expect("1..=20 ways"),
            ),
        ];
        let out = run_concurrent(&e.cfg, w, e.warm_cycles, e.measure_cycles);
        let (aggn, scann) = (
            out.streams[0].throughput / agg_iso,
            out.streams[1].throughput / scan_iso,
        );
        println!("{:>10} {:>10} {:>10}", ways, pct(aggn), pct(scann));
        for (series, v) in [("q2", aggn), ("q1", scann)] {
            rows.push(ResultRow {
                config: "mask-granularity".into(),
                series: series.into(),
                x: f64::from(ways),
                normalized: v,
                llc_hit_ratio: None,
                llc_mpi: None,
            });
        }
    }
    save_json("abl_mask_granularity", &rows);
    println!(
        "\npaper: 2 ways is the sweet spot; 1 way (0x1) causes way contention on real \
         CAT hardware (an effect strict-LRU simulation reproduces only partially)"
    );
}
