//! Extension experiment: the cache-aware co-run scheduler the paper's
//! conclusion proposes ("co-run polluters; let cache-sensitive queries run
//! alone"), evaluated on the simulator.
//!
//! A queue of four queries — two LLC-sensitive aggregations and two
//! polluting scans — is executed in waves of two, comparing:
//!
//! * **FIFO pairing**: (agg, agg), (scan, scan) — what an oblivious
//!   scheduler does;
//! * **cache-aware pairing**: (agg, scan), (agg, scan) — what
//!   `CacheAwareScheduler` plans — with the partitioning masks applied.
//!
//! Metric: mean normalized throughput per wave (1.0 = every query ran as
//! fast as in isolation).

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::AddrSpace;
use ccp_engine::job::CacheUsageClass;
use ccp_engine::sim::{run_concurrent, SimWorkload};
use ccp_engine::CacheAwareScheduler;
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper::{self, DICT_40MIB};

fn main() {
    let e = experiment_from_env();
    banner(
        "Extension",
        "cache-aware co-run scheduling (paper conclusion)",
        &e,
    );

    let agg_build: OpBuilder = Box::new(|s| paper::q2_aggregation(s, DICT_40MIB, 10_000));
    let scan_build: OpBuilder = Box::new(paper::q1_scan);
    let agg_iso = e.run_isolated("agg", &agg_build).throughput;
    let scan_iso = e.run_isolated("scan", &scan_build).throughput;
    let policy = e.policy();

    // The queue: agg, agg, scan, scan.
    let cuids = [
        CacheUsageClass::Sensitive,
        CacheUsageClass::Sensitive,
        CacheUsageClass::Polluting,
        CacheUsageClass::Polluting,
    ];
    let is_agg = |i: usize| i < 2;

    let run_wave = |members: &[usize], masked: bool| -> f64 {
        let mut space = AddrSpace::new();
        let workloads: Vec<SimWorkload> = members
            .iter()
            .map(|&i| {
                let op = if is_agg(i) {
                    agg_build(&mut space)
                } else {
                    scan_build(&mut space)
                };
                let mask = if masked {
                    Some(policy.mask_for(cuids[i]))
                } else {
                    None
                };
                SimWorkload {
                    name: format!("q{i}"),
                    op,
                    mask,
                }
            })
            .collect();
        let out = run_concurrent(&e.cfg, workloads, e.warm_cycles, e.measure_cycles);
        out.streams
            .iter()
            .zip(members)
            .map(|(s, &i)| s.throughput / if is_agg(i) { agg_iso } else { scan_iso })
            .sum::<f64>()
            / members.len() as f64
    };

    // FIFO: queue order pairs, no cache awareness, no partitioning.
    let fifo_waves = [vec![0usize, 1], vec![2, 3]];
    // Cache-aware: planner output, with partitioning masks.
    let sched = CacheAwareScheduler::new(policy, 2);
    let smart_waves = sched.plan_waves(&cuids);

    println!(
        "\n{:<24} {:>10} {:>10} {:>10}",
        "strategy", "wave 1", "wave 2", "mean"
    );
    let mut rows = Vec::new();
    for (label, waves, masked) in [
        ("FIFO, unpartitioned", fifo_waves.to_vec(), false),
        ("FIFO + partitioning", fifo_waves.to_vec(), true),
        ("cache-aware + partit.", smart_waves.clone(), true),
    ] {
        let scores: Vec<f64> = waves.iter().map(|w| run_wave(w, masked)).collect();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        println!(
            "{:<24} {:>10} {:>10} {:>10}",
            label,
            pct(scores[0]),
            pct(scores.get(1).copied().unwrap_or(f64::NAN)),
            pct(mean)
        );
        rows.push(ResultRow {
            config: label.into(),
            series: "mean wave efficiency".into(),
            x: 0.0,
            normalized: mean,
            llc_hit_ratio: None,
            llc_mpi: None,
        });
    }
    save_json("ext_scheduler", &rows);
    println!(
        "\nexpected ordering: cache-aware+partitioning > FIFO+partitioning > FIFO — the \
         conclusion's scheduling idea compounds with the masks"
    );
    println!("planned waves: {smart_waves:?} (each aggregation paired with a confined scan)");
}
