//! Ablation: data skew on the grouping column.
//!
//! The paper generates all columns uniformly; real grouping columns skew.
//! Under Zipf skew, a 10⁶-group aggregation — whose 550 MB hash table is
//! hopeless for the LLC with uniform access — develops a *hot head* that
//! does fit, moving the operator back into the cache-sensitive regime
//! where partitioning pays again. This ablation sweeps the Zipf exponent
//! in the Figure 9 pair.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, WayMask};
use ccp_engine::sim::{run_concurrent, run_isolated, AggregationSim, SimOperator, SimWorkload};
use ccp_workloads::paper::{self, DICT_4MIB};

fn main() {
    let e = experiment_from_env();
    banner(
        "Ablation",
        "group-column skew vs. the Figure 9 effect (1e6 groups)",
        &e,
    );

    let build_agg = |space: &mut AddrSpace, skew: Option<f64>| -> Box<dyn SimOperator> {
        let agg = AggregationSim::paper_q2(space, 1 << 40, DICT_4MIB, 1_000_000);
        match skew {
            Some(s) => Box::new(agg.with_group_skew(s)),
            None => Box::new(agg),
        }
    };

    let mut space = AddrSpace::new();
    let scan_iso = run_isolated(
        &e.cfg,
        "q1",
        paper::q1_scan(&mut space),
        e.warm_cycles,
        e.measure_cycles,
    )
    .throughput;

    println!(
        "{:>9} {:>10} {:>10} {:>12} {:>8}",
        "zipf s", "Q2 base", "Q1 base", "Q2 part.", "ΔQ2"
    );
    let mut rows = Vec::new();
    for skew in [None, Some(0.5), Some(0.99), Some(1.2)] {
        let mut space = AddrSpace::new();
        let agg_iso = run_isolated(
            &e.cfg,
            "q2",
            build_agg(&mut space, skew),
            e.warm_cycles,
            e.measure_cycles,
        )
        .throughput;

        let run_pair = |mask: Option<WayMask>| {
            let mut space = AddrSpace::new();
            let w = vec![
                SimWorkload::unpartitioned("q2", build_agg(&mut space, skew)),
                SimWorkload {
                    name: "q1".into(),
                    op: paper::q1_scan(&mut space),
                    mask,
                },
            ];
            let out = run_concurrent(&e.cfg, w, e.warm_cycles, e.measure_cycles);
            (
                out.streams[0].throughput / agg_iso,
                out.streams[1].throughput / scan_iso,
            )
        };
        let (a_base, s_base) = run_pair(None);
        let (a_part, _) = run_pair(Some(WayMask::new(0x3).expect("valid mask")));
        let label = skew
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "unif".into());
        println!(
            "{:>9} {:>10} {:>10} {:>12} {:>7.1}%",
            label,
            pct(a_base),
            pct(s_base),
            pct(a_part),
            (a_part / a_base - 1.0) * 100.0
        );
        for (series, v) in [("q2 baseline", a_base), ("q2 partitioned", a_part)] {
            rows.push(ResultRow {
                config: "skew".into(),
                series: series.into(),
                x: skew.unwrap_or(0.0),
                normalized: v,
                llc_hit_ratio: None,
                llc_mpi: None,
            });
        }
    }
    save_json("abl_skew", &rows);
    println!(
        "\nexpected: with growing skew the hot head of the 550 MB hash table fits the LLC, \
         pollution bites again, and the partitioning gain grows"
    );
}
