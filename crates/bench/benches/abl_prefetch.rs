//! Ablation: the stream prefetcher.
//!
//! DESIGN.md calls out the prefetcher as the mechanism that makes column
//! scans LLC-insensitive (Figure 4 depends on it). This ablation sweeps the
//! prefetch depth: with depth 0 the scan becomes latency-bound and loses
//! most of its bandwidth; from depth ≈ 64 on it saturates the channel.

use ccp_bench::{banner, experiment_from_env, save_json, ResultRow};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper;
use ccp_workloads::Experiment;

fn main() {
    let base = experiment_from_env();
    banner(
        "Ablation",
        "stream prefetch depth vs. scan throughput",
        &base,
    );

    let build: OpBuilder = Box::new(paper::q1_scan);
    println!("{:>7} {:>16} {:>12}", "depth", "rows/kcycle", "vs depth=64");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for depth in [0u32, 4, 16, 64, 128] {
        let mut cfg = base.cfg;
        cfg.prefetch_depth = depth;
        let e = Experiment { cfg, ..base };
        let thr = e.run_isolated("scan", &build).throughput;
        results.push((depth, thr));
    }
    let reference = results
        .iter()
        .find(|(d, _)| *d == 64)
        .map(|(_, t)| *t)
        .expect("depth 64 is in the sweep");
    for (depth, thr) in &results {
        println!(
            "{:>7} {:>16.1} {:>11.1}%",
            depth,
            thr,
            thr / reference * 100.0
        );
        rows.push(ResultRow {
            config: "prefetch".into(),
            series: "scan".into(),
            x: f64::from(*depth),
            normalized: thr / reference,
            llc_hit_ratio: None,
            llc_mpi: None,
        });
    }
    save_json("abl_prefetch", &rows);
    println!("\nexpected: monotone rise; saturation (DRAM-bandwidth-bound) from depth ~64");
}
