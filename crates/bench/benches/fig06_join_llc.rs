//! Figure 6: normalized throughput of Query 3 (foreign-key join) at varying
//! LLC sizes, for 10⁶..10⁹ primary keys.
//!
//! Paper result: only the 10⁸-key configuration (12.5 MB bit vector,
//! comparable to the 55 MiB LLC) is cache-sensitive (−33 %); 10⁶/10⁷/10⁹
//! keys degrade only 5–14 %.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper::{self, PK_SWEEP};

fn main() {
    let e = experiment_from_env();
    banner("Figure 6", "Query 3 (FK join) vs. LLC size", &e);

    let way = e.cfg.llc.way_bytes();
    let sizes: Vec<u64> = [2u64, 4, 8, 12, 16, 20].iter().map(|w| w * way).collect();

    let mut sweeps = Vec::new();
    for pk in PK_SWEEP {
        let build: OpBuilder = Box::new(move |s| paper::q3_join(s, pk));
        sweeps.push(e.llc_sweep(&build, &sizes));
    }

    print!("{:>10}", "LLC MiB");
    for pk in PK_SWEEP {
        print!(" {:>9}", format!("1e{} P", (pk as f64).log10() as u32));
    }
    println!();
    let mut rows = Vec::new();
    for (i, &bytes) in sizes.iter().enumerate() {
        print!("{:>10.2}", bytes as f64 / (1024.0 * 1024.0));
        for (sweep, pk) in sweeps.iter().zip(PK_SWEEP) {
            print!(" {:>9}", pct(sweep[i].normalized));
            rows.push(ResultRow {
                config: "q3".into(),
                series: format!("pk=1e{}", (pk as f64).log10() as u32),
                x: bytes as f64 / (1024.0 * 1024.0),
                normalized: sweep[i].normalized,
                llc_hit_ratio: Some(sweep[i].llc_hit_ratio),
                llc_mpi: Some(sweep[i].llc_mpi),
            });
        }
        println!();
    }
    save_json("fig06_join_llc", &rows);
    println!(
        "\npaper: only 1e8 keys (12.5 MB bit vector ≈ LLC) is sensitive (-33%); others -5..-14%"
    );
}
