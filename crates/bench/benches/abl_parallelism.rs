//! Ablation: memory-level parallelism of the aggregation stream.
//!
//! The simulation models one stream per multi-threaded query and divides
//! memory latency by a per-operator MLP constant (24 for the aggregation —
//! 44 threads with a couple of misses in flight each). This ablation
//! validates that the *normalized* Figure 9 effect is robust to that
//! constant: absolute throughput scales with MLP, but the
//! partitioning-recovers-throughput effect holds across a wide range.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, HierarchyConfig, MemoryHierarchy, WayMask};
use ccp_engine::sim::{AggregationSim, ColumnScanSim, SimOperator};
use ccp_workloads::paper::DICT_4MIB;

/// Runs one agg ∥ scan pair with the aggregation's parallelism forced to
/// `par`; returns (aggregation normalized, scan normalized).
fn pair_with_par(
    cfg: &HierarchyConfig,
    par: u32,
    mask: Option<WayMask>,
    warm: u64,
    measure: u64,
) -> f64 {
    // Hand-rolled driver so we can override parallelism after setup.
    let run = |concurrent: bool, mask: Option<WayMask>| -> f64 {
        let n = if concurrent { 2 } else { 1 };
        let mut mem = MemoryHierarchy::new(*cfg, n);
        let mut space = AddrSpace::new();
        let mut agg = AggregationSim::paper_q2(&mut space, 1 << 40, DICT_4MIB, 100_000);
        let mut scan = ColumnScanSim::paper_q1(&mut space, 1 << 33);
        mem.set_parallelism(0, par);
        if concurrent {
            mem.set_parallelism(1, scan.parallelism());
            if let Some(m) = mask {
                mem.set_mask(1, m);
            }
        }
        let mut phase = |mem: &mut MemoryHierarchy, until: u64, work: &mut u64| loop {
            let a = mem.clock_centi(0);
            let s = if concurrent {
                mem.clock_centi(1)
            } else {
                u64::MAX
            };
            if a >= until * 100 && (!concurrent || s >= until * 100) {
                break;
            }
            if a <= s || s >= until * 100 {
                *work += agg.batch(mem, 0);
            } else {
                scan.batch(mem, 1);
            }
        };
        let mut sink = 0;
        phase(&mut mem, warm, &mut sink);
        mem.reset_clocks();
        mem.reset_stats();
        let mut work = 0;
        phase(&mut mem, measure, &mut work);
        work as f64 * 1000.0 / mem.clock(0) as f64
    };
    run(true, mask) / run(false, None)
}

fn main() {
    let e = experiment_from_env();
    banner(
        "Ablation",
        "aggregation MLP constant vs. the Figure 9 effect",
        &e,
    );

    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "MLP", "Q2 base", "Q2 part.", "gain"
    );
    let mut rows = Vec::new();
    for par in [8u32, 16, 24, 48] {
        let base = pair_with_par(&e.cfg, par, None, e.warm_cycles, e.measure_cycles);
        let part = pair_with_par(
            &e.cfg,
            par,
            Some(WayMask::new(0x3).expect("valid mask")),
            e.warm_cycles,
            e.measure_cycles,
        );
        println!(
            "{:>6} {:>12} {:>12} {:>7.1}%",
            par,
            pct(base),
            pct(part),
            (part / base - 1.0) * 100.0
        );
        for (series, v) in [("baseline", base), ("partitioned", part)] {
            rows.push(ResultRow {
                config: "agg-mlp".into(),
                series: series.into(),
                x: f64::from(par),
                normalized: v,
                llc_hit_ratio: None,
                llc_mpi: None,
            });
        }
    }
    save_json("abl_parallelism", &rows);
    println!("\nexpected: partitioning gain positive across the whole MLP range");
}
