//! Figure 4: normalized throughput of Query 1 (column scan) at varying LLC
//! sizes.
//!
//! Paper result: the scan is insensitive to the cache size — the curve is
//! flat at ≈ 1.0 across 5.5..55 MiB, LLC hit ratio < 0.08.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper;

fn main() {
    let e = experiment_from_env();
    banner("Figure 4", "Query 1 (column scan) vs. LLC size", &e);

    let way = e.cfg.llc.way_bytes();
    let sizes: Vec<u64> = [2u64, 4, 8, 12, 16, 20].iter().map(|w| w * way).collect();
    let build: OpBuilder = Box::new(paper::q1_scan);
    let points = e.llc_sweep(&build, &sizes);

    println!(
        "{:>10} {:>6} {:>10} {:>10} {:>12}",
        "LLC MiB", "ways", "norm thr", "hit ratio", "MPI"
    );
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>10.2} {:>6} {:>10} {:>10.3} {:>12.2e}",
            p.llc_bytes as f64 / (1024.0 * 1024.0),
            p.ways,
            pct(p.normalized),
            p.llc_hit_ratio,
            p.llc_mpi
        );
        rows.push(ResultRow {
            config: "q1".into(),
            series: "column scan".into(),
            x: p.llc_bytes as f64 / (1024.0 * 1024.0),
            normalized: p.normalized,
            llc_hit_ratio: Some(p.llc_hit_ratio),
            llc_mpi: Some(p.llc_mpi),
        });
    }
    save_json("fig04_scan_llc", &rows);

    let min = points.iter().map(|p| p.normalized).fold(f64::MAX, f64::min);
    println!(
        "\npaper: flat at ~1.00 (scan is LLC-insensitive)   measured minimum: {}",
        pct(min)
    );
}
