//! Figure 5 (a/b/c): normalized throughput of Query 2 (aggregation with
//! grouping) at varying LLC sizes, for dictionary sizes 4/40/400 MiB and
//! group counts 10²..10⁶.
//!
//! Paper result highlights:
//! * 4 MiB dictionary — 10²..10⁴ groups degrade below ≈ 20 MiB (−46 % at
//!   ≈ 5 MiB); 10⁵ groups break below 40 MiB (−67 %); 10⁶ groups degrade
//!   less (−28..46 %).
//! * 40 MiB dictionary — all group counts degrade steadily (up to −62 %;
//!   −34 % for 10⁶ groups).
//! * 400 MiB dictionary — smaller impact overall (−31 %); −54 % for 10⁵.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper::{self, DICT_400MIB, DICT_40MIB, DICT_4MIB, GROUP_SWEEP};

fn main() {
    let e = experiment_from_env();
    banner("Figure 5", "Query 2 (aggregation) vs. LLC size", &e);

    let way = e.cfg.llc.way_bytes();
    let sizes: Vec<u64> = [2u64, 4, 8, 12, 16, 20].iter().map(|w| w * way).collect();
    let mut rows = Vec::new();

    for (sub, dict_bytes) in [("5a", DICT_4MIB), ("5b", DICT_40MIB), ("5c", DICT_400MIB)] {
        println!(
            "\n--- Figure {sub}: dictionary {} MiB ---",
            dict_bytes >> 20
        );
        print!("{:>10}", "LLC MiB");
        for g in GROUP_SWEEP {
            print!(" {:>9}", format!("1e{} G", (g as f64).log10() as u32));
        }
        println!();
        // One sweep per group count, transposed for printing.
        let mut sweeps = Vec::new();
        for groups in GROUP_SWEEP {
            let build: OpBuilder = Box::new(move |s| paper::q2_aggregation(s, dict_bytes, groups));
            sweeps.push(e.llc_sweep(&build, &sizes));
        }
        for (i, &bytes) in sizes.iter().enumerate() {
            print!("{:>10.2}", bytes as f64 / (1024.0 * 1024.0));
            for (sweep, groups) in sweeps.iter().zip(GROUP_SWEEP) {
                print!(" {:>9}", pct(sweep[i].normalized));
                rows.push(ResultRow {
                    config: format!("dict={}MiB", dict_bytes >> 20),
                    series: format!("groups=1e{}", (groups as f64).log10() as u32),
                    x: bytes as f64 / (1024.0 * 1024.0),
                    normalized: sweep[i].normalized,
                    llc_hit_ratio: Some(sweep[i].llc_hit_ratio),
                    llc_mpi: Some(sweep[i].llc_mpi),
                });
            }
            println!();
        }
    }
    save_json("fig05_agg_llc", &rows);
    println!("\npaper: strongest break for 1e5 groups (hash table ≈ LLC); see header comment");
}
