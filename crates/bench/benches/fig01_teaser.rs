//! Figure 1 (the teaser): throughput of an OLTP query running (i) isolated,
//! (ii) concurrently to an OLAP query, and (iii) concurrently to the OLAP
//! query with cache partitioning applied.
//!
//! Paper result: the OLTP query's throughput degrades significantly when
//! the OLAP scan co-runs, and restricting the scan's LLC share recovers a
//! large part of the loss.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, WayMask};
use ccp_engine::sim::{run_concurrent, SimWorkload};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::{paper, s4hana};

fn main() {
    let e = experiment_from_env();
    banner(
        "Figure 1",
        "OLTP throughput: isolated vs. concurrent vs. concurrent+partitioning",
        &e,
    );

    let oltp_build: OpBuilder = Box::new(s4hana::oltp_13col);
    let scan_build: OpBuilder = Box::new(paper::q1_scan);
    let oltp_iso = e.run_isolated("oltp", &oltp_build).throughput;

    let run_pair = |mask: Option<WayMask>| {
        let mut space = AddrSpace::new();
        let w = vec![
            SimWorkload::unpartitioned("oltp", oltp_build(&mut space)),
            SimWorkload {
                name: "olap".into(),
                op: scan_build(&mut space),
                mask,
            },
        ];
        let out = run_concurrent(&e.cfg, w, e.warm_cycles, e.measure_cycles);
        out.streams[0].throughput / oltp_iso
    };

    let concurrent = run_pair(None);
    let partitioned = run_pair(Some(WayMask::new(0x3).expect("valid mask")));

    println!("{:>28} {:>12}", "configuration", "OLTP thr");
    println!("{:>28} {:>12}", "isolated", pct(1.0));
    println!("{:>28} {:>12}", "concurrent to OLAP", pct(concurrent));
    println!(
        "{:>28} {:>12}",
        "concurrent + partitioning",
        pct(partitioned)
    );

    let rows = vec![
        ResultRow {
            config: "fig1".into(),
            series: "isolated".into(),
            x: 0.0,
            normalized: 1.0,
            llc_hit_ratio: None,
            llc_mpi: None,
        },
        ResultRow {
            config: "fig1".into(),
            series: "concurrent".into(),
            x: 1.0,
            normalized: concurrent,
            llc_hit_ratio: None,
            llc_mpi: None,
        },
        ResultRow {
            config: "fig1".into(),
            series: "partitioned".into(),
            x: 2.0,
            normalized: partitioned,
            llc_hit_ratio: None,
            llc_mpi: None,
        },
    ];
    save_json("fig01_teaser", &rows);
    println!("\npaper: concurrent run hurts the OLTP query; partitioning recovers most of it");
}
