//! Figure 10 (a/b): normalized throughput of Query 2 (aggregation) and
//! Query 3 (FK join) when executed concurrently, comparing two partitioning
//! schemes: join confined to 10 % (`0x3`) vs. 60 % (`0xfff`). The
//! aggregation uses the 40 MiB dictionary.
//!
//! Paper result highlights:
//! * 10⁶ primary keys (125 KB bit vector): the join acts like a scan;
//!   `0x3` lifts the aggregation by up to +38 % and even the join by +7 %.
//! * 10⁸ primary keys (12.5 MB bit vector): `0x3` helps the aggregation
//!   (+19 %) but costs the join −15..31 % — net negative; the 60 % scheme
//!   (`0xfff`) is the right one (+9 % aggregation, join ±2 %).

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, WayMask};
use ccp_engine::sim::{run_concurrent, SimWorkload};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper::{self, DICT_40MIB, GROUP_SWEEP};

fn main() {
    let e = experiment_from_env();
    banner(
        "Figure 10",
        "Q2 (aggregation) ∥ Q3 (FK join), two partitioning schemes",
        &e,
    );

    let mask_10 = WayMask::new(0x3).expect("valid mask");
    let mask_60 = WayMask::new(0xfff).expect("valid mask");
    let mut rows = Vec::new();

    for (sub, pk_count) in [("10a", 1_000_000u64), ("10b", 100_000_000u64)] {
        println!(
            "\n--- Figure {sub}: 1e{} primary keys (bit vector {} KB) ---",
            (pk_count as f64).log10() as u32,
            pk_count / 8 / 1000
        );
        let join_build: OpBuilder = Box::new(move |s| paper::q3_join(s, pk_count));
        let join_iso = e.run_isolated("q3", &join_build).throughput;

        println!(
            "{:>8} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
            "groups", "Q2 base", "Q3 base", "Q2 @0x3", "Q3 @0x3", "Q2 @0xfff", "Q3 @0xfff"
        );
        for groups in GROUP_SWEEP {
            let agg_build: OpBuilder =
                Box::new(move |s| paper::q2_aggregation(s, DICT_40MIB, groups));
            let agg_iso = e.run_isolated("q2", &agg_build).throughput;

            let run_pair = |mask: Option<WayMask>| {
                let mut space = AddrSpace::new();
                let w = vec![
                    SimWorkload::unpartitioned("q2", agg_build(&mut space)),
                    SimWorkload {
                        name: "q3".into(),
                        op: join_build(&mut space),
                        mask,
                    },
                ];
                let out = run_concurrent(&e.cfg, w, e.warm_cycles, e.measure_cycles);
                (
                    out.streams[0].throughput / agg_iso,
                    out.streams[1].throughput / join_iso,
                )
            };

            let (a_base, j_base) = run_pair(None);
            let (a_10, j_10) = run_pair(Some(mask_10));
            let (a_60, j_60) = run_pair(Some(mask_60));
            println!(
                "{:>8} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
                format!("1e{}", (groups as f64).log10() as u32),
                pct(a_base),
                pct(j_base),
                pct(a_10),
                pct(j_10),
                pct(a_60),
                pct(j_60),
            );
            for (series, v) in [
                ("q2 baseline", a_base),
                ("q3 baseline", j_base),
                ("q2 join@0x3", a_10),
                ("q3 join@0x3", j_10),
                ("q2 join@0xfff", a_60),
                ("q3 join@0xfff", j_60),
            ] {
                rows.push(ResultRow {
                    config: format!("pk=1e{}", (pk_count as f64).log10() as u32),
                    series: series.into(),
                    x: groups as f64,
                    normalized: v,
                    llc_hit_ratio: None,
                    llc_mpi: None,
                });
            }
        }
    }
    save_json("fig10_agg_join", &rows);
    println!("\npaper: 1e6 keys -> 0x3 is right (+38% Q2); 1e8 keys -> 0x3 hurts the join, 0xfff is right");
}
