//! Figure 9 (a/b/c): normalized throughput of Query 1 (column scan) and
//! Query 2 (aggregation) when executed concurrently, with and without
//! cache partitioning (scan confined to 10 % = mask `0x3`).
//!
//! Paper result highlights:
//! * 4 MiB dictionary — at 10⁵ groups the aggregation drops to 66 % and
//!   partitioning recovers +20 % (scan +3 %).
//! * 40 MiB dictionary — aggregation below 60 % for ≤ 10⁵ groups;
//!   partitioning +21 % (scan +6 %).
//! * 400 MiB dictionary — both queries compete for bandwidth instead;
//!   partitioning helps the aggregation only +3..9 %.

use ccp_bench::{banner, experiment_from_env, pct, save_json, ResultRow};
use ccp_cachesim::{AddrSpace, WayMask};
use ccp_engine::sim::{run_concurrent, SimWorkload};
use ccp_workloads::experiment::OpBuilder;
use ccp_workloads::paper::{self, DICT_400MIB, DICT_40MIB, DICT_4MIB, GROUP_SWEEP};

fn main() {
    let e = experiment_from_env();
    banner(
        "Figure 9",
        "Q1 (scan) ∥ Q2 (aggregation), ±partitioning",
        &e,
    );

    // The scan's isolated baseline is independent of the aggregation's
    // configuration: measure it once.
    let scan_build: OpBuilder = Box::new(paper::q1_scan);
    let scan_iso = e.run_isolated("q1", &scan_build).throughput;
    let polluter_mask = WayMask::new(0x3).expect("0x3 is a valid CAT mask");

    let mut rows = Vec::new();
    for (sub, dict_bytes) in [("9a", DICT_4MIB), ("9b", DICT_40MIB), ("9c", DICT_400MIB)] {
        println!(
            "\n--- Figure {sub}: dictionary {} MiB ---",
            dict_bytes >> 20
        );
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>12} {:>9} {:>9}",
            "groups", "Q2 base", "Q1 base", "Q2 part.", "Q1 part.", "ΔQ2", "ΔQ1"
        );
        for groups in GROUP_SWEEP {
            let agg_build: OpBuilder =
                Box::new(move |s| paper::q2_aggregation(s, dict_bytes, groups));
            let agg_iso = e.run_isolated("q2", &agg_build).throughput;

            let run_pair = |mask: Option<WayMask>| {
                let mut space = AddrSpace::new();
                let w = vec![
                    SimWorkload::unpartitioned("q2", agg_build(&mut space)),
                    SimWorkload {
                        name: "q1".into(),
                        op: scan_build(&mut space),
                        mask,
                    },
                ];
                let out = run_concurrent(&e.cfg, w, e.warm_cycles, e.measure_cycles);
                (
                    out.streams[0].throughput / agg_iso,
                    out.streams[1].throughput / scan_iso,
                )
            };

            let (agg_base, scan_base) = run_pair(None);
            let (agg_part, scan_part) = run_pair(Some(polluter_mask));
            println!(
                "{:>8} {:>10} {:>10} {:>12} {:>12} {:>8.1}% {:>8.1}%",
                format!("1e{}", (groups as f64).log10() as u32),
                pct(agg_base),
                pct(scan_base),
                pct(agg_part),
                pct(scan_part),
                (agg_part / agg_base - 1.0) * 100.0,
                (scan_part / scan_base - 1.0) * 100.0,
            );
            for (series, x, v) in [
                ("q2 baseline", groups, agg_base),
                ("q1 baseline", groups, scan_base),
                ("q2 partitioned", groups, agg_part),
                ("q1 partitioned", groups, scan_part),
            ] {
                rows.push(ResultRow {
                    config: format!("dict={}MiB", dict_bytes >> 20),
                    series: series.into(),
                    x: x as f64,
                    normalized: v,
                    llc_hit_ratio: None,
                    llc_mpi: None,
                });
            }
        }
    }
    save_json("fig09_scan_agg", &rows);
    println!("\npaper: biggest gain at 1e5 groups with 4/40 MiB dictionaries (+20/+21%), small for 400 MiB (+3..9%)");
}
