//! Experiment harness support: environment-controlled experiment windows,
//! table printing, and machine-readable result capture.
//!
//! Every figure of the paper has a bench target in `benches/` (run them all
//! with `cargo bench -p ccp-bench`, or one with e.g.
//! `cargo bench -p ccp-bench --bench fig05_agg_llc`). Each target prints
//! the figure's series as a text table **and** writes
//! `target/experiments/<name>.json` so `EXPERIMENTS.md` can be regenerated
//! and diffed.
//!
//! Set `CCP_FULL=1` for longer virtual-time windows (tighter numbers,
//! ~4× slower); `CCP_QUICK=1` for a smoke run.

use ccp_workloads::Experiment;
use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Experiment windows selected via environment:
/// `CCP_QUICK` < default < `CCP_FULL`.
pub fn experiment_from_env() -> Experiment {
    if std::env::var_os("CCP_FULL").is_some() {
        Experiment {
            warm_cycles: 16_000_000,
            measure_cycles: 32_000_000,
            ..Default::default()
        }
    } else if std::env::var_os("CCP_QUICK").is_some() {
        Experiment {
            warm_cycles: 2_000_000,
            measure_cycles: 4_000_000,
            ..Default::default()
        }
    } else {
        Experiment {
            warm_cycles: 6_000_000,
            measure_cycles: 10_000_000,
            ..Default::default()
        }
    }
}

/// Prints the standard experiment banner.
pub fn banner(figure: &str, title: &str, e: &Experiment) {
    println!();
    println!("=== {figure}: {title} ===");
    println!(
        "machine: {:.0} MiB LLC / {} ways, {} KiB L2, windows warm={}M measure={}M cycles",
        e.cfg.llc.size_bytes as f64 / (1024.0 * 1024.0),
        e.cfg.llc.ways,
        e.cfg.l2.size_bytes / 1024,
        e.warm_cycles / 1_000_000,
        e.measure_cycles / 1_000_000,
    );
}

/// Directory where experiment JSON results land.
pub fn results_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var_os("CARGO_TARGET_DIR").unwrap_or_else(|| "target".into()))
            .join("experiments");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Writes the result rows as pretty JSON to
/// `target/experiments/<name>.json`. (Rendered by hand: the build
/// environment has no serde_json, and the row schema is fixed anyway.)
pub fn save_json(name: &str, rows: &[ResultRow]) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let s = rows_to_json(rows);
            let _ = f.write_all(s.as_bytes());
            println!("[saved {}]", path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Renders result rows as a pretty-printed JSON array.
fn rows_to_json(rows: &[ResultRow]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
    fn opt(v: Option<f64>) -> String {
        v.map_or_else(|| "null".to_string(), num)
    }
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"config\": \"{}\",\n", esc(&r.config)));
        out.push_str(&format!("    \"series\": \"{}\",\n", esc(&r.series)));
        out.push_str(&format!("    \"x\": {},\n", num(r.x)));
        out.push_str(&format!("    \"normalized\": {},\n", num(r.normalized)));
        out.push_str(&format!(
            "    \"llc_hit_ratio\": {},\n",
            opt(r.llc_hit_ratio)
        ));
        out.push_str(&format!("    \"llc_mpi\": {}\n", opt(r.llc_mpi)));
        out.push_str(if i + 1 == rows.len() {
            "  }\n"
        } else {
            "  },\n"
        });
    }
    out.push(']');
    out
}

/// A generic result row for JSON capture.
#[derive(Debug, Clone, Serialize)]
pub struct ResultRow {
    /// Configuration label (e.g. "dict=40MiB groups=1e5").
    pub config: String,
    /// Series label (e.g. "Q2 partitioned").
    pub series: String,
    /// X value (e.g. LLC MiB or group count).
    pub x: f64,
    /// Normalized throughput.
    pub normalized: f64,
    /// LLC hit ratio, when meaningful.
    pub llc_hit_ratio: Option<f64>,
    /// LLC misses per instruction, when meaningful.
    pub llc_mpi: Option<f64>,
}

/// Formats a normalized-throughput cell.
pub fn pct(v: f64) -> String {
    format!("{:5.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_as_valid_json() {
        let rows = vec![
            ResultRow {
                config: "dict=40MiB".into(),
                series: "Q2 \"partitioned\"".into(),
                x: 20.0,
                normalized: 0.86,
                llc_hit_ratio: Some(0.91),
                llc_mpi: None,
            },
            ResultRow {
                config: "dict=4MiB".into(),
                series: "Q1".into(),
                x: 2.0,
                normalized: 1.0,
                llc_hit_ratio: None,
                llc_mpi: Some(0.002),
            },
        ];
        let s = rows_to_json(&rows);
        assert!(s.starts_with("[\n"));
        assert!(s.ends_with(']'));
        assert!(s.contains("\"series\": \"Q2 \\\"partitioned\\\"\""));
        assert!(s.contains("\"llc_hit_ratio\": null"));
        assert!(s.contains("\"llc_mpi\": 0.002"));
        // Object separators: exactly one comma between the two objects.
        assert_eq!(s.matches("},").count(), 1);
    }

    #[test]
    fn env_selects_windows() {
        // Default windows are between quick and full.
        let e = experiment_from_env();
        assert!(e.measure_cycles >= 4_000_000);
        assert!(e.warm_cycles >= 2_000_000);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.655), " 65.5%");
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("experiments"));
    }
}
