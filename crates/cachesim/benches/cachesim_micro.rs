//! Criterion microbenchmarks for the cache simulator itself: access
//! throughput of the hot `access` path under hit-heavy, miss-heavy and
//! prefetch-friendly workloads. These guard the simulator's own performance
//! (the figure harness replays tens of millions of accesses).

use ccp_cachesim::{AccessKind, HierarchyConfig, MemoryHierarchy, WayMask};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_hit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim/hits");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("l2_hit_loop", |b| {
        b.iter_batched_ref(
            || {
                let mut m = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
                // Warm 16 lines so every measured access hits L2.
                for i in 0..16u64 {
                    m.access(0, i * 64, AccessKind::Read);
                }
                m
            },
            |m| {
                for _ in 0..64 {
                    for i in 0..16u64 {
                        m.access(0, i * 64, AccessKind::Read);
                    }
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_miss_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim/misses");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("streaming_misses", |b| {
        b.iter_batched_ref(
            || {
                (
                    MemoryHierarchy::new(HierarchyConfig::broadwell_e5_2699_v4(), 1),
                    0u64,
                )
            },
            |(m, pos)| {
                for _ in 0..1024 {
                    m.access(0, *pos, AccessKind::Read);
                    *pos += 64;
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_masked_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim/masked");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("two_way_mask_stream", |b| {
        b.iter_batched_ref(
            || {
                let mut m = MemoryHierarchy::new(HierarchyConfig::broadwell_e5_2699_v4(), 1);
                m.set_mask(0, WayMask::new(0x3).unwrap());
                (m, 0u64)
            },
            |(m, pos)| {
                for _ in 0..1024 {
                    m.access(0, *pos, AccessKind::Read);
                    *pos += 64;
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hit_path,
    bench_miss_path,
    bench_masked_access
);
criterion_main!(benches);
